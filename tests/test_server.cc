/**
 * @file
 * Tests for the online serving front-end: streaming, fairness-gated
 * admission, explicit backpressure, cancellation, drain/stop, and
 * virtual-time determinism.
 */
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "comet/obs/metrics.h"
#include "comet/serve/engine.h"
#include "comet/server/loadgen.h"
#include "comet/server/server.h"

namespace comet {
namespace server {
namespace {

/** A small KV-bound engine every test serves against. */
EngineConfig
testEngineConfig(int64_t kv_blocks = 2048)
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 128;
    config.output_tokens = 32;
    return engineConfigWithKvBlocks(config, kv_blocks);
}

ServerConfig
oneTenantConfig(const std::string &name = "t")
{
    ServerConfig config;
    TenantConfig tenant;
    tenant.name = name;
    config.tenants = {tenant};
    config.max_batch = 16;
    return config;
}

StreamRequest
streamRequest(int64_t id, double arrival_us, int64_t prompt = 64,
              int64_t output = 4, const std::string &tenant = "t")
{
    StreamRequest request;
    request.id = id;
    request.tenant = tenant;
    request.prompt_tokens = prompt;
    request.max_output_tokens = output;
    request.eos_output_tokens = output;
    request.arrival_us = arrival_us;
    return request;
}

/** Metrics start from a clean slate in every test. */
class ServerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::MetricsRegistry::global().reset();
    }
};

TEST_F(ServerTest, StreamsTokensAndFinishes)
{
    const ServingEngine engine(testEngineConfig());
    Server server(&engine, oneTenantConfig());
    Server::Client client = server.connect();
    TokenStreamPtr stream =
        client.submit(streamRequest(1, 0.0, 64, 4));
    client.close();

    StreamEvent event;
    int64_t tokens = 0;
    double last_us = -1.0;
    StreamEventKind terminal = StreamEventKind::kToken;
    while (stream->next(&event)) {
        if (event.kind == StreamEventKind::kToken) {
            EXPECT_EQ(event.token_index, tokens);
            EXPECT_GE(event.virtual_us, last_us);
            last_us = event.virtual_us;
            ++tokens;
        } else {
            terminal = event.kind;
        }
    }
    EXPECT_EQ(tokens, 4);
    EXPECT_EQ(terminal, StreamEventKind::kFinished);
    EXPECT_GT(last_us, 0.0);

    server.drain();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, 1);
    EXPECT_EQ(stats.queued, 1);
    EXPECT_EQ(stats.completed, 1);
    EXPECT_EQ(stats.streamed_tokens, 4);
    EXPECT_EQ(stats.rejected, 0);
    EXPECT_GT(server.virtualClockUs(), 0.0);
    server.stop();
}

TEST_F(ServerTest, CallbackDeliveryMatchesPullDelivery)
{
    const ServingEngine engine(testEngineConfig());
    std::vector<StreamEvent> seen;
    {
        Server server(&engine, oneTenantConfig());
        Server::Client client = server.connect();
        StreamRequest request = streamRequest(1, 0.0, 64, 3);
        request.callback = [&](const StreamEvent &event) {
            seen.push_back(event);
        };
        client.submit(request);
        client.close();
        server.drain();
        server.stop();
    }
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen[0].kind, StreamEventKind::kToken);
    EXPECT_EQ(seen[3].kind, StreamEventKind::kFinished);

    // The same request through a pull stream sees the same virtual
    // timestamps.
    Server server(&engine, oneTenantConfig());
    Server::Client client = server.connect();
    TokenStreamPtr stream =
        client.submit(streamRequest(1, 0.0, 64, 3));
    client.close();
    server.drain();
    StreamEvent event;
    size_t i = 0;
    while (stream->next(&event)) {
        ASSERT_LT(i, seen.size());
        EXPECT_EQ(event.kind, seen[i].kind);
        EXPECT_DOUBLE_EQ(event.virtual_us, seen[i].virtual_us);
        ++i;
    }
    EXPECT_EQ(i, seen.size());
    server.stop();
}

TEST_F(ServerTest, UnknownTenantRejectsImmediately)
{
    const ServingEngine engine(testEngineConfig());
    Server server(&engine, oneTenantConfig("real"));
    Server::Client client = server.connect();
    TokenStreamPtr stream =
        client.submit(streamRequest(1, 0.0, 64, 4, "fake"));
    EXPECT_TRUE(stream->done());
    EXPECT_EQ(stream->terminalKind(), StreamEventKind::kRejected);
    EXPECT_EQ(stream->terminalReason(),
              RejectReason::kUnknownTenant);
    client.close();
    server.drain();
    EXPECT_EQ(server.stats().rejected, 1);
    EXPECT_EQ(obs::MetricsRegistry::global().counterValue(
                  "server.rejected"),
              1);
    server.stop();
}

TEST_F(ServerTest, SubmitAfterDrainRejectsShuttingDown)
{
    const ServingEngine engine(testEngineConfig());
    Server server(&engine, oneTenantConfig());
    Server::Client client = server.connect();
    server.drain();
    TokenStreamPtr stream = client.submit(streamRequest(1, 0.0));
    EXPECT_TRUE(stream->done());
    EXPECT_EQ(stream->terminalKind(), StreamEventKind::kRejected);
    EXPECT_EQ(stream->terminalReason(),
              RejectReason::kShuttingDown);
    server.stop();
}

TEST_F(ServerTest, BoundedQueueRejectsOverload)
{
    const ServingEngine engine(testEngineConfig());
    ServerConfig config = oneTenantConfig();
    config.tenants[0].max_queued = 1;
    config.max_batch = 1;
    Server server(&engine, config);
    Server::Client client = server.connect();
    // Eight arrivals at the same instant against batch 1 + queue 1:
    // the overflow must come back as explicit kQueueFull rejects.
    std::vector<TokenStreamPtr> streams;
    for (int64_t i = 0; i < 8; ++i)
        streams.push_back(
            client.submit(streamRequest(i, 0.0, 64, 8)));
    client.close();
    server.drain();
    int64_t rejected = 0;
    int64_t completed = 0;
    for (const TokenStreamPtr &stream : streams) {
        ASSERT_TRUE(stream->done());
        if (stream->terminalKind() == StreamEventKind::kRejected) {
            EXPECT_EQ(stream->terminalReason(),
                      RejectReason::kQueueFull);
            ++rejected;
        } else {
            EXPECT_EQ(stream->terminalKind(),
                      StreamEventKind::kFinished);
            ++completed;
        }
    }
    EXPECT_GT(rejected, 0);
    EXPECT_GT(completed, 0);
    EXPECT_EQ(rejected + completed, 8);
    EXPECT_EQ(server.stats().rejected, rejected);
    EXPECT_EQ(obs::MetricsRegistry::global().counterValue(
                  "server.rejected"),
              rejected);
    server.stop();
}

TEST_F(ServerTest, TooLargeRequestsRejectWithReason)
{
    const ServingEngine engine(testEngineConfig(64));
    Server server(&engine, oneTenantConfig());
    Server::Client client = server.connect();
    // 64 blocks x 16 tokens = 1024 tokens of KV; this asks for 4096.
    TokenStreamPtr stream =
        client.submit(streamRequest(1, 0.0, 2048, 2048));
    client.close();
    server.drain();
    ASSERT_TRUE(stream->done());
    EXPECT_EQ(stream->terminalKind(), StreamEventKind::kRejected);
    EXPECT_EQ(stream->terminalReason(), RejectReason::kTooLarge);
    server.stop();
}

TEST_F(ServerTest, CancelDeliversCancelledTerminal)
{
    const ServingEngine engine(testEngineConfig());
    Server server(&engine, oneTenantConfig());
    Server::Client client = server.connect();
    TokenStreamPtr stream =
        client.submit(streamRequest(1, 0.0, 64, 64));
    // The ingress gate still holds the clock at this request's
    // arrival, so no token can have been produced yet: the cancel
    // deterministically lands before the generation completes.
    stream->requestCancel();
    client.close();
    StreamEvent event;
    StreamEventKind terminal = StreamEventKind::kToken;
    while (stream->next(&event))
        terminal = event.kind;
    EXPECT_EQ(terminal, StreamEventKind::kCancelled);
    server.drain();
    EXPECT_EQ(server.stats().cancelled, 1);
    server.stop();
}

TEST_F(ServerTest, StopCancelsInFlightWorkDeterministically)
{
    const ServingEngine engine(testEngineConfig());
    Server server(&engine, oneTenantConfig());
    Server::Client client = server.connect();
    std::vector<TokenStreamPtr> streams;
    for (int64_t i = 0; i < 4; ++i)
        streams.push_back(
            client.submit(streamRequest(i, 0.0, 64, 64)));
    // The handle is never closed: the ingress gate holds the virtual
    // clock, so no request can finish. stop(true) must cancel all
    // four deterministically, not hang.
    server.stop(/*cancel_in_flight=*/true);
    for (const TokenStreamPtr &stream : streams) {
        ASSERT_TRUE(stream->done());
        EXPECT_EQ(stream->terminalKind(),
                  StreamEventKind::kCancelled);
    }
    EXPECT_EQ(server.stats().cancelled, 4);
}

TEST_F(ServerTest, IngressGateHoldsTheClockForOpenClients)
{
    const ServingEngine engine(testEngineConfig());
    Server server(&engine, oneTenantConfig());
    Server::Client active = server.connect();
    Server::Client idle = server.connect();
    TokenStreamPtr stream =
        active.submit(streamRequest(1, 1000.0, 64, 2));
    active.close();
    // The idle client's horizon is still 0: the server must not
    // advance the virtual clock to the arrival, no matter how much
    // wall time passes (a hard determinism invariant, so this
    // cannot flake).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_LT(server.virtualClockUs(), 1000.0);
    EXPECT_FALSE(stream->done());
    idle.close();
    server.drain();
    EXPECT_TRUE(stream->done());
    EXPECT_EQ(stream->terminalKind(), StreamEventKind::kFinished);
    server.stop();
}

TEST_F(ServerTest, GateWaitReplansForEarlierSubmissions)
{
    // Regression for a determinism race: with the loop blocked in
    // the idle fast-forward toward a known arrival, a submission
    // with an EARLIER virtual arrival lands in the inbox. The gate
    // must re-plan and serve the newcomer at its own arrival time —
    // the virtual timeline cannot depend on whether the submission
    // beat the loop's last inbox drain.
    const ServingEngine engine(testEngineConfig());
    auto run = [&](bool let_gate_block_first) {
        Server server(&engine, oneTenantConfig());
        Server::Client a = server.connect();
        Server::Client b = server.connect();
        TokenStreamPtr late =
            a.submit(streamRequest(1, 50000.0, 64, 2));
        a.close();
        if (let_gate_block_first) {
            // Give the loop wall time to enter the fast-forward
            // gate toward 50 ms before the earlier arrival shows up.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        TokenStreamPtr early =
            b.submit(streamRequest(2, 1000.0, 64, 2));
        b.close();
        server.drain();
        std::vector<double> times;
        StreamEvent event;
        while (early->next(&event))
            times.push_back(event.virtual_us);
        while (late->next(&event))
            times.push_back(event.virtual_us);
        server.stop();
        return times;
    };

    const std::vector<double> eager = run(false);
    const std::vector<double> delayed = run(true);
    ASSERT_EQ(eager.size(), delayed.size());
    for (size_t i = 0; i < eager.size(); ++i)
        EXPECT_DOUBLE_EQ(eager[i], delayed[i]);
    // The earlier request was ingested at its own arrival, not at
    // the fast-forward target it raced.
    ASSERT_GE(delayed.size(), 1u);
    EXPECT_LT(delayed[0], 50000.0);
}

TEST_F(ServerTest, LateConnectStartsAtTheVirtualPresent)
{
    const ServingEngine engine(testEngineConfig());
    Server server(&engine, oneTenantConfig());
    Server::Client a = server.connect();
    TokenStreamPtr first = a.submit(streamRequest(1, 0.0, 64, 2));
    a.close();
    StreamEvent event;
    while (first->next(&event)) {
    }
    EXPECT_EQ(first->terminalKind(), StreamEventKind::kFinished);
    const double clock = server.virtualClockUs();
    EXPECT_GT(clock, 0.0);

    // A client joining mid-session starts gating at the virtual
    // present: it submits from the current clock onward, and its
    // open handle can neither stall the session on a horizon of 0
    // nor rewind the ingress gate below decisions already made.
    Server::Client b = server.connect();
    TokenStreamPtr second =
        b.submit(streamRequest(2, clock + 1000.0, 64, 2));
    b.close();
    server.drain();
    EXPECT_EQ(second->terminalKind(), StreamEventKind::kFinished);
    EXPECT_GE(server.virtualClockUs(), clock + 1000.0);
    server.stop();
}

TEST_F(ServerTest, WeightedTenantsShareAdmissionUnderContention)
{
    const ServingEngine engine(testEngineConfig(512));
    ServerConfig config;
    TenantConfig heavy;
    heavy.name = "heavy";
    heavy.weight = 3.0;
    TenantConfig light;
    light.name = "light";
    light.weight = 1.0;
    config.tenants = {heavy, light};
    config.max_batch = 2;
    Server server(&engine, config);
    Server::Client client = server.connect();
    std::vector<TokenStreamPtr> heavy_streams;
    std::vector<TokenStreamPtr> light_streams;
    for (int64_t i = 0; i < 8; ++i) {
        heavy_streams.push_back(client.submit(
            streamRequest(2 * i, 0.0, 64, 8, "heavy")));
        light_streams.push_back(client.submit(
            streamRequest(2 * i + 1, 0.0, 64, 8, "light")));
    }
    client.close();
    server.drain();
    // Everything completes; the heavy tenant's median first-token
    // time must not be worse than the light tenant's.
    double heavy_first_sum = 0.0;
    double light_first_sum = 0.0;
    StreamEvent event;
    for (const TokenStreamPtr &stream : heavy_streams) {
        ASSERT_TRUE(stream->next(&event));
        heavy_first_sum += event.virtual_us;
    }
    for (const TokenStreamPtr &stream : light_streams) {
        ASSERT_TRUE(stream->next(&event));
        light_first_sum += event.virtual_us;
    }
    EXPECT_LT(heavy_first_sum, light_first_sum);
    server.stop();
}

TEST_F(ServerTest, BackToBackSessionsAreBitIdentical)
{
    const ServingEngine engine(testEngineConfig(1024));
    LoadgenConfig workload;
    workload.seed = 7;
    workload.clients = 4;
    LoadgenTenant tenant;
    tenant.admission.name = "t";
    tenant.arrival_rate_per_s = 50.0;
    tenant.requests = 24;
    tenant.prompt_min = 32;
    tenant.prompt_max = 128;
    tenant.output_min = 2;
    tenant.output_max = 16;
    workload.tenants = {tenant};

    ServerConfig config;
    config.tenants = loadgenTenants(workload);
    config.max_batch = 8;

    obs::MetricsRegistry::global().reset();
    Server first(&engine, config);
    const LoadgenReport report_a = runLoadgen(&first, workload);
    const double clock_a = first.virtualClockUs();
    const SchedulerCounters sched_a = first.schedulerCounters();
    first.stop();

    obs::MetricsRegistry::global().reset();
    Server second(&engine, config);
    const LoadgenReport report_b = runLoadgen(&second, workload);
    const double clock_b = second.virtualClockUs();
    const SchedulerCounters sched_b = second.schedulerCounters();
    second.stop();

    EXPECT_EQ(clock_a, clock_b);
    EXPECT_EQ(sched_a.admitted, sched_b.admitted);
    EXPECT_EQ(sched_a.preemptions, sched_b.preemptions);
    EXPECT_EQ(renderLoadgenReport(report_a),
              renderLoadgenReport(report_b));
    ASSERT_EQ(report_a.outcomes.size(), report_b.outcomes.size());
    for (size_t i = 0; i < report_a.outcomes.size(); ++i) {
        EXPECT_EQ(report_a.outcomes[i].tokens,
                  report_b.outcomes[i].tokens);
        EXPECT_EQ(report_a.outcomes[i].first_token_us,
                  report_b.outcomes[i].first_token_us);
        EXPECT_EQ(report_a.outcomes[i].last_token_us,
                  report_b.outcomes[i].last_token_us);
    }
}

TEST_F(ServerTest, LoadgenAccountingMatchesServerMetrics)
{
    const ServingEngine engine(testEngineConfig(256));
    LoadgenConfig workload;
    workload.seed = 11;
    workload.clients = 4;
    LoadgenTenant tenant;
    tenant.admission.name = "t";
    tenant.admission.max_queued = 2;
    tenant.arrival_rate_per_s = 500.0; // overload: forces rejects
    tenant.requests = 32;
    tenant.prompt_min = 64;
    tenant.prompt_max = 128;
    tenant.output_min = 4;
    tenant.output_max = 16;
    workload.tenants = {tenant};

    ServerConfig config;
    config.tenants = loadgenTenants(workload);
    config.max_batch = 4;

    Server server(&engine, config);
    const LoadgenReport report = runLoadgen(&server, workload);
    EXPECT_GT(report.rejected, 0);
    EXPECT_EQ(report.completed + report.rejected,
              report.submitted);
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.rejected, report.rejected);
    EXPECT_EQ(stats.completed, report.completed);
    EXPECT_EQ(stats.streamed_tokens, report.tokens);
    EXPECT_EQ(obs::MetricsRegistry::global().counterValue(
                  "server.rejected"),
              report.rejected);
    EXPECT_EQ(obs::MetricsRegistry::global().counterValue(
                  "server.streamed_tokens"),
              report.tokens);
    server.stop();
}

TEST_F(ServerTest, DrainIsIdempotentAndStopIsIdempotent)
{
    const ServingEngine engine(testEngineConfig());
    Server server(&engine, oneTenantConfig());
    server.drain();
    server.drain();
    server.stop();
    server.stop();
}

TEST_F(ServerTest, CancelMidStreamAfterTokensHaveFlowed)
{
    const ServingEngine engine(testEngineConfig());
    Server server(&engine, oneTenantConfig());
    Server::Client submitter = server.connect();
    Server::Client gater = server.connect();
    TokenStreamPtr stream =
        submitter.submit(streamRequest(1, 0.0, 64, 64));
    submitter.close();
    // Dole out virtual time in thin slices, advancing only once the
    // loop has caught up to the previous slice: generation can never
    // run more than one slice ahead of the consumer, so after three
    // tokens the cancel provably lands long before the 64-token
    // completion.
    StreamEvent event;
    double horizon_us = 0.0;
    for (int consumed = 0; consumed < 3;) {
        if (stream->tryNext(&event)) {
            ASSERT_EQ(event.kind, StreamEventKind::kToken);
            ++consumed;
            continue;
        }
        horizon_us += 50.0;
        gater.advanceTo(horizon_us);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stream->requestCancel();
    gater.close();
    server.drain();
    int64_t tokens = 3;
    StreamEventKind terminal = StreamEventKind::kToken;
    while (stream->next(&event)) {
        terminal = event.kind;
        if (event.kind == StreamEventKind::kToken)
            ++tokens;
    }
    EXPECT_EQ(terminal, StreamEventKind::kCancelled);
    EXPECT_LT(tokens, 64);
    EXPECT_EQ(server.stats().cancelled, 1);
    EXPECT_EQ(server.stats().streamed_tokens, tokens);
    server.stop();
}

TEST_F(ServerTest, DisconnectedStreamStillCompletesServerSide)
{
    const ServingEngine engine(testEngineConfig());
    Server server(&engine, oneTenantConfig());
    {
        Server::Client client = server.connect();
        TokenStreamPtr stream =
            client.submit(streamRequest(1, 0.0, 64, 4));
        client.close();
        stream.reset(); // the consumer disconnects mid-stream
    }
    // The server keeps its own reference: the request runs to
    // completion and the accounting is unaffected by the vanished
    // reader.
    server.drain();
    EXPECT_EQ(server.stats().completed, 1);
    EXPECT_EQ(server.stats().streamed_tokens, 4);
    server.stop();
}

TEST_F(ServerTest, DoubleCloseIsIdempotentAndLateCancelIsANoOp)
{
    const ServingEngine engine(testEngineConfig());
    Server server(&engine, oneTenantConfig());
    Server::Client client = server.connect();
    TokenStreamPtr stream =
        client.submit(streamRequest(1, 0.0, 64, 2));
    client.close();
    client.close(); // a second close must be a harmless no-op
    server.drain();
    ASSERT_TRUE(stream->done());
    EXPECT_EQ(stream->terminalKind(), StreamEventKind::kFinished);
    // Cancelling an already-finished stream cannot resurrect it or
    // double-count a terminal (idempotent from the consumer side).
    stream->requestCancel();
    stream->requestCancel();
    server.stop();
    EXPECT_EQ(server.stats().completed, 1);
    EXPECT_EQ(server.stats().cancelled, 0);
}

} // namespace
} // namespace server
} // namespace comet
