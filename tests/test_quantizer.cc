/**
 * @file
 * Unit tests for the uniform quantization primitives.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/common/rng.h"
#include "comet/quant/quantizer.h"

namespace comet {
namespace {

TEST(SignedRange, MatchesTwosComplement)
{
    EXPECT_EQ(signedRange(4).qmin, -8);
    EXPECT_EQ(signedRange(4).qmax, 7);
    EXPECT_EQ(signedRange(8).qmin, -128);
    EXPECT_EQ(signedRange(8).qmax, 127);
}

TEST(ChooseSymmetric, ScaleMapsAbsMaxToQmax)
{
    const QuantParams params = chooseSymmetric(14.0f, 4);
    EXPECT_FLOAT_EQ(params.scale, 2.0f);
    EXPECT_EQ(params.zero_point, 0);
    EXPECT_EQ(params.quantize(14.0f), 7);
    EXPECT_EQ(params.quantize(-14.0f), -7);
}

TEST(ChooseSymmetric, ZeroTensorDoesNotDivideByZero)
{
    const QuantParams params = chooseSymmetric(0.0f, 8);
    EXPECT_FLOAT_EQ(params.scale, 1.0f);
    EXPECT_EQ(params.quantize(0.0f), 0);
}

TEST(ChooseAsymmetric, CoversRangeEndpoints)
{
    const QuantParams params = chooseAsymmetric(-1.0f, 3.0f, 8);
    const QuantRange range = signedRange(8);
    const int32_t q_min = params.quantize(-1.0f);
    const int32_t q_max = params.quantize(3.0f);
    EXPECT_GE(q_min, range.qmin);
    EXPECT_LE(q_max, range.qmax);
    EXPECT_NEAR(params.dequantize(q_min), -1.0f, params.scale);
    EXPECT_NEAR(params.dequantize(q_max), 3.0f, params.scale);
}

TEST(ChooseAsymmetric, AllPositiveRangeStillRepresentsZero)
{
    // Asymmetric quantizers must represent 0 exactly enough for
    // padding; the range is extended to include it.
    const QuantParams params = chooseAsymmetric(2.0f, 6.0f, 4);
    const int32_t q0 = params.quantize(0.0f);
    EXPECT_NEAR(params.dequantize(q0), 0.0f, params.scale);
}

TEST(FakeQuantValue, ClampsToRange)
{
    const QuantParams params = chooseSymmetric(7.0f, 4);
    // 100 quantizes far beyond qmax; must clamp to 7 * scale.
    EXPECT_FLOAT_EQ(fakeQuantValue(100.0f, params, 4), 7.0f);
}

TEST(FakeQuantValue, RoundTripErrorBounded)
{
    const QuantParams params = chooseSymmetric(10.0f, 8);
    for (float x = -10.0f; x <= 10.0f; x += 0.37f) {
        const float q = fakeQuantValue(x, params, 8);
        EXPECT_LE(std::fabs(q - x), params.scale / 2.0f + 1e-6f);
    }
}

TEST(FakeQuantPerTensor, ErrorBoundedByScale)
{
    Rng rng(1);
    Tensor x(16, 32);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian(0, 3));
    const Tensor q = fakeQuantPerTensor(x, 8);
    const float scale = x.absMax() / 127.0f;
    EXPECT_LE(maxAbsError(x, q), scale / 2.0 + 1e-6);
}

TEST(FakeQuantPerRow, RowsQuantizedIndependently)
{
    Tensor x(2, 4);
    // Row 0 tiny values, row 1 huge values: per-row scaling must keep
    // row 0 precise.
    for (int64_t c = 0; c < 4; ++c) {
        x.at(0, c) = 0.01f * static_cast<float>(c + 1);
        x.at(1, c) = 100.0f * static_cast<float>(c + 1);
    }
    const Tensor q = fakeQuantPerRow(x, 8);
    EXPECT_NEAR(q.at(0, 3), x.at(0, 3), 0.01f);
    EXPECT_NEAR(q.at(1, 3), x.at(1, 3), 2.0f);
}

TEST(FakeQuantPerColumn, ColumnsQuantizedIndependently)
{
    Tensor x(4, 2);
    for (int64_t r = 0; r < 4; ++r) {
        x.at(r, 0) = 0.01f * static_cast<float>(r + 1);
        x.at(r, 1) = 100.0f * static_cast<float>(r + 1);
    }
    const Tensor q = fakeQuantPerColumn(x, 8);
    EXPECT_NEAR(q.at(3, 0), x.at(3, 0), 0.01f);
}

TEST(FakeQuantPerGroup, GroupsIsolateOutliers)
{
    Tensor x(1, 8);
    for (int64_t c = 0; c < 4; ++c)
        x.at(0, c) = 0.1f;
    for (int64_t c = 4; c < 8; ++c)
        x.at(0, c) = 50.0f;
    const Tensor q_grouped = fakeQuantPerGroup(x, 4, 4);
    const Tensor q_whole = fakeQuantPerRow(x, 4);
    // Grouped keeps the small half representable; whole-row does not.
    EXPECT_NEAR(q_grouped.at(0, 0), 0.1f, 0.02f);
    EXPECT_GT(std::fabs(q_whole.at(0, 0) - 0.1f), 0.05f);
}

TEST(QuantizeInt8PerRow, RoundTripMatchesFakeQuant)
{
    Rng rng(3);
    Tensor x(8, 16);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian(0, 2));
    const QuantizedInt8 q = quantizeInt8PerRow(x);
    const Tensor deq = dequantize(q);
    const Tensor fake = fakeQuantPerRow(x, 8);
    EXPECT_LT(maxAbsError(deq, fake), 1e-5);
}

TEST(QuantizeInt4PerRow, RoundTripMatchesFakeQuant)
{
    Rng rng(5);
    Tensor x(8, 16);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian(0, 2));
    const QuantizedInt4 q = quantizeInt4PerRow(x);
    const Tensor deq = dequantize(q);
    const Tensor fake = fakeQuantPerRow(x, 4);
    EXPECT_LT(maxAbsError(deq, fake), 1e-5);
}

TEST(Sqnr, HigherBitsGiveHigherSqnr)
{
    Rng rng(7);
    Tensor x(32, 64);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian(0, 1));
    const double sqnr4 = sqnrDb(x, fakeQuantPerRow(x, 4));
    const double sqnr8 = sqnrDb(x, fakeQuantPerRow(x, 8));
    EXPECT_GT(sqnr8, sqnr4 + 15.0); // ~6 dB per bit in theory
}

TEST(Sqnr, IdenticalTensorsSaturate)
{
    Tensor x(2, 2);
    x.fill(1.0f);
    EXPECT_GE(sqnrDb(x, x), 300.0);
}

/** Property sweep: per-row INT quantization error is bounded by half a
 * scale step at every bit width. */
class QuantErrorSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantErrorSweep, ErrorWithinHalfStep)
{
    const int bits = GetParam();
    Rng rng(100 + static_cast<uint64_t>(bits));
    Tensor x(4, 32);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian(0, 5));
    const Tensor q = fakeQuantPerRow(x, bits);
    for (int64_t r = 0; r < x.rows(); ++r) {
        float abs_max = 0.0f;
        for (int64_t c = 0; c < x.cols(); ++c)
            abs_max = std::max(abs_max, std::fabs(x.at(r, c)));
        const float scale =
            abs_max / static_cast<float>(signedRange(bits).qmax);
        for (int64_t c = 0; c < x.cols(); ++c) {
            EXPECT_LE(std::fabs(q.at(r, c) - x.at(r, c)),
                      scale / 2.0f + 1e-5f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, QuantErrorSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

} // namespace
} // namespace comet
