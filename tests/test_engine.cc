/**
 * @file
 * Unit and integration tests for the serving engine — memory-driven
 * batch sizing and the end-to-end throughput ordering of Figures
 * 10-12 and 15.
 */
#include <gtest/gtest.h>

#include "comet/kvcache/kv_cache.h"
#include "comet/serve/engine.h"

namespace comet {
namespace {

EngineConfig
makeConfig(const LlmConfig &model, ServingMode mode,
           int64_t input = 1024, int64_t output = 512)
{
    EngineConfig config;
    config.model = model;
    config.mode = mode;
    config.input_tokens = input;
    config.output_tokens = output;
    return config;
}

TEST(ServingMode, NamesMatchPaperLegends)
{
    EXPECT_STREQ(servingModeName(ServingMode::kTrtFp16),
                 "TRT-LLM-FP16");
    EXPECT_STREQ(servingModeName(ServingMode::kQserveW4A8Kv4),
                 "QServe");
    EXPECT_STREQ(servingModeName(ServingMode::kCometW4AxKv4),
                 "COMET");
}

TEST(ServingPrecision, ModeMapping)
{
    EXPECT_DOUBLE_EQ(servingPrecision(ServingMode::kTrtFp16).kv_bits,
                     16.0);
    EXPECT_DOUBLE_EQ(
        servingPrecision(ServingMode::kCometW4AxKv4).kv_bits, 4.0);
    EXPECT_EQ(servingPrecision(ServingMode::kCometW4AxKv4).gemm_kind,
              GemmKernelKind::kCometW4Ax);
    EXPECT_LT(servingPrecision(ServingMode::kTrtW4A16).weight_bits,
              5.0);
}

TEST(ServingEngine, WeightBytesFollowPrecision)
{
    const ServingEngine fp16(
        makeConfig(LlmConfig::llama3_8b(), ServingMode::kTrtFp16));
    const ServingEngine comet(makeConfig(LlmConfig::llama3_8b(),
                                         ServingMode::kCometW4AxKv4));
    EXPECT_NEAR(fp16.weightBytes() / comet.weightBytes(),
                16.0 / 4.25, 0.01);
}

TEST(ServingEngine, CometFitsLargerBatches)
{
    // The KV4 cache plus INT4 weights admit far larger batches —
    // the enabler of the Figure 10 gains.
    const ServingEngine fp16(
        makeConfig(LlmConfig::llama3_70b(), ServingMode::kTrtFp16));
    const ServingEngine comet(makeConfig(LlmConfig::llama3_70b(),
                                         ServingMode::kCometW4AxKv4));
    // FP16 LLaMA-3-70B (~141 GB) does not even fit on one A100-80G.
    EXPECT_EQ(fp16.maxBatchSize(), 0);
    EXPECT_GT(comet.maxBatchSize(), 8);
}

TEST(ServingEngine, Kv4AdmitsMoreThanKv16AtSameWeights)
{
    // Use the 70B model so neither configuration saturates the
    // engine's 256-sequence cap.
    const ServingEngine kv16(makeConfig(LlmConfig::llama3_70b(),
                                        ServingMode::kCometW4AxOnly));
    const ServingEngine kv4(makeConfig(LlmConfig::llama3_70b(),
                                       ServingMode::kCometW4AxKv4));
    EXPECT_GT(kv16.maxBatchSize(), 0);
    EXPECT_GT(kv4.maxBatchSize(), 2 * kv16.maxBatchSize());
}

TEST(ServingEngine, DecodeLatencyGrowsWithBatchAndContext)
{
    const ServingEngine engine(makeConfig(
        LlmConfig::llama3_8b(), ServingMode::kCometW4AxKv4));
    EXPECT_LT(engine.decodeStepLatencyUs(4, 512),
              engine.decodeStepLatencyUs(64, 512));
    EXPECT_LT(engine.decodeStepLatencyUs(16, 256),
              engine.decodeStepLatencyUs(16, 4096));
}

TEST(ServingEngine, ThroughputImprovesWithBatch)
{
    const ServingEngine engine(makeConfig(
        LlmConfig::llama3_8b(), ServingMode::kTrtFp16));
    const double t4 =
        engine.measureThroughputAtBatch(4).tokens_per_second;
    const double t64 =
        engine.measureThroughputAtBatch(64).tokens_per_second;
    // Paper Figure 11: batch 64 is ~7.5x batch 4 for TRT-FP16.
    EXPECT_GT(t64, 4.0 * t4);
}

TEST(ServingEngine, CometBeatsBaselinesEndToEnd)
{
    // The Figure 10 ordering on LLaMA-3-8B at 1024/512.
    const auto throughput = [&](ServingMode mode) {
        const ServingEngine engine(
            makeConfig(LlmConfig::llama3_8b(), mode));
        return engine.measureThroughput().tokens_per_second;
    };
    const double fp16 = throughput(ServingMode::kTrtFp16);
    const double w4a16 = throughput(ServingMode::kTrtW4A16);
    const double qserve = throughput(ServingMode::kQserveW4A8Kv4);
    const double comet = throughput(ServingMode::kCometW4AxKv4);
    EXPECT_GT(comet, qserve);
    EXPECT_GT(comet, w4a16);
    EXPECT_GT(comet, fp16);
    EXPECT_GT(qserve, fp16);
}

TEST(ServingEngine, AblationModesLandBetween)
{
    // Figure 15: W4Ax-only and KV4-only each beat the W4A16 baseline
    // but trail the combined system.
    const auto throughput = [&](ServingMode mode) {
        const ServingEngine engine(
            makeConfig(LlmConfig::llama2_13b(), mode));
        return engine.measureThroughput().tokens_per_second;
    };
    const double baseline = throughput(ServingMode::kTrtW4A16);
    const double w4ax_only = throughput(ServingMode::kCometW4AxOnly);
    const double kv4_only = throughput(ServingMode::kCometKv4Only);
    const double full = throughput(ServingMode::kCometW4AxKv4);
    EXPECT_GT(w4ax_only, baseline);
    EXPECT_GT(kv4_only, baseline);
    EXPECT_GT(full, w4ax_only);
    EXPECT_GT(full, kv4_only);
}

TEST(ServingEngine, ThroughputResultFieldsPopulated)
{
    const ServingEngine engine(makeConfig(
        LlmConfig::mistral_7b(), ServingMode::kCometW4AxKv4, 128,
        128));
    const ThroughputResult result = engine.measureThroughput();
    EXPECT_GT(result.tokens_per_second, 0.0);
    EXPECT_GT(result.batch, 0);
    EXPECT_GT(result.decode_step_us, 0.0);
    EXPECT_GT(result.prefill_us, 0.0);
    EXPECT_GT(result.kv_bytes_per_seq, 0.0);
}

TEST(ServingEngine, ZeroBatchYieldsZeroThroughput)
{
    const ServingEngine engine(makeConfig(
        LlmConfig::llama3_70b(), ServingMode::kTrtFp16));
    const ThroughputResult result = engine.measureThroughput();
    EXPECT_DOUBLE_EQ(result.tokens_per_second, 0.0);
}

TEST(TensorParallel, DegreeOneIsTheBaseline)
{
    EngineConfig config =
        makeConfig(LlmConfig::llama3_8b(), ServingMode::kCometW4AxKv4);
    const ServingEngine single(config);
    config.tensor_parallel = 1;
    const ServingEngine explicit_one(config);
    EXPECT_DOUBLE_EQ(single.weightBytes(), explicit_one.weightBytes());
    EXPECT_DOUBLE_EQ(single.decodeStepLatencyUs(16, 512),
                     explicit_one.decodeStepLatencyUs(16, 512));
    EXPECT_DOUBLE_EQ(single.allReduceLatencyUs(16), 0.0);
}

TEST(TensorParallel, ShardsWeightsAndEnablesBigModels)
{
    // FP16 LLaMA-3-70B does not fit one A100 but fits four.
    EngineConfig config =
        makeConfig(LlmConfig::llama3_70b(), ServingMode::kTrtFp16);
    const ServingEngine one(config);
    EXPECT_EQ(one.maxBatchSize(), 0);
    config.tensor_parallel = 4;
    const ServingEngine four(config);
    EXPECT_NEAR(four.weightBytes(), one.weightBytes() / 4.0, 1.0);
    EXPECT_GT(four.maxBatchSize(), 0);
}

TEST(TensorParallel, AllReduceCostGrowsWithDegreeAndTokens)
{
    EngineConfig config =
        makeConfig(LlmConfig::llama3_8b(), ServingMode::kCometW4AxKv4);
    config.tensor_parallel = 2;
    const ServingEngine two(config);
    config.tensor_parallel = 4;
    const ServingEngine four(config);
    EXPECT_GT(two.allReduceLatencyUs(64), 0.0);
    EXPECT_GT(four.allReduceLatencyUs(64),
              two.allReduceLatencyUs(64));
    EXPECT_GT(two.allReduceLatencyUs(256),
              two.allReduceLatencyUs(64));
}

TEST(TensorParallel, SpeedupIsSubLinear)
{
    // Sharding the GEMMs helps, but all-reduces and fixed overheads
    // keep the per-step speedup below the degree.
    EngineConfig config =
        makeConfig(LlmConfig::llama3_70b(), ServingMode::kCometW4AxKv4);
    const ServingEngine one(config);
    config.tensor_parallel = 4;
    const ServingEngine four(config);
    const double t1 = one.decodeStepLatencyUs(64, 1024);
    const double t4 = four.decodeStepLatencyUs(64, 1024);
    EXPECT_LT(t4, t1);
    EXPECT_GT(t4, t1 / 4.0);
}

TEST(TensorParallel, CometOnOneGpuRivalsFp16OnFour)
{
    // The serving-cost argument the paper opens with: quantization
    // buys what extra GPUs would otherwise buy.
    EngineConfig config =
        makeConfig(LlmConfig::llama3_70b(), ServingMode::kCometW4AxKv4);
    const double comet_single =
        ServingEngine(config).measureThroughput().tokens_per_second;
    config.mode = ServingMode::kTrtFp16;
    config.tensor_parallel = 4;
    const double fp16_quad =
        ServingEngine(config).measureThroughput().tokens_per_second;
    ASSERT_GT(fp16_quad, 0.0);
    EXPECT_GT(comet_single, 0.5 * fp16_quad);
}

TEST(TensorParallelDeathTest, MustDivideKvHeads)
{
    EngineConfig config =
        makeConfig(LlmConfig::llama3_8b(), ServingMode::kCometW4AxKv4);
    config.tensor_parallel = 3; // 8 kv heads % 3 != 0
    EXPECT_DEATH(ServingEngine{config}, "divide the KV head count");
}

TEST(EngineConfig, KvBlocksHelperRoundTripsExactly)
{
    // The helper encodes a block count as a memory fraction that is
    // later inverted (fraction * hbm - weights, floored into whole
    // blocks); the round-trip must yield exactly the requested pool,
    // not N-1 through floating-point truncation.
    for (int64_t blocks : {7, 64, 255, 1024, 4096}) {
        const EngineConfig config = engineConfigWithKvBlocks(
            makeConfig(LlmConfig::llama3_8b(),
                       ServingMode::kCometW4AxKv4),
            blocks);
        KvCacheConfig cache_config;
        cache_config.bits_per_value =
            servingPrecision(config.mode).kv_bits;
        cache_config.block_tokens = config.kv_block_tokens;
        cache_config.memory_budget_bytes =
            ServingEngine(config).kvBudgetBytes();
        const PagedKvCache cache(config.model, cache_config);
        EXPECT_EQ(cache.totalBlocks(), blocks);
    }
}

TEST(EngineAdmission, OptimisticOversubscriptionRecoversAndWins)
{
    // Pin the batch to twice the KV-limited maximum. Full reservation
    // caps the concurrent batch at maxBatchSize(); optimistic
    // admission overshoots on prompt-only footprints, recovers from
    // exhaustion via preemption, and still completes everything —
    // sustaining a strictly larger steady-state batch.
    EngineConfig config = engineConfigWithKvBlocks(
        makeConfig(LlmConfig::llama3_8b(), ServingMode::kCometW4AxKv4,
                   /*input=*/256, /*output=*/256),
        /*blocks=*/256);
    const ServingEngine optimistic(config);
    const int64_t kv_limited = optimistic.maxBatchSize();
    ASSERT_GT(kv_limited, 0);
    ASSERT_LT(kv_limited, config.max_batch); // KV is the binding limit

    const ThroughputResult opt =
        optimistic.measureThroughputAtBatch(2 * kv_limited);
    config.admission = AdmissionPolicy::kReserveFullOutput;
    const ThroughputResult full =
        ServingEngine(config).measureThroughputAtBatch(2 * kv_limited);

    EXPECT_GT(opt.tokens_per_second, 0.0);
    EXPECT_GT(full.tokens_per_second, 0.0);
    EXPECT_GT(opt.preemptions, 0);
    EXPECT_GT(opt.reprefill_tokens, 0);
    EXPECT_EQ(full.preemptions, 0);
    EXPECT_GT(opt.peak_batch, kv_limited);
    EXPECT_LE(full.peak_batch, kv_limited);
    EXPECT_GT(opt.mean_batch, full.mean_batch);
    EXPECT_GT(opt.mean_kv_utilization, full.mean_kv_utilization);
    EXPECT_LE(opt.peak_kv_utilization, 1.0);
}

TEST(EngineAdmission, BackToBackRunsReportIdenticalCounters)
{
    // Scheduler counters are re-zeroed at the start of every run, so
    // a second measurement on the same engine — including one with
    // heavy preemption traffic — reports the same numbers as the
    // first instead of accumulating across runs.
    const EngineConfig config = engineConfigWithKvBlocks(
        makeConfig(LlmConfig::llama3_8b(), ServingMode::kCometW4AxKv4,
                   /*input=*/256, /*output=*/256),
        /*blocks=*/256);
    const ServingEngine engine(config);
    const int64_t batch = 2 * engine.maxBatchSize();
    ASSERT_GT(batch, 0);

    const ThroughputResult first =
        engine.measureThroughputAtBatch(batch);
    const ThroughputResult second =
        engine.measureThroughputAtBatch(batch);
    ASSERT_GT(first.preemptions, 0); // the regression would double it
    EXPECT_EQ(first.preemptions, second.preemptions);
    EXPECT_EQ(first.reprefill_tokens, second.reprefill_tokens);
    EXPECT_EQ(first.peak_batch, second.peak_batch);
    EXPECT_DOUBLE_EQ(first.mean_batch, second.mean_batch);
    EXPECT_DOUBLE_EQ(first.peak_kv_utilization,
                     second.peak_kv_utilization);
    EXPECT_DOUBLE_EQ(first.mean_kv_utilization,
                     second.mean_kv_utilization);
    EXPECT_DOUBLE_EQ(first.tokens_per_second,
                     second.tokens_per_second);
}

} // namespace
} // namespace comet

