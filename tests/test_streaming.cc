/**
 * @file
 * Unit tests for the per-request token streams.
 */
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "comet/server/streaming.h"

namespace comet {
namespace server {
namespace {

StreamEvent
tokenEvent(int64_t index, double at_us)
{
    StreamEvent event;
    event.kind = StreamEventKind::kToken;
    event.token_index = index;
    event.virtual_us = at_us;
    return event;
}

StreamEvent
terminalEvent(StreamEventKind kind,
              RejectReason reason = RejectReason::kNone)
{
    StreamEvent event;
    event.kind = kind;
    event.reject_reason = reason;
    return event;
}

TEST(StreamEvent, Names)
{
    EXPECT_STREQ(streamEventKindName(StreamEventKind::kToken),
                 "token");
    EXPECT_STREQ(streamEventKindName(StreamEventKind::kFinished),
                 "finished");
    EXPECT_STREQ(streamEventKindName(StreamEventKind::kRejected),
                 "rejected");
    EXPECT_STREQ(streamEventKindName(StreamEventKind::kCancelled),
                 "cancelled");
    EXPECT_STREQ(rejectReasonName(RejectReason::kQueueFull),
                 "queue-full");
    EXPECT_STREQ(rejectReasonName(RejectReason::kRateLimited),
                 "rate-limited");
    EXPECT_STREQ(rejectReasonName(RejectReason::kShuttingDown),
                 "shutting-down");
    EXPECT_FALSE(isTerminal(StreamEventKind::kToken));
    EXPECT_TRUE(isTerminal(StreamEventKind::kFinished));
    EXPECT_TRUE(isTerminal(StreamEventKind::kRejected));
    EXPECT_TRUE(isTerminal(StreamEventKind::kCancelled));
}

TEST(TokenStream, PullModeDeliversInOrder)
{
    TokenStream stream;
    stream.deliver(tokenEvent(0, 10.0));
    stream.deliver(tokenEvent(1, 20.0));
    stream.deliver(terminalEvent(StreamEventKind::kFinished));

    StreamEvent event;
    ASSERT_TRUE(stream.next(&event));
    EXPECT_EQ(event.kind, StreamEventKind::kToken);
    EXPECT_EQ(event.token_index, 0);
    EXPECT_DOUBLE_EQ(event.virtual_us, 10.0);
    ASSERT_TRUE(stream.next(&event));
    EXPECT_EQ(event.token_index, 1);
    ASSERT_TRUE(stream.next(&event));
    EXPECT_EQ(event.kind, StreamEventKind::kFinished);
    // The terminal event was consumed: end of stream, forever.
    EXPECT_FALSE(stream.next(&event));
    EXPECT_FALSE(stream.next(&event));
}

TEST(TokenStream, TerminalStateIsQueryable)
{
    TokenStream stream;
    EXPECT_FALSE(stream.done());
    stream.deliver(tokenEvent(0, 1.0));
    EXPECT_FALSE(stream.done());
    EXPECT_EQ(stream.tokenCount(), 1);
    stream.deliver(terminalEvent(StreamEventKind::kRejected,
                                 RejectReason::kRateLimited));
    EXPECT_TRUE(stream.done());
    EXPECT_EQ(stream.terminalKind(), StreamEventKind::kRejected);
    EXPECT_EQ(stream.terminalReason(), RejectReason::kRateLimited);
    EXPECT_EQ(stream.tokenCount(), 1);
}

TEST(TokenStream, TryNextDoesNotBlock)
{
    TokenStream stream;
    StreamEvent event;
    EXPECT_FALSE(stream.tryNext(&event));
    stream.deliver(tokenEvent(0, 1.0));
    EXPECT_TRUE(stream.tryNext(&event));
    EXPECT_EQ(event.kind, StreamEventKind::kToken);
    EXPECT_FALSE(stream.tryNext(&event));
}

TEST(TokenStream, NextBlocksUntilDelivery)
{
    TokenStream stream;
    StreamEvent event;
    std::thread producer([&] {
        stream.deliver(tokenEvent(0, 5.0));
        stream.deliver(terminalEvent(StreamEventKind::kFinished));
    });
    ASSERT_TRUE(stream.next(&event));
    EXPECT_EQ(event.kind, StreamEventKind::kToken);
    ASSERT_TRUE(stream.next(&event));
    EXPECT_EQ(event.kind, StreamEventKind::kFinished);
    EXPECT_FALSE(stream.next(&event));
    producer.join();
}

TEST(TokenStream, CallbackModeRunsInlineAndNeverBuffers)
{
    std::vector<StreamEvent> seen;
    TokenStream stream(
        [&](const StreamEvent &event) { seen.push_back(event); });
    stream.deliver(tokenEvent(0, 1.0));
    stream.deliver(tokenEvent(1, 2.0));
    stream.deliver(terminalEvent(StreamEventKind::kFinished));
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].token_index, 0);
    EXPECT_EQ(seen[1].token_index, 1);
    EXPECT_EQ(seen[2].kind, StreamEventKind::kFinished);
    EXPECT_EQ(stream.tokenCount(), 2);
    EXPECT_TRUE(stream.done());
    StreamEvent event;
    EXPECT_FALSE(stream.next(&event)); // nothing is ever buffered
}

TEST(TokenStream, CancelRequestRunsThePoke)
{
    TokenStream stream;
    int pokes = 0;
    stream.setCancelPoke([&] { ++pokes; });
    EXPECT_FALSE(stream.cancelRequested());
    stream.requestCancel();
    EXPECT_TRUE(stream.cancelRequested());
    EXPECT_EQ(pokes, 1);
    stream.requestCancel(); // idempotent flag, poke fires again
    EXPECT_EQ(pokes, 2);
}

TEST(TokenStream, CancelMidPullEndsAtTheCancelledTerminal)
{
    TokenStream stream;
    stream.deliver(tokenEvent(0, 1.0));
    stream.deliver(tokenEvent(1, 2.0));
    StreamEvent event;
    ASSERT_TRUE(stream.next(&event)); // one token consumed...
    stream.requestCancel();           // ...then the consumer bails
    stream.deliver(terminalEvent(StreamEventKind::kCancelled));
    // Tokens already delivered stay readable; the stream then ends
    // at the cancel terminal, forever.
    ASSERT_TRUE(stream.next(&event));
    EXPECT_EQ(event.token_index, 1);
    ASSERT_TRUE(stream.next(&event));
    EXPECT_EQ(event.kind, StreamEventKind::kCancelled);
    EXPECT_FALSE(stream.next(&event));
    EXPECT_TRUE(stream.cancelRequested());
    EXPECT_EQ(stream.terminalKind(), StreamEventKind::kCancelled);
}

TEST(TokenStream, DisconnectedConsumerLeavesBufferedEventsSafe)
{
    // The consumer drops its reference mid-stream; the producer side
    // keeps delivering into the buffer and the last reference frees
    // everything (leak-checked under ASan).
    auto stream = std::make_shared<TokenStream>();
    std::shared_ptr<TokenStream> producer_ref = stream;
    stream.reset(); // consumer disconnects without draining
    producer_ref->deliver(tokenEvent(0, 1.0));
    producer_ref->deliver(tokenEvent(1, 2.0));
    producer_ref->deliver(terminalEvent(StreamEventKind::kFinished));
    EXPECT_EQ(producer_ref->tokenCount(), 2);
    EXPECT_TRUE(producer_ref->done());
}

TEST(TokenStreamDeathTest, DeliverAfterTerminal)
{
    TokenStream stream;
    stream.deliver(terminalEvent(StreamEventKind::kFinished));
    EXPECT_DEATH(stream.deliver(tokenEvent(0, 1.0)),
                 "terminal");
}

} // namespace
} // namespace server
} // namespace comet
