/**
 * @file
 * Equivalence suite for the runtime-dispatched SIMD substrate: every
 * routine must be bit-identical to the scalar backend under every
 * supported mode, including edge inputs (all-0xF nibbles, ragged
 * non-multiple-of-lane tails, zero-length spans), and the golden
 * vectors pin the absolute layout semantics against the kernel
 * primitives (convert.h, interleave.h, quantizer.h).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "comet/common/rng.h"
#include "comet/kernel/convert.h"
#include "comet/kernel/interleave.h"
#include "comet/quant/quantizer.h"
#include "comet/simd/simd.h"
#include "comet/simd/simd_internal.h"

namespace comet {
namespace {

// Span lengths covering zero, sub-lane, exact-lane and ragged-tail
// cases for every backend width in play (AVX2 bodies consume 8..64
// values per iteration).
const int64_t kEvenSpans[] = {0, 2, 6, 16, 30, 32, 34,
                              62, 64, 66, 126, 128, 130, 258};
const int64_t kAnySpans[] = {0, 1, 3, 7, 8, 9, 15, 16, 17,
                             31, 32, 33, 63, 64, 65, 130, 257};

std::vector<uint8_t>
randomPackedBytes(Rng &rng, int64_t n_bytes)
{
    std::vector<uint8_t> bytes(static_cast<size_t>(n_bytes));
    for (uint8_t &b : bytes)
        b = static_cast<uint8_t>(rng.uniformInt(256));
    return bytes;
}

std::vector<int8_t>
randomInt8(Rng &rng, int64_t n, int lo, int hi)
{
    std::vector<int8_t> values(static_cast<size_t>(n));
    for (int8_t &v : values)
        v = static_cast<int8_t>(
            static_cast<int>(rng.uniformInt(
                static_cast<uint64_t>(hi - lo + 1))) +
            lo);
    return values;
}

std::vector<float>
randomFloats(Rng &rng, int64_t n, double mean = 0.0,
             double stddev = 4.0)
{
    std::vector<float> values(static_cast<size_t>(n));
    for (float &v : values)
        v = static_cast<float>(rng.gaussian(mean, stddev));
    return values;
}

/** Runs every test body under one supported mode, restoring the
 * previously active mode afterwards. */
class SimdEquivalence : public ::testing::TestWithParam<simd::Mode>
{
  protected:
    void
    SetUp() override
    {
        saved_ = simd::activeMode();
        simd::setMode(GetParam());
    }

    void TearDown() override { simd::setMode(saved_); }

  private:
    simd::Mode saved_ = simd::Mode::kScalar;
};

INSTANTIATE_TEST_SUITE_P(
    AllSupportedModes, SimdEquivalence,
    ::testing::ValuesIn(simd::supportedModes()),
    [](const ::testing::TestParamInfo<simd::Mode> &info) {
        return simd::modeName(info.param);
    });

TEST_P(SimdEquivalence, UnpackInt4Golden)
{
    // 0x21 -> low nibble first: {1, 2}; 0xF8 -> {-8, -1}.
    const uint8_t packed[] = {0x21, 0xF8};
    int8_t out[4] = {};
    simd::unpackInt4(packed, 4, out);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[1], 2);
    EXPECT_EQ(out[2], -8);
    EXPECT_EQ(out[3], -1);
}

TEST_P(SimdEquivalence, UnpackMatchesScalarOnRaggedSpans)
{
    Rng rng(11);
    for (const int64_t n : kEvenSpans) {
        const std::vector<uint8_t> packed =
            randomPackedBytes(rng, n / 2);
        std::vector<int8_t> got(static_cast<size_t>(n), 99);
        std::vector<int8_t> want(static_cast<size_t>(n), 99);
        simd::unpackInt4(packed.data(), n, got.data());
        simd::detail::scalar::unpackInt4(packed.data(), n,
                                         want.data());
        EXPECT_EQ(got, want) << "n=" << n;
    }
}

TEST_P(SimdEquivalence, PackMatchesScalarAndRoundTrips)
{
    Rng rng(12);
    for (const int64_t n : kEvenSpans) {
        const std::vector<int8_t> values = randomInt8(rng, n, -8, 7);
        std::vector<uint8_t> got(static_cast<size_t>(n / 2), 0xAA);
        std::vector<uint8_t> want(static_cast<size_t>(n / 2), 0xAA);
        simd::packInt4(values.data(), n, got.data());
        simd::detail::scalar::packInt4(values.data(), n, want.data());
        EXPECT_EQ(got, want) << "n=" << n;

        std::vector<int8_t> back(static_cast<size_t>(n));
        simd::unpackInt4(got.data(), n, back.data());
        EXPECT_EQ(back, values) << "n=" << n;
    }
}

TEST_P(SimdEquivalence, AllNibbles0xF)
{
    // 0xF nibbles are -1: the sign-extension edge where a masked
    // (unsigned) interpretation would read 15.
    const std::vector<uint8_t> packed(64, 0xFF);
    std::vector<int8_t> out(128, 0);
    simd::unpackInt4(packed.data(), 128, out.data());
    for (const int8_t v : out)
        EXPECT_EQ(v, -1);

    const std::vector<int8_t> minus_ones(128, -1);
    std::vector<uint8_t> repacked(64, 0);
    simd::packInt4(minus_ones.data(), 128, repacked.data());
    EXPECT_EQ(repacked, packed);
}

TEST_P(SimdEquivalence, LocationSwitchGoldenAndScalar)
{
    // Golden: each word must match the register-level primitive.
    Rng rng(13);
    for (const int64_t n_words : {0LL, 1LL, 2LL, 7LL, 8LL, 9LL, 33LL}) {
        const std::vector<uint8_t> in =
            randomPackedBytes(rng, n_words * 4);
        std::vector<uint8_t> got(static_cast<size_t>(n_words * 4));
        simd::locationSwitchWords(in.data(), n_words, got.data());
        for (int64_t w = 0; w < n_words; ++w) {
            uint32_t word = 0, switched = 0;
            std::memcpy(&word, in.data() + w * 4, 4);
            switched = locationSwitch(word);
            uint32_t got_word = 0;
            std::memcpy(&got_word, got.data() + w * 4, 4);
            EXPECT_EQ(got_word, switched) << "word " << w;
        }
        // In-place operation is allowed.
        std::vector<uint8_t> in_place = in;
        simd::locationSwitchWords(in_place.data(), n_words,
                                  in_place.data());
        EXPECT_EQ(in_place, got);
    }
}

TEST_P(SimdEquivalence, InterleaveGoldenAndSelfInverse)
{
    Rng rng(14);
    for (const int64_t n_units : {0LL, 1LL, 2LL, 3LL, 5LL, 16LL}) {
        const std::vector<uint8_t> in =
            randomPackedBytes(rng, n_units * 8);
        std::vector<uint8_t> got(static_cast<size_t>(n_units * 8));
        simd::interleaveUnits(in.data(), n_units, got.data());

        // Golden: nibble at logical index i lands at
        // interleavedIndex(i) — the exact transform interleave.h
        // documents (whole nibble pairs move, so bytes permute).
        for (int64_t unit = 0; unit < n_units; ++unit) {
            for (int64_t i = 0; i < kInterleaveUnit; i += 2) {
                const int64_t j = interleavedIndex(i);
                EXPECT_EQ(got[static_cast<size_t>(unit * 8 + j / 2)],
                          in[static_cast<size_t>(unit * 8 + i / 2)])
                    << "unit " << unit << " value " << i;
            }
        }

        // Self-inverse: applying it twice restores the input.
        std::vector<uint8_t> twice(static_cast<size_t>(n_units * 8));
        simd::interleaveUnits(got.data(), n_units, twice.data());
        EXPECT_EQ(twice, in);
    }
}

TEST_P(SimdEquivalence, FastWidenGoldenAndScalar)
{
    Rng rng(15);
    for (const int64_t n_values : {0LL, 16LL, 32LL, 48LL, 160LL}) {
        const std::vector<uint8_t> prepared =
            randomPackedBytes(rng, n_values / 2);
        std::vector<int8_t> got(static_cast<size_t>(n_values), 1);
        std::vector<int8_t> want(static_cast<size_t>(n_values), 2);
        simd::fastWidenW4A8(prepared.data(), n_values, got.data());
        simd::detail::scalar::fastWidenW4A8(prepared.data(), n_values,
                                            want.data());
        EXPECT_EQ(got, want) << "n=" << n_values;

        // Golden per unit: [lo(w0), lo(w1), hi(w0), hi(w1)] from the
        // register-level fastInt4ToInt8 primitive.
        for (int64_t unit = 0; unit < n_values / 16; ++unit) {
            uint32_t w0 = 0, w1 = 0;
            std::memcpy(&w0, prepared.data() + unit * 8, 4);
            std::memcpy(&w1, prepared.data() + unit * 8 + 4, 4);
            const ConvertedPair p0 = fastInt4ToInt8(w0);
            const ConvertedPair p1 = fastInt4ToInt8(w1);
            const uint32_t expect_words[4] = {p0.lo, p1.lo, p0.hi,
                                              p1.hi};
            uint8_t expect[16];
            std::memcpy(expect, expect_words, 16);
            EXPECT_EQ(std::memcmp(got.data() + unit * 16, expect, 16),
                      0)
                << "unit " << unit;
        }
    }
}

TEST_P(SimdEquivalence, DotInt8MatchesNaive)
{
    Rng rng(16);
    for (const int64_t n : kAnySpans) {
        const std::vector<int8_t> a = randomInt8(rng, n, -128, 127);
        const std::vector<int8_t> b = randomInt8(rng, n, -128, 127);
        int32_t want = 0;
        for (int64_t i = 0; i < n; ++i)
            want += static_cast<int32_t>(a[static_cast<size_t>(i)]) *
                    b[static_cast<size_t>(i)];
        EXPECT_EQ(simd::dotInt8(a.data(), b.data(), n), want)
            << "n=" << n;
    }
}

TEST_P(SimdEquivalence, DotInt4MatchesUnpackedDot)
{
    Rng rng(17);
    for (const int64_t n : kEvenSpans) {
        const std::vector<uint8_t> a = randomPackedBytes(rng, n / 2);
        const std::vector<uint8_t> b = randomPackedBytes(rng, n / 2);
        std::vector<int8_t> ua(static_cast<size_t>(n)),
            ub(static_cast<size_t>(n));
        simd::detail::scalar::unpackInt4(a.data(), n, ua.data());
        simd::detail::scalar::unpackInt4(b.data(), n, ub.data());
        int32_t want = 0;
        for (int64_t i = 0; i < n; ++i)
            want += static_cast<int32_t>(ua[static_cast<size_t>(i)]) *
                    ub[static_cast<size_t>(i)];
        EXPECT_EQ(simd::dotInt4(a.data(), b.data(), n), want)
            << "n=" << n;
    }
}

TEST_P(SimdEquivalence, MinMaxUpdateBitIdenticalToScalar)
{
    Rng rng(18);
    for (const int64_t n : kAnySpans) {
        const std::vector<float> x = randomFloats(rng, n);
        std::vector<float> mins_got = randomFloats(rng, n);
        std::vector<float> maxs_got = randomFloats(rng, n);
        std::vector<float> mins_want = mins_got;
        std::vector<float> maxs_want = maxs_got;
        simd::minMaxUpdate(x.data(), n, mins_got.data(),
                           maxs_got.data());
        simd::detail::scalar::minMaxUpdate(
            x.data(), n, mins_want.data(), maxs_want.data());
        ASSERT_EQ(std::memcmp(mins_got.data(), mins_want.data(),
                              static_cast<size_t>(n) * sizeof(float)),
                  0)
            << "n=" << n;
        ASSERT_EQ(std::memcmp(maxs_got.data(), maxs_want.data(),
                              static_cast<size_t>(n) * sizeof(float)),
                  0)
            << "n=" << n;
    }
}

TEST_P(SimdEquivalence, QuantizeAffineBitIdenticalToQuantParams)
{
    Rng rng(19);
    for (const int64_t n : kAnySpans) {
        const std::vector<float> x = randomFloats(rng, n);
        std::vector<float> scales(static_cast<size_t>(n));
        std::vector<int32_t> zps(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
            scales[static_cast<size_t>(i)] = static_cast<float>(
                0.05 + 0.001 * static_cast<double>(rng.uniformInt(
                                   1000)));
            zps[static_cast<size_t>(i)] =
                static_cast<int32_t>(rng.uniformInt(15)) - 7;
        }
        std::vector<int8_t> got(static_cast<size_t>(n), 111);
        simd::quantizeAffine(x.data(), scales.data(), zps.data(), n,
                             -8, 7, got.data());
        for (int64_t i = 0; i < n; ++i) {
            QuantParams p;
            p.scale = scales[static_cast<size_t>(i)];
            p.zero_point = zps[static_cast<size_t>(i)];
            const int32_t q = std::clamp(
                p.quantize(x[static_cast<size_t>(i)]), -8, 7);
            EXPECT_EQ(got[static_cast<size_t>(i)],
                      static_cast<int8_t>(q))
                << "n=" << n << " i=" << i;
        }
    }
}

TEST_P(SimdEquivalence, DequantAffineBitIdenticalToQuantParams)
{
    Rng rng(20);
    for (const int64_t n : kAnySpans) {
        const std::vector<int8_t> q = randomInt8(rng, n, -8, 7);
        std::vector<float> scales(static_cast<size_t>(n));
        std::vector<int32_t> zps(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
            scales[static_cast<size_t>(i)] = static_cast<float>(
                rng.gaussian(0.1, 0.02));
            zps[static_cast<size_t>(i)] =
                static_cast<int32_t>(rng.uniformInt(15)) - 7;
        }
        std::vector<float> got(static_cast<size_t>(n), -777.0f);
        simd::dequantAffine(q.data(), scales.data(), zps.data(), n,
                            got.data());
        for (int64_t i = 0; i < n; ++i) {
            QuantParams p;
            p.scale = scales[static_cast<size_t>(i)];
            p.zero_point = zps[static_cast<size_t>(i)];
            const float want =
                p.dequantize(q[static_cast<size_t>(i)]);
            EXPECT_EQ(std::memcmp(&got[static_cast<size_t>(i)], &want,
                                  sizeof(float)),
                      0)
                << "n=" << n << " i=" << i;
        }
    }
}

TEST_P(SimdEquivalence, ZeroLengthSpansAreNoOps)
{
    // Null-safe zero-length calls: nothing read, nothing written.
    simd::unpackInt4(nullptr, 0, nullptr);
    simd::packInt4(nullptr, 0, nullptr);
    simd::locationSwitchWords(nullptr, 0, nullptr);
    simd::interleaveUnits(nullptr, 0, nullptr);
    simd::fastWidenW4A8(nullptr, 0, nullptr);
    simd::minMaxUpdate(nullptr, 0, nullptr, nullptr);
    simd::quantizeAffine(nullptr, nullptr, nullptr, 0, -8, 7,
                         nullptr);
    simd::dequantAffine(nullptr, nullptr, nullptr, 0, nullptr);
    EXPECT_EQ(simd::dotInt8(nullptr, nullptr, 0), 0);
    EXPECT_EQ(simd::dotInt4(nullptr, nullptr, 0), 0);
}

TEST(SimdMode, ScalarAlwaysSupportedAndListedFirst)
{
    EXPECT_TRUE(simd::modeSupported(simd::Mode::kScalar));
    const std::vector<simd::Mode> modes = simd::supportedModes();
    ASSERT_FALSE(modes.empty());
    EXPECT_EQ(modes.front(), simd::Mode::kScalar);
    for (const simd::Mode mode : modes)
        EXPECT_TRUE(simd::modeSupported(mode));
}

TEST(SimdMode, ParseRoundTripsSupportedNames)
{
    for (const simd::Mode mode : simd::supportedModes())
        EXPECT_EQ(simd::parseMode(simd::modeName(mode)), mode);
    // "auto" resolves to something the machine can run.
    EXPECT_TRUE(simd::modeSupported(simd::parseMode("auto")));
}

TEST(SimdMode, SetModeChangesActiveMode)
{
    const simd::Mode saved = simd::activeMode();
    for (const simd::Mode mode : simd::supportedModes()) {
        simd::setMode(mode);
        EXPECT_EQ(simd::activeMode(), mode);
    }
    simd::setMode(saved);
}

TEST(SimdModeDeathTest, UnknownNameAborts)
{
    EXPECT_DEATH(simd::parseMode("avx512"), "COMET_SIMD");
}

TEST(SimdModeDeathTest, UnsupportedExplicitRequestAborts)
{
    // Whichever of avx2/neon this machine lacks must refuse cleanly
    // rather than dispatch into illegal instructions.
    for (const simd::Mode mode :
         {simd::Mode::kAvx2, simd::Mode::kNeon}) {
        if (!simd::modeSupported(mode)) {
            EXPECT_DEATH(simd::setMode(mode), "");
        }
    }
}

TEST(SimdDeathTest, PackInt4RejectsOutOfRangeValues)
{
    // 8 and -9 are unrepresentable in INT4; masking them would
    // silently corrupt the packed lane (8 aliases to -8).
    const int8_t high[] = {0, 8};
    uint8_t packed[1];
    EXPECT_DEATH(simd::packInt4(high, 2, packed), "INT4 pack");
    const int8_t low[] = {-9, 0};
    EXPECT_DEATH(simd::packInt4(low, 2, packed), "INT4 pack");
}

TEST(SimdDeathTest, ShapeChecks)
{
    uint8_t packed[8] = {};
    int8_t out[16] = {};
    EXPECT_DEATH(simd::unpackInt4(packed, 3, out), "");
    EXPECT_DEATH(simd::packInt4(out, 3, packed), "");
    EXPECT_DEATH(simd::fastWidenW4A8(packed, 8, out), "");
    const float x[1] = {0.0f};
    const float scales[1] = {1.0f};
    const int32_t zps[1] = {0};
    int8_t q[1];
    EXPECT_DEATH(
        simd::quantizeAffine(x, scales, zps, 1, 7, -8, q), "");
}

} // namespace
} // namespace comet
