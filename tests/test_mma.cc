/**
 * @file
 * Unit tests for the emulated tensor-core mma tiles, including the
 * full W4A8 prepared-weight path.
 */
#include <gtest/gtest.h>

#include "comet/common/rng.h"
#include "comet/kernel/interleave.h"
#include "comet/kernel/mma.h"

namespace comet {
namespace {

Int8Tensor
randomInt8(int64_t rows, int64_t cols, Rng &rng)
{
    Int8Tensor t(rows, cols);
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            t.set(r, c,
                  static_cast<int8_t>(
                      static_cast<int>(rng.uniformInt(256)) - 128));
        }
    }
    return t;
}

Int4Tensor
randomInt4(int64_t rows, int64_t cols, Rng &rng)
{
    Int4Tensor t(rows, cols);
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            t.set(r, c,
                  static_cast<int8_t>(
                      static_cast<int>(rng.uniformInt(16)) - 8));
        }
    }
    return t;
}

template <typename TensorT>
int64_t
scalarDot(const TensorT &a, int64_t ar, const TensorT &b, int64_t br,
          int64_t k0, int64_t k_len)
{
    int64_t sum = 0;
    for (int64_t k = k0; k < k0 + k_len; ++k) {
        sum += static_cast<int64_t>(a.get(ar, k)) * b.get(br, k);
    }
    return sum;
}

TEST(AccumTile, AccessAndReset)
{
    AccumTile tile(2, 3);
    tile.at(1, 2) = 42;
    EXPECT_EQ(tile.at(1, 2), 42);
    tile.reset();
    EXPECT_EQ(tile.at(1, 2), 0);
}

TEST(AccumTileDeathTest, BoundsChecked)
{
    AccumTile tile(2, 2);
    EXPECT_DEATH(tile.at(2, 0), "CHECK failed");
}

TEST(MmaInt8, MatchesScalarReference)
{
    Rng rng(1);
    const Int8Tensor a = randomInt8(4, 32, rng);
    const Int8Tensor b = randomInt8(6, 32, rng);
    AccumTile acc(4, 6);
    mmaInt8(acc, a, 0, b, 0, 0, 32);
    for (int64_t i = 0; i < 4; ++i) {
        for (int64_t j = 0; j < 6; ++j)
            EXPECT_EQ(acc.at(i, j), scalarDot(a, i, b, j, 0, 32));
    }
}

TEST(MmaInt8, RespectsRowAndKOffsets)
{
    Rng rng(2);
    const Int8Tensor a = randomInt8(8, 64, rng);
    const Int8Tensor b = randomInt8(8, 64, rng);
    AccumTile acc(2, 2);
    mmaInt8(acc, a, 4, b, 2, 16, 32);
    for (int64_t i = 0; i < 2; ++i) {
        for (int64_t j = 0; j < 2; ++j) {
            EXPECT_EQ(acc.at(i, j),
                      scalarDot(a, 4 + i, b, 2 + j, 16, 32));
        }
    }
}

TEST(MmaInt8, AccumulatesAcrossCalls)
{
    Rng rng(3);
    const Int8Tensor a = randomInt8(2, 64, rng);
    const Int8Tensor b = randomInt8(2, 64, rng);
    AccumTile split(2, 2), whole(2, 2);
    mmaInt8(split, a, 0, b, 0, 0, 32);
    mmaInt8(split, a, 0, b, 0, 32, 32);
    mmaInt8(whole, a, 0, b, 0, 0, 64);
    for (int64_t i = 0; i < 2; ++i) {
        for (int64_t j = 0; j < 2; ++j)
            EXPECT_EQ(split.at(i, j), whole.at(i, j));
    }
}

TEST(MmaInt4, MatchesScalarReference)
{
    Rng rng(4);
    const Int4Tensor a = randomInt4(4, 64, rng);
    const Int4Tensor b = randomInt4(6, 64, rng);
    AccumTile acc(4, 6);
    mmaInt4(acc, a, 0, b, 0, 0, 64);
    for (int64_t i = 0; i < 4; ++i) {
        for (int64_t j = 0; j < 6; ++j)
            EXPECT_EQ(acc.at(i, j), scalarDot(a, i, b, j, 0, 64));
    }
}

TEST(MmaW4A8Prepared, MatchesScalarTimesSixteen)
{
    Rng rng(5);
    const Int8Tensor a = randomInt8(4, 64, rng);
    const Int4Tensor w = randomInt4(6, 64, rng);
    const Int4Tensor prepared = prepareWeightsForW4A8(w);

    AccumTile acc(4, 6);
    mmaW4A8Prepared(acc, a, 0, prepared, 0, 0, 64);
    for (int64_t i = 0; i < 4; ++i) {
        for (int64_t j = 0; j < 6; ++j) {
            int64_t expected = 0;
            for (int64_t k = 0; k < 64; ++k) {
                expected += static_cast<int64_t>(a.get(i, k)) *
                            w.get(j, k);
            }
            EXPECT_EQ(acc.at(i, j), kFastConvMultiplier * expected)
                << "(" << i << "," << j << ")";
        }
    }
}

TEST(MmaW4A8Prepared, CountsConversionInstructions)
{
    Rng rng(6);
    const Int8Tensor a = randomInt8(2, 32, rng);
    const Int4Tensor w = randomInt4(2, 32, rng);
    const Int4Tensor prepared = prepareWeightsForW4A8(w);
    InstructionCounter counter;
    AccumTile acc(2, 2);
    mmaW4A8Prepared(acc, a, 0, prepared, 0, 0, 32, &counter);
    // 2 rows x 2 units x 2 words x <=3 instructions.
    EXPECT_GT(counter.count(), 0);
    EXPECT_LE(counter.count(), 2 * 2 * 2 * 3);
}

TEST(MmaW4A8Prepared, KOffsetWithinRow)
{
    Rng rng(7);
    const Int8Tensor a = randomInt8(2, 96, rng);
    const Int4Tensor w = randomInt4(2, 96, rng);
    const Int4Tensor prepared = prepareWeightsForW4A8(w);
    AccumTile acc(2, 2);
    mmaW4A8Prepared(acc, a, 0, prepared, 0, 32, 48);
    for (int64_t i = 0; i < 2; ++i) {
        for (int64_t j = 0; j < 2; ++j) {
            int64_t expected = 0;
            for (int64_t k = 32; k < 80; ++k) {
                expected += static_cast<int64_t>(a.get(i, k)) *
                            w.get(j, k);
            }
            EXPECT_EQ(acc.at(i, j), 16 * expected);
        }
    }
}

TEST(MmaDeathTest, AlignmentEnforced)
{
    Rng rng(8);
    const Int8Tensor a8 = randomInt8(2, 32, rng);
    const Int4Tensor a4 = randomInt4(2, 32, rng);
    AccumTile acc(2, 2);
    EXPECT_DEATH(mmaInt8(acc, a8, 0, a8, 0, 2, 4), "CHECK failed");
    EXPECT_DEATH(mmaInt4(acc, a4, 0, a4, 0, 4, 8), "CHECK failed");
    EXPECT_DEATH(mmaW4A8Prepared(acc, a8, 0, a4, 0, 8, 16),
                 "CHECK failed");
}

} // namespace
} // namespace comet
