/**
 * @file
 * Differential proof layer for comet::tp: every sharded operator must
 * produce *bit-identical* output to its TP=1 counterpart — not merely
 * close. Column/row W4Ax GEMM shards, head-sharded decode attention
 * (float and quantized caches), degree validation, the tp.allreduce
 * retry failpoint, the shard-aware KV-pool accounting, and cluster
 * config validation.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "comet/attention/decode_attention.h"
#include "comet/chaos/failpoint.h"
#include "comet/cluster/router.h"
#include "comet/common/rng.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/kvcache/kv_cache.h"
#include "comet/model/llm_config.h"
#include "comet/model/synthetic.h"
#include "comet/obs/metrics.h"
#include "comet/quant/kv_quant.h"
#include "comet/serve/engine.h"
#include "comet/tp/shard.h"

namespace comet {
namespace {

struct TpFixture {
    FmpqActivationQuantizer quantizer;
    MixedQuantizedActivation activation;
    BlockQuantizedWeight weight;
};

TpFixture
makeFixture(int64_t tokens, int64_t out_features, int64_t channels,
            int64_t block_size, uint64_t seed)
{
    Rng rng(seed);
    SyntheticActivationConfig act_config;
    act_config.channels = channels;
    act_config.outlier_fraction = 0.03;
    act_config.outlier_scale = 30.0;
    act_config.seed = seed + 1;
    const SyntheticActivationModel model(act_config);

    FmpqConfig fmpq_config;
    fmpq_config.block_size = block_size;
    const Tensor calib = model.sample(64, rng);
    auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, fmpq_config);
    auto activation = quantizer.quantize(model.sample(tokens, rng));
    auto weight =
        quantizer.quantizeWeight(sampleWeights(out_features, channels, rng));
    return {std::move(quantizer), std::move(activation),
            std::move(weight)};
}

W4AxGemmConfig
smallTiles()
{
    W4AxGemmConfig config;
    config.tile_m = 8;
    config.tile_n = 8;
    config.tile_k = 32;
    return config;
}

/** Bitwise tensor equality — the differential layer's yardstick. */
void
expectBitIdentical(const Tensor &a, const Tensor &b)
{
    ASSERT_EQ(a.numel(), b.numel());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.numel()) *
                              sizeof(float)),
              0);
}

void
expectBitIdentical(const std::vector<float> &a,
                   const std::vector<float> &b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(float)),
              0);
}

TEST(ShardedW4AxGemm, ColumnShardsAreBitIdentical)
{
    for (uint64_t seed : {1u, 2u, 3u}) {
        TpFixture s = makeFixture(8, 32, 128, 32, seed);
        const W4AxGemm reference(
            s.weight, s.quantizer.blockPrecisions(), smallTiles());
        const Tensor expected = reference.run(s.activation);
        for (int degree : {1, 2, 4, 8}) {
            auto sharded = tp::ShardedW4AxGemm::create(
                s.weight, s.quantizer.blockPrecisions(),
                tp::TpPartition::kColumn, degree, smallTiles());
            ASSERT_TRUE(sharded.isOk()) << sharded.status().message();
            const Tensor out = sharded.value().run(s.activation);
            expectBitIdentical(expected, out);
        }
    }
}

TEST(ShardedW4AxGemm, RowShardsAreBitIdentical)
{
    // The hard case: row-parallel partial sums re-associate float
    // additions unless the all-reduce folds per-k-tile contributions
    // in the TP=1 order — which is exactly what the implementation
    // does, so equality is bitwise, not approximate.
    for (uint64_t seed : {1u, 5u, 9u}) {
        TpFixture s = makeFixture(8, 16, 256, 32, seed);
        const W4AxGemm reference(
            s.weight, s.quantizer.blockPrecisions(), smallTiles());
        const Tensor expected = reference.run(s.activation);
        for (int degree : {1, 2, 4, 8}) {
            auto sharded = tp::ShardedW4AxGemm::create(
                s.weight, s.quantizer.blockPrecisions(),
                tp::TpPartition::kRow, degree, smallTiles());
            ASSERT_TRUE(sharded.isOk()) << sharded.status().message();
            const Tensor out = sharded.value().run(s.activation);
            expectBitIdentical(expected, out);
        }
    }
}

TEST(ShardedW4AxGemm, BitIdenticalAcrossTallBatchesAndNaiveConversion)
{
    // m spans multiple m-tiles; fast and naive W4A8 conversion paths
    // both shard exactly.
    for (bool fast : {true, false}) {
        W4AxGemmConfig config = smallTiles();
        config.use_fast_conversion = fast;
        TpFixture s = makeFixture(37, 16, 128, 32, 11);
        const W4AxGemm reference(
            s.weight, s.quantizer.blockPrecisions(), config);
        const Tensor expected = reference.run(s.activation);
        for (tp::TpPartition partition :
             {tp::TpPartition::kColumn, tp::TpPartition::kRow}) {
            auto sharded = tp::ShardedW4AxGemm::create(
                s.weight, s.quantizer.blockPrecisions(), partition,
                partition == tp::TpPartition::kColumn ? 4 : 2,
                config);
            ASSERT_TRUE(sharded.isOk()) << sharded.status().message();
            expectBitIdentical(expected,
                               sharded.value().run(s.activation));
        }
    }
}

TEST(ShardedW4AxGemm, StatsMatchTheUnshardedRun)
{
    // 64 out features: every degree-4 shard is a whole number of
    // n-tiles, so tile tallies — not just mac counts — line up.
    TpFixture s = makeFixture(8, 64, 256, 32, 13);
    const W4AxGemm reference(
        s.weight, s.quantizer.blockPrecisions(), smallTiles());
    W4AxGemmStats expected;
    reference.run(s.activation, &expected);
    for (tp::TpPartition partition :
         {tp::TpPartition::kColumn, tp::TpPartition::kRow}) {
        auto sharded = tp::ShardedW4AxGemm::create(
            s.weight, s.quantizer.blockPrecisions(), partition, 4,
            smallTiles());
        ASSERT_TRUE(sharded.isOk()) << sharded.status().message();
        W4AxGemmStats stats;
        sharded.value().run(s.activation, &stats);
        EXPECT_EQ(stats.int4_tiles, expected.int4_tiles);
        EXPECT_EQ(stats.int8_tiles, expected.int8_tiles);
        EXPECT_EQ(stats.int4_mac_ops, expected.int4_mac_ops);
        EXPECT_EQ(stats.int8_mac_ops, expected.int8_mac_ops);
        EXPECT_EQ(stats.conversion_instructions,
                  expected.conversion_instructions);
    }
}

TEST(ShardedW4AxGemm, RejectsGeometryViolations)
{
    TpFixture s = makeFixture(8, 16, 128, 32, 17);
    // 16 out features cannot split 5 ways.
    auto column = tp::ShardedW4AxGemm::create(
        s.weight, s.quantizer.blockPrecisions(),
        tp::TpPartition::kColumn, 5, smallTiles());
    EXPECT_FALSE(column.isOk());
    // 4 FMPQ blocks cannot split 8 ways without crossing a
    // quantization group.
    auto row = tp::ShardedW4AxGemm::create(
        s.weight, s.quantizer.blockPrecisions(),
        tp::TpPartition::kRow, 8, smallTiles());
    EXPECT_FALSE(row.isOk());
    EXPECT_NE(row.status().message().find("quantization"),
              std::string::npos);
    auto degree = tp::ShardedW4AxGemm::create(
        s.weight, s.quantizer.blockPrecisions(),
        tp::TpPartition::kRow, 0, smallTiles());
    EXPECT_FALSE(degree.isOk());
}

TEST(ShardedW4AxGemm, AllReduceFailpointRetriesByteIdentically)
{
    TpFixture s = makeFixture(8, 16, 256, 32, 19);
    auto sharded = tp::ShardedW4AxGemm::create(
        s.weight, s.quantizer.blockPrecisions(),
        tp::TpPartition::kRow, 4, smallTiles());
    ASSERT_TRUE(sharded.isOk());
    const Tensor clean = sharded.value().run(s.activation);

    obs::MetricsRegistry::global().reset();
    chaos::FailPointRegistry &registry = chaos::FailPointRegistry::global();
    registry.disarmAll();
    registry.arm("tp.allreduce", chaos::FailPointSpec::everyNth(1));
    const Tensor faulted = sharded.value().run(s.activation);
    EXPECT_EQ(registry.fireCount("tp.allreduce"), 1);
    registry.disarmAll();
    expectBitIdentical(clean, faulted);
    EXPECT_EQ(obs::MetricsRegistry::global()
                  .counter("tp.allreduce.retries")
                  .value(),
              1);
}

AttentionConfig
gqaConfig()
{
    AttentionConfig config;
    config.num_heads = 8;
    config.num_kv_heads = 4;
    config.head_dim = 16;
    config.chunk_tokens = 32;
    return config;
}

TEST(ShardedDecodeAttention, FloatCacheIsBitIdentical)
{
    const AttentionConfig config = gqaConfig();
    Rng rng(23);
    const int64_t tokens = 96;
    std::vector<float> q(static_cast<size_t>(config.qDim()));
    for (float &v : q)
        v = static_cast<float>(rng.gaussian());
    Tensor k(tokens, config.kvDim());
    Tensor v(tokens, config.kvDim());
    for (int64_t t = 0; t < tokens; ++t) {
        for (int64_t c = 0; c < config.kvDim(); ++c) {
            k.at(t, c) = static_cast<float>(rng.gaussian());
            v.at(t, c) = static_cast<float>(rng.gaussian());
        }
    }
    const std::vector<float> expected =
        decodeAttentionOnline(config, q, k, v);
    for (int degree : {1, 2, 4}) {
        auto sharded =
            tp::ShardedDecodeAttention::create(config, degree);
        ASSERT_TRUE(sharded.isOk()) << sharded.status().message();
        expectBitIdentical(expected, sharded.value().run(q, k, v));
    }
}

TEST(ShardedDecodeAttention, QuantizedCacheIsBitIdentical)
{
    const AttentionConfig config = gqaConfig();
    Rng rng(29);
    const int64_t tokens = 96;
    std::vector<float> q(static_cast<size_t>(config.qDim()));
    for (float &v : q)
        v = static_cast<float>(rng.gaussian());
    Tensor k(tokens, config.kvDim());
    Tensor v(tokens, config.kvDim());
    for (int64_t t = 0; t < tokens; ++t) {
        for (int64_t c = 0; c < config.kvDim(); ++c) {
            k.at(t, c) = static_cast<float>(rng.gaussian());
            v.at(t, c) = static_cast<float>(rng.gaussian());
        }
    }
    const KvCacheQuantizer quantizer;
    const QuantizedKv qk = quantizer.quantize(k);
    const QuantizedKv qv = quantizer.quantize(v);
    const std::vector<float> expected =
        decodeAttentionQuantized(config, q, qk, qv, quantizer);
    for (int degree : {1, 2, 4}) {
        auto sharded =
            tp::ShardedDecodeAttention::create(config, degree);
        ASSERT_TRUE(sharded.isOk()) << sharded.status().message();
        expectBitIdentical(
            expected,
            sharded.value().runQuantized(q, qk, qv, quantizer));
    }
}

TEST(ShardedDecodeAttention, RejectsDegreesCrossingHeadGroups)
{
    // degree 8 would split the 4 KV heads.
    auto sharded = tp::ShardedDecodeAttention::create(gqaConfig(), 8);
    EXPECT_FALSE(sharded.isOk());
    EXPECT_NE(sharded.status().message().find("KV"),
              std::string::npos);
}

TEST(ValidateTpDegree, NamesTheFailingExtent)
{
    const LlmConfig model = LlmConfig::llama3_8b();
    EXPECT_TRUE(tp::validateTpDegree(model, 1).isOk());
    EXPECT_TRUE(tp::validateTpDegree(model, 4).isOk());
    EXPECT_TRUE(tp::validateTpDegree(model, 8).isOk());
    const Status odd = tp::validateTpDegree(model, 3);
    EXPECT_FALSE(odd.isOk());
    EXPECT_NE(odd.message().find("head"), std::string::npos);
    const Status wild = tp::validateTpDegree(model, 16);
    EXPECT_FALSE(wild.isOk()); // 8 KV heads % 16 != 0
    EXPECT_FALSE(tp::validateTpDegree(model, 0).isOk());
    EXPECT_FALSE(tp::validateTpDegree(model, -2).isOk());
}

TEST(ShardRange, CoversTheExtentExactly)
{
    for (int degree : {1, 2, 4, 8}) {
        int64_t covered = 0;
        for (int r = 0; r < degree; ++r) {
            const tp::ShardRange range = tp::shardRange(64, degree, r);
            EXPECT_EQ(range.begin, covered);
            covered = range.end;
            EXPECT_EQ(range.size(), 64 / degree);
        }
        EXPECT_EQ(covered, 64);
    }
}

TEST(KvPoolAccounting, BlockHelperIsShardAware)
{
    // The bug this guards: sizing the requested block count against
    // the per-GPU budget instead of the TP group's pool would hand a
    // TP=N engine N times the asked-for capacity.
    for (int tp : {1, 2, 4, 8}) {
        EngineConfig config;
        config.model = LlmConfig::llama3_8b();
        config.mode = ServingMode::kCometW4AxKv4;
        config.input_tokens = 128;
        config.output_tokens = 32;
        config.tensor_parallel = tp;
        const EngineConfig sized =
            engineConfigWithKvBlocks(config, 256);
        const ServingEngine engine(sized);
        KvCacheConfig cache_config;
        cache_config.bits_per_value =
            servingPrecision(sized.mode).kv_bits;
        cache_config.block_tokens = sized.kv_block_tokens;
        cache_config.memory_budget_bytes = engine.kvPoolBytes();
        const PagedKvCache cache(sized.model, cache_config);
        EXPECT_EQ(cache.totalBlocks(), 256) << "tp " << tp;
        EXPECT_DOUBLE_EQ(engine.kvPoolBytes(),
                         engine.kvBudgetBytes() *
                             static_cast<double>(tp));
    }
}

TEST(ValidateClusterConfig, RejectsBadReplicaSpecs)
{
    EngineConfig engine_config;
    engine_config.model = LlmConfig::llama3_8b();
    const ServingEngine engine(engine_config);

    cluster::ClusterConfig empty;
    EXPECT_FALSE(cluster::validateClusterConfig(empty).isOk());

    cluster::ClusterConfig missing;
    missing.replicas.push_back({});
    EXPECT_FALSE(cluster::validateClusterConfig(missing).isOk());

    cluster::ClusterConfig odd_tp;
    cluster::ReplicaSpec spec;
    spec.engine = &engine;
    spec.tp_degree = 3; // 8 KV heads % 3 != 0
    odd_tp.replicas.push_back(spec);
    const Status status = cluster::validateClusterConfig(odd_tp);
    EXPECT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("replica 0"), std::string::npos);
    EXPECT_NE(status.message().find("head"), std::string::npos);

    spec.tp_degree = 4;
    spec.kv_blocks = 256;
    cluster::ClusterConfig good;
    good.replicas.push_back(spec);
    EXPECT_TRUE(cluster::validateClusterConfig(good).isOk());
}

} // namespace
} // namespace comet
