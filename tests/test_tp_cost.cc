/**
 * @file
 * Property suite for tp::InterconnectModel, the deterministic
 * allreduce/allgather cost model TP planning rests on: monotonicity
 * in message size and degree, symmetry under rank permutation, golden
 * pins against the paper-Section-2.3 A100 link constants, and the
 * ring-vs-direct crossover law.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "comet/gpusim/gpu_spec.h"
#include "comet/model/llm_config.h"
#include "comet/serve/engine.h"
#include "comet/tp/interconnect.h"

namespace comet {
namespace {

tp::InterconnectModel
a100Model()
{
    return tp::InterconnectModel(GpuSpec::a100Sxm480G());
}

TEST(InterconnectModel, PullsConstantsFromTheSpec)
{
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    const tp::InterconnectModel model(spec);
    EXPECT_DOUBLE_EQ(model.linkBandwidth(), spec.nvlink_bandwidth);
    EXPECT_DOUBLE_EQ(model.hopLatencyUs(), spec.nvlink_latency_us);
    EXPECT_GT(spec.nvlink_bandwidth, 0.0);
    EXPECT_GT(spec.nvlink_latency_us, 0.0);
    // H100's NVLink 4 is faster on both axes.
    const GpuSpec h100 = GpuSpec::h100Sxm80G();
    EXPECT_GT(h100.nvlink_bandwidth, spec.nvlink_bandwidth);
    EXPECT_LT(h100.nvlink_latency_us, spec.nvlink_latency_us);
}

TEST(InterconnectModel, DegreeOneCostsNothing)
{
    const tp::InterconnectModel model = a100Model();
    for (double bytes : {0.0, 1.0, 2e6, 1e9}) {
        EXPECT_DOUBLE_EQ(model.allReduceUs(bytes, 1), 0.0);
        EXPECT_DOUBLE_EQ(model.allGatherUs(bytes, 1), 0.0);
    }
}

TEST(InterconnectModel, GoldenPinsA100)
{
    // 600 GB/s NVLink 3, 1.5 us/hop (paper Section 2.3 platform).
    // Worked by hand for a 2 MB decode activation at TP=4:
    //   ring   = 2*(3/4)*2e6/600e9*1e6 + 2*3*1.5 = 5.0 + 9.0 us
    //   direct = 3*2e6/600e9*1e6 + 1.5          = 10.0 + 1.5 us
    const tp::InterconnectModel model = a100Model();
    EXPECT_NEAR(model.ringAllReduceUs(2e6, 4), 14.0, 1e-9);
    EXPECT_NEAR(model.directAllReduceUs(2e6, 4), 11.5, 1e-9);
    EXPECT_NEAR(model.allReduceUs(2e6, 4), 11.5, 1e-9);
    EXPECT_EQ(model.chooseAllReduce(2e6, 4),
              tp::CollectiveAlgo::kDirect);
    // The crossover solves ring == direct:
    //   B = L*(2N-3)*bw*N / ((N-1)(N-2)*1e6) = 3e6 bytes at N=4.
    EXPECT_NEAR(model.ringDirectCrossoverBytes(4), 3e6, 1.0);
    EXPECT_NEAR(model.ringAllReduceUs(3e6, 4), 16.5, 1e-9);
    EXPECT_NEAR(model.directAllReduceUs(3e6, 4), 16.5, 1e-9);
}

TEST(InterconnectModel, MonotoneInMessageSize)
{
    const tp::InterconnectModel model = a100Model();
    for (int degree : {2, 3, 4, 8}) {
        double previous = -1.0;
        double previous_gather = -1.0;
        for (double bytes = 0.0; bytes <= 64e6; bytes += 1e6) {
            const double cost = model.allReduceUs(bytes, degree);
            EXPECT_GT(cost, previous)
                << "degree " << degree << " bytes " << bytes;
            previous = cost;
            // allGather takes the per-rank shard size; it is monotone
            // in that size too.
            const double gather = model.allGatherUs(bytes, degree);
            EXPECT_GT(gather, previous_gather)
                << "degree " << degree << " bytes " << bytes;
            previous_gather = gather;
        }
    }
}

TEST(InterconnectModel, MonotoneInDegree)
{
    const tp::InterconnectModel model = a100Model();
    for (double bytes : {4096.0, 5e5, 2e6, 3e6, 64e6}) {
        double previous = 0.0;
        for (int degree = 2; degree <= 16; ++degree) {
            const double cost = model.allReduceUs(bytes, degree);
            EXPECT_GT(cost, previous)
                << "bytes " << bytes << " degree " << degree;
            previous = cost;
        }
    }
}

TEST(InterconnectModel, SymmetricUnderRankPermutation)
{
    const tp::InterconnectModel model = a100Model();
    std::mt19937_64 shuffler(7);
    for (int degree : {2, 3, 4, 8}) {
        std::vector<int> order(static_cast<size_t>(degree));
        std::iota(order.begin(), order.end(), 0);
        const double reference =
            model.ringAllReduceUs(2e6, order);
        EXPECT_DOUBLE_EQ(reference,
                         model.ringAllReduceUs(2e6, degree));
        for (int trial = 0; trial < 16; ++trial) {
            std::shuffle(order.begin(), order.end(), shuffler);
            EXPECT_DOUBLE_EQ(model.ringAllReduceUs(2e6, order),
                             reference)
                << "degree " << degree;
        }
    }
}

TEST(InterconnectModel, RingWinsBeyondTheCrossover)
{
    const tp::InterconnectModel model = a100Model();
    for (int degree : {3, 4, 6, 8}) {
        const double crossover =
            model.ringDirectCrossoverBytes(degree);
        ASSERT_TRUE(std::isfinite(crossover)) << degree;
        ASSERT_GT(crossover, 0.0);
        for (double factor : {1.0, 1.5, 4.0, 32.0}) {
            EXPECT_LE(model.ringAllReduceUs(crossover * factor,
                                            degree),
                      model.directAllReduceUs(crossover * factor,
                                              degree))
                << "degree " << degree << " factor " << factor;
        }
        for (double factor : {0.1, 0.5, 0.99}) {
            EXPECT_GT(model.ringAllReduceUs(crossover * factor,
                                            degree),
                      model.directAllReduceUs(crossover * factor,
                                              degree))
                << "degree " << degree << " factor " << factor;
        }
    }
}

TEST(InterconnectModel, DirectAlwaysWinsAtDegreeTwo)
{
    // Both algorithms move the same bytes per link at N=2; ring just
    // pays more hops — the crossover is infinite.
    const tp::InterconnectModel model = a100Model();
    EXPECT_TRUE(
        std::isinf(model.ringDirectCrossoverBytes(2)));
    for (double bytes : {1.0, 1e6, 1e9, 64e9}) {
        EXPECT_LT(model.directAllReduceUs(bytes, 2),
                  model.ringAllReduceUs(bytes, 2));
        EXPECT_EQ(model.chooseAllReduce(bytes, 2),
                  tp::CollectiveAlgo::kDirect);
    }
}

TEST(InterconnectModel, AllGatherNeverBeatsItsOwnBandwidthFloor)
{
    const tp::InterconnectModel model = a100Model();
    for (int degree : {2, 4, 8}) {
        for (double bytes : {4096.0, 2e6, 64e6}) {
            const double floor_us = (degree - 1) * bytes /
                                    model.linkBandwidth() * 1e6;
            EXPECT_GE(model.allGatherUs(bytes, degree), floor_us);
            EXPECT_LE(model.directAllGatherUs(bytes, degree),
                      model.ringAllGatherUs(bytes, degree));
        }
    }
}

TEST(InterconnectModel, EngineAllReduceUsesTheModel)
{
    // The engine's per-step collective charge must be exactly two
    // modeled all-reduces per decoder layer of the step's FP16
    // activation tensor — no stray constants.
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.tensor_parallel = 4;
    const ServingEngine engine(config);
    const tp::InterconnectModel model(config.gpu);
    for (int64_t m : {1, 16, 64, 256}) {
        const double tensor_bytes =
            static_cast<double>(m) *
            static_cast<double>(config.model.hidden_size) * 2.0;
        EXPECT_DOUBLE_EQ(
            engine.allReduceLatencyUs(m),
            2.0 * model.allReduceUs(tensor_bytes, 4) *
                static_cast<double>(config.model.num_layers));
    }
}

} // namespace
} // namespace comet
