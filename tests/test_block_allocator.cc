/**
 * @file
 * Unit tests for the paged block allocator.
 */
#include <gtest/gtest.h>

#include <set>

#include "comet/kvcache/block_allocator.h"

namespace comet {
namespace {

TEST(BlockAllocator, StartsAllFree)
{
    BlockAllocator allocator(8);
    EXPECT_EQ(allocator.totalBlocks(), 8);
    EXPECT_EQ(allocator.freeBlocks(), 8);
    EXPECT_EQ(allocator.usedBlocks(), 0);
}

TEST(BlockAllocator, AllocateUniqueBlocks)
{
    BlockAllocator allocator(4);
    std::set<int64_t> blocks;
    for (int i = 0; i < 4; ++i) {
        const Result<int64_t> block = allocator.allocate();
        ASSERT_TRUE(block.isOk());
        blocks.insert(block.value());
    }
    EXPECT_EQ(blocks.size(), 4u);
    EXPECT_EQ(allocator.freeBlocks(), 0);
}

TEST(BlockAllocator, ExhaustionReturnsError)
{
    BlockAllocator allocator(1);
    ASSERT_TRUE(allocator.allocate().isOk());
    const Result<int64_t> overflow = allocator.allocate();
    EXPECT_FALSE(overflow.isOk());
    EXPECT_EQ(overflow.status().code(),
              StatusCode::kResourceExhausted);
}

TEST(BlockAllocator, ReleaseRecycles)
{
    BlockAllocator allocator(2);
    const int64_t a = allocator.allocate().value();
    const int64_t b = allocator.allocate().value();
    allocator.release(a);
    EXPECT_EQ(allocator.freeBlocks(), 1);
    const int64_t c = allocator.allocate().value();
    EXPECT_EQ(c, a); // LIFO reuse
    allocator.release(b);
    allocator.release(c);
    EXPECT_EQ(allocator.freeBlocks(), 2);
}

TEST(BlockAllocator, RefCountingForPrefixSharing)
{
    BlockAllocator allocator(2);
    const int64_t block = allocator.allocate().value();
    EXPECT_EQ(allocator.refCount(block), 1);
    allocator.addRef(block);
    EXPECT_EQ(allocator.refCount(block), 2);
    allocator.release(block);
    EXPECT_EQ(allocator.refCount(block), 1);
    EXPECT_EQ(allocator.freeBlocks(), 1); // still owned
    allocator.release(block);
    EXPECT_EQ(allocator.refCount(block), 0);
    EXPECT_EQ(allocator.freeBlocks(), 2);
}

TEST(BlockAllocatorDeathTest, MisuseAborts)
{
    BlockAllocator allocator(2);
    EXPECT_DEATH(allocator.release(0), "free block");
    const int64_t block = allocator.allocate().value();
    (void)block;
    EXPECT_DEATH(allocator.addRef(1), "free block");
    EXPECT_DEATH(allocator.release(5), "CHECK failed");
}

TEST(BlockAllocator, StressChurn)
{
    BlockAllocator allocator(16);
    std::vector<int64_t> held;
    for (int round = 0; round < 100; ++round) {
        if (round % 3 != 2 && allocator.freeBlocks() > 0) {
            held.push_back(allocator.allocate().value());
        } else if (!held.empty()) {
            allocator.release(held.back());
            held.pop_back();
        }
        EXPECT_EQ(allocator.usedBlocks(),
                  static_cast<int64_t>(held.size()));
    }
}

} // namespace
} // namespace comet
