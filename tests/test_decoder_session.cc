/**
 * @file
 * Tests for the incremental decoder session: exact agreement with the
 * full forward pass, KV-quantized decoding, and generation.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/model/decoder_session.h"

namespace comet {
namespace {

TinyTransformerConfig
sessionConfig(bool gated = true)
{
    TinyTransformerConfig config;
    config.vocab_size = 64;
    config.hidden_size = 64;
    config.num_heads = 4;
    config.num_kv_heads = 2;
    config.num_layers = 2;
    config.intermediate_size = 128;
    config.gated_mlp = gated;
    config.outlier_fraction = 0.05;
    config.outlier_scale = 15.0;
    config.seed = 33;
    return config;
}

TEST(DecoderSession, MatchesFullForwardExactly)
{
    const auto model = TinyTransformer::random(sessionConfig());
    const std::vector<int32_t> tokens{3, 17, 42, 9, 28, 55, 1};
    const Tensor full = model.forward(tokens);

    DecoderSession session(model);
    for (size_t t = 0; t < tokens.size(); ++t) {
        const std::vector<float> logits = session.step(tokens[t]);
        for (int64_t v = 0; v < 64; ++v) {
            ASSERT_NEAR(logits[static_cast<size_t>(v)],
                        full.at(static_cast<int64_t>(t), v), 1e-3)
                << "position " << t << " vocab " << v;
        }
    }
    EXPECT_EQ(session.position(), 7);
}

TEST(DecoderSession, PlainMlpVariantAlsoMatches)
{
    const auto model =
        TinyTransformer::random(sessionConfig(false));
    const std::vector<int32_t> tokens{5, 6, 7, 8};
    const Tensor full = model.forward(tokens);
    DecoderSession session(model);
    const std::vector<float> last = session.prefill(tokens);
    for (int64_t v = 0; v < 64; ++v)
        EXPECT_NEAR(last[static_cast<size_t>(v)], full.at(3, v),
                    1e-3);
}

TEST(DecoderSession, CapacityGrowthPreservesState)
{
    // Cross the 16-token initial capacity to exercise reallocation.
    const auto model = TinyTransformer::random(sessionConfig());
    std::vector<int32_t> tokens;
    for (int t = 0; t < 40; ++t)
        tokens.push_back(t % 64);
    const Tensor full = model.forward(tokens);
    DecoderSession session(model);
    const std::vector<float> last = session.prefill(tokens);
    for (int64_t v = 0; v < 64; ++v)
        EXPECT_NEAR(last[static_cast<size_t>(v)], full.at(39, v),
                    1e-3);
}

TEST(DecoderSession, QuantizedKvStaysCloseToFloat)
{
    const auto model = TinyTransformer::random(sessionConfig());
    const std::vector<int32_t> tokens{3, 17, 42, 9, 28, 55, 1, 30};

    DecoderSession fp(model);
    DecoderSession kv4(model, KvQuantConfig{4, 32, true});
    const std::vector<float> fp_logits = fp.prefill(tokens);
    const std::vector<float> kv4_logits = kv4.prefill(tokens);

    // Correlated but not identical.
    double max_diff = 0.0, norm = 0.0;
    for (size_t v = 0; v < fp_logits.size(); ++v) {
        max_diff = std::max(
            max_diff, std::fabs(static_cast<double>(fp_logits[v]) -
                                kv4_logits[v]));
        norm = std::max(
            norm, std::fabs(static_cast<double>(fp_logits[v])));
    }
    EXPECT_GT(max_diff, 0.0);
    EXPECT_LT(max_diff, 0.2 * norm + 0.5);
}

TEST(DecoderSession, Kv8TighterThanKv4)
{
    const auto model = TinyTransformer::random(sessionConfig());
    const std::vector<int32_t> tokens{3, 17, 42, 9, 28, 55};
    DecoderSession fp(model);
    const std::vector<float> reference = fp.prefill(tokens);
    double err[2];
    int i = 0;
    for (int bits : {4, 8}) {
        DecoderSession session(model,
                               KvQuantConfig{bits, 32, true});
        const std::vector<float> logits = session.prefill(tokens);
        double e = 0.0;
        for (size_t v = 0; v < logits.size(); ++v) {
            e += std::pow(static_cast<double>(logits[v]) -
                              reference[v],
                          2.0);
        }
        err[i++] = e;
    }
    EXPECT_LT(err[1], err[0]);
}

TEST(DecoderSession, GenerateProducesValidTokens)
{
    const auto model = TinyTransformer::random(sessionConfig());
    DecoderSession session(model, KvQuantConfig{4, 32, true});
    Rng rng(44);
    const auto sequence = session.generate({1, 2, 3}, 10, rng);
    EXPECT_EQ(sequence.size(), 13u);
    for (int32_t token : sequence) {
        EXPECT_GE(token, 0);
        EXPECT_LT(token, 64);
    }
    EXPECT_EQ(session.position(), 13);
}

TEST(DecoderSession, KvBytesReflectPrecisionAndLength)
{
    const auto model = TinyTransformer::random(sessionConfig());
    DecoderSession fp(model);
    DecoderSession kv4(model, KvQuantConfig{4, 32, true});
    fp.prefill({1, 2, 3, 4});
    kv4.prefill({1, 2, 3, 4});
    // 2 caches * 2 layers * 32 kv_dim * 4 tokens * bytes.
    EXPECT_DOUBLE_EQ(fp.kvCacheBytes(), 2.0 * 2 * 32 * 4 * 2.0);
    EXPECT_DOUBLE_EQ(kv4.kvCacheBytes(), fp.kvCacheBytes() / 4.0);
}

TEST(DecoderSessionDeathTest, BadTokenRejected)
{
    const auto model = TinyTransformer::random(sessionConfig());
    DecoderSession session(model);
    EXPECT_DEATH(session.step(64), "CHECK failed");
}

} // namespace
} // namespace comet
