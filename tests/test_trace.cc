/**
 * @file
 * Unit tests for trace generation and trace-driven serving replay
 * (TTFT/TPOT metrics).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/serve/trace.h"

namespace comet {
namespace {

ServingEngine
makeEngine(ServingMode mode)
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = mode;
    config.input_tokens = 256;
    config.output_tokens = 64;
    return ServingEngine(config);
}

TEST(TraceGen, ArrivalsSortedAndRateRoughlyRespected)
{
    TraceConfig config;
    config.request_rate_per_s = 10.0;
    config.num_requests = 200;
    const auto trace = generateTrace(config);
    ASSERT_EQ(trace.size(), 200u);
    for (size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i].arrival_us, trace[i - 1].arrival_us);
    // 200 requests at 10/s should span ~20s.
    EXPECT_NEAR(trace.back().arrival_us, 20e6, 8e6);
}

TEST(TraceGen, LengthsClampedToConfiguredRange)
{
    TraceConfig config;
    config.num_requests = 300;
    config.mean_prompt_tokens = 100;
    config.mean_output_tokens = 50;
    for (const TracedRequest &request : generateTrace(config)) {
        EXPECT_GE(request.prompt_tokens, 16);
        EXPECT_LE(request.prompt_tokens, 400);
        EXPECT_GE(request.output_tokens, 16);
        EXPECT_LE(request.output_tokens, 200);
    }
}

TEST(TraceGen, Deterministic)
{
    TraceConfig config;
    config.seed = 77;
    const auto a = generateTrace(config);
    const auto b = generateTrace(config);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival_us, b[i].arrival_us);
        EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    }
}

TEST(TraceReplay, AllRequestsComplete)
{
    const ServingEngine engine = makeEngine(ServingMode::kCometW4AxKv4);
    TraceConfig config;
    config.num_requests = 24;
    config.request_rate_per_s = 50.0;
    config.mean_prompt_tokens = 128;
    config.mean_output_tokens = 32;
    const TraceMetrics metrics =
        replayTrace(engine, generateTrace(config));
    EXPECT_EQ(metrics.per_request.size(), 24u);
    EXPECT_GT(metrics.throughput_tokens_per_s, 0.0);
    EXPECT_GT(metrics.makespan_us, 0.0);
    for (const RequestLatency &latency : metrics.per_request) {
        EXPECT_GT(latency.ttft_us, 0.0);
        EXPECT_GE(latency.total_us, latency.ttft_us);
        EXPECT_GE(latency.tpot_us, 0.0);
    }
}

TEST(TraceReplay, PercentilesAreOrdered)
{
    const ServingEngine engine = makeEngine(ServingMode::kCometW4AxKv4);
    TraceConfig config;
    config.num_requests = 24;
    config.request_rate_per_s = 20.0;
    const TraceMetrics metrics =
        replayTrace(engine, generateTrace(config));
    EXPECT_LE(metrics.ttftPercentileUs(50),
              metrics.ttftPercentileUs(95) + 1e-9);
    EXPECT_LE(metrics.tpotPercentileUs(50),
              metrics.tpotPercentileUs(95) + 1e-9);
}

TEST(TraceReplay, HigherLoadRaisesTtft)
{
    const ServingEngine engine = makeEngine(ServingMode::kCometW4AxKv4);
    TraceConfig light;
    light.num_requests = 20;
    light.request_rate_per_s = 0.5; // one at a time
    TraceConfig heavy = light;
    heavy.request_rate_per_s = 500.0; // burst
    const TraceMetrics light_metrics =
        replayTrace(engine, generateTrace(light));
    const TraceMetrics heavy_metrics =
        replayTrace(engine, generateTrace(heavy));
    EXPECT_GT(heavy_metrics.ttftPercentileUs(95),
              light_metrics.ttftPercentileUs(95));
}

TEST(TraceReplay, CometBeatsFp16OnTheSameTrace)
{
    TraceConfig config;
    config.num_requests = 16;
    config.request_rate_per_s = 100.0;
    config.mean_prompt_tokens = 256;
    config.mean_output_tokens = 32;
    const auto trace = generateTrace(config);
    const TraceMetrics comet = replayTrace(
        makeEngine(ServingMode::kCometW4AxKv4), trace);
    const TraceMetrics fp16 =
        replayTrace(makeEngine(ServingMode::kTrtFp16), trace);
    EXPECT_GT(comet.throughput_tokens_per_s,
              fp16.throughput_tokens_per_s);
    EXPECT_LT(comet.tpotPercentileUs(50),
              fp16.tpotPercentileUs(50));
}

TEST(ChunkedPrefill, AllRequestsStillComplete)
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 256;
    config.output_tokens = 64;
    config.chunked_prefill_tokens = 128;
    const ServingEngine engine(config);

    TraceConfig trace_config;
    trace_config.num_requests = 20;
    trace_config.request_rate_per_s = 100.0;
    trace_config.mean_prompt_tokens = 256;
    trace_config.mean_output_tokens = 24;
    const TraceMetrics metrics =
        replayTrace(engine, generateTrace(trace_config));
    EXPECT_EQ(metrics.per_request.size(), 20u);
    for (const RequestLatency &latency : metrics.per_request)
        EXPECT_GT(latency.ttft_us, 0.0);
}

TEST(ChunkedPrefill, ImprovesTpotTailUnderBurstyLoad)
{
    // The Sarathi-Serve effect: bounding how much prefill work rides
    // on each iteration keeps running requests' inter-token latency
    // from spiking when long prompts arrive.
    TraceConfig trace_config;
    trace_config.num_requests = 24;
    trace_config.request_rate_per_s = 40.0;
    trace_config.mean_prompt_tokens = 768;
    trace_config.mean_output_tokens = 48;
    const auto trace = generateTrace(trace_config);

    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 768;
    config.output_tokens = 48;
    const ServingEngine whole(config);
    config.chunked_prefill_tokens = 256;
    const ServingEngine chunked(config);

    const TraceMetrics whole_metrics = replayTrace(whole, trace);
    const TraceMetrics chunked_metrics =
        replayTrace(chunked, trace);
    EXPECT_LT(chunked_metrics.tpotPercentileUs(95),
              whole_metrics.tpotPercentileUs(95));
    // Throughput stays within a reasonable band of the stall-free
    // schedule.
    EXPECT_GT(chunked_metrics.throughput_tokens_per_s,
              whole_metrics.throughput_tokens_per_s * 0.6);
}

TEST(TraceReplay, TtftIsThePrefillItself)
{
    // The prefill's forward pass produces the first output token:
    // an unloaded single request's TTFT equals its prefill latency,
    // with no spurious extra decode iteration.
    const ServingEngine engine = makeEngine(ServingMode::kCometW4AxKv4);
    TracedRequest request;
    request.id = 0;
    request.arrival_us = 0.0;
    request.prompt_tokens = 256;
    request.output_tokens = 16;
    const TraceMetrics metrics = replayTrace(engine, {request});
    ASSERT_EQ(metrics.per_request.size(), 1u);
    const double prefill_us =
        engine.prefillLatencyUs(std::vector<int64_t>{256});
    EXPECT_NEAR(metrics.per_request[0].ttft_us, prefill_us,
                prefill_us * 1e-9);
}

TEST(TraceReplay, PrefillChargedAtActualPromptLength)
{
    // The engine is configured for 2048-token prompts, but the trace
    // carries a short one: TTFT must reflect the 64 real tokens, not
    // the configured workload shape.
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 2048;
    config.output_tokens = 64;
    const ServingEngine engine(config);

    TracedRequest request;
    request.id = 0;
    request.arrival_us = 0.0;
    request.prompt_tokens = 64;
    request.output_tokens = 16;
    const TraceMetrics metrics = replayTrace(engine, {request});
    ASSERT_EQ(metrics.per_request.size(), 1u);
    const double configured_prefill_us = engine.prefillLatencyUs(1);
    EXPECT_LT(metrics.per_request[0].ttft_us,
              configured_prefill_us / 4.0);
}

TEST(TraceMetrics, PercentilesOfZeroCompletionsAreNan)
{
    const TraceMetrics empty;
    EXPECT_TRUE(std::isnan(empty.ttftPercentileUs(50)));
    EXPECT_TRUE(std::isnan(empty.tpotPercentileUs(95)));
}

TEST(TraceReplay, CancelledRequestsAreDroppedAndCounted)
{
    const ServingEngine engine = makeEngine(ServingMode::kCometW4AxKv4);
    TraceConfig config;
    config.num_requests = 12;
    config.request_rate_per_s = 50.0;
    config.mean_prompt_tokens = 128;
    config.mean_output_tokens = 32;
    auto trace = generateTrace(config);
    // The last arrival is abandoned before it can ever be admitted.
    trace.back().cancel_us = trace.back().arrival_us;
    const TraceMetrics metrics = replayTrace(engine, trace);
    EXPECT_EQ(metrics.cancelled, 1);
    EXPECT_EQ(metrics.per_request.size(), 11u);
    for (const RequestLatency &latency : metrics.per_request)
        EXPECT_NE(latency.id, trace.back().id);
}

TEST(TraceReplay, UnservableRequestsAreRejectedNotStuck)
{
    // A request larger than the whole KV pool must not wedge the
    // replay; it is dropped and counted, and everyone else finishes.
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 256;
    config.output_tokens = 64;
    config.usable_memory_fraction = 0.25; // shrink the pool
    const ServingEngine engine(config);

    TraceConfig trace_config;
    trace_config.num_requests = 8;
    trace_config.request_rate_per_s = 50.0;
    trace_config.mean_prompt_tokens = 128;
    trace_config.mean_output_tokens = 16;
    auto trace = generateTrace(trace_config);
    const KvCacheConfig cache_config{4.0, 16, 4.0, 64,
                                     engine.kvBudgetBytes()};
    const PagedKvCache probe(config.model, cache_config);
    trace[3].prompt_tokens = probe.totalBlocks() * 16 * 2;
    const TraceMetrics metrics = replayTrace(engine, trace);
    EXPECT_EQ(metrics.rejected, 1);
    EXPECT_EQ(metrics.per_request.size(), 7u);
}

/** Engine whose KV budget is exactly @p blocks KV4 blocks. */
ServingEngine
makeTinyKvEngine(EngineConfig config, int64_t blocks)
{
    const KvCacheConfig probe_config{4.0, 16, 4.0, 64, 1e9};
    const PagedKvCache probe(config.model, probe_config);
    const double weights = ServingEngine(config).weightBytes();
    config.usable_memory_fraction =
        (weights +
         probe.blockBytes() * static_cast<double>(blocks)) /
        config.gpu.hbm_capacity_bytes;
    return ServingEngine(config);
}

TEST(TraceReplay, KvExhaustionPreemptsAndStillCompletesEverything)
{
    // Shrink the KV budget until the burst cannot fit outright: the
    // optimistic scheduler must preempt (never abort) and every
    // request must still complete.
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 256;
    config.output_tokens = 256;
    // 300 blocks hold every prompt of the burst but not the grown
    // contexts (16 requests x ~32 blocks full footprint).
    const ServingEngine engine = makeTinyKvEngine(config, 300);
    ASSERT_GT(engine.kvBudgetBytes(), 0.0);

    TraceConfig trace_config;
    trace_config.num_requests = 16;
    trace_config.request_rate_per_s = 1000.0; // all at once
    trace_config.mean_prompt_tokens = 256;
    trace_config.mean_output_tokens = 256;
    const TraceMetrics metrics =
        replayTrace(engine, generateTrace(trace_config));
    EXPECT_EQ(metrics.per_request.size(), 16u);
    EXPECT_GT(metrics.preemptions, 0);
    EXPECT_GT(metrics.reprefill_tokens, 0);
    EXPECT_GT(metrics.peak_kv_utilization, 0.5);
    EXPECT_LE(metrics.peak_kv_utilization, 1.0);
}

TEST(TraceReplay, ReserveFullPolicyNeverPreempts)
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 256;
    config.output_tokens = 256;
    config.admission = AdmissionPolicy::kReserveFullOutput;
    const ServingEngine engine = makeTinyKvEngine(config, 300);

    TraceConfig trace_config;
    trace_config.num_requests = 16;
    trace_config.request_rate_per_s = 1000.0;
    trace_config.mean_prompt_tokens = 256;
    trace_config.mean_output_tokens = 256;
    const TraceMetrics metrics =
        replayTrace(engine, generateTrace(trace_config));
    EXPECT_EQ(metrics.per_request.size(), 16u);
    EXPECT_EQ(metrics.preemptions, 0);
    EXPECT_EQ(metrics.reprefill_tokens, 0);
}

} // namespace
} // namespace comet

