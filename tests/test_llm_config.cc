/**
 * @file
 * Unit tests for the LLM model zoo.
 */
#include <gtest/gtest.h>

#include "comet/model/llm_config.h"

namespace comet {
namespace {

TEST(LlmConfig, ParameterCountsMatchModelCards)
{
    // Within 10% of the nominal parameter counts.
    const auto expect_params = [](const LlmConfig &config,
                                  double billions) {
        EXPECT_NEAR(static_cast<double>(config.parameterCount()) /
                        1e9,
                    billions, billions * 0.12)
            << config.name;
    };
    expect_params(LlmConfig::llama2_7b(), 6.7);
    expect_params(LlmConfig::llama1_13b(), 13.0);
    expect_params(LlmConfig::llama1_30b(), 32.5);
    expect_params(LlmConfig::llama1_65b(), 65.2);
    expect_params(LlmConfig::llama2_70b(), 69.0);
    expect_params(LlmConfig::llama3_8b(), 8.0);
    expect_params(LlmConfig::llama3_70b(), 70.6);
    expect_params(LlmConfig::mistral_7b(), 7.2);
    expect_params(LlmConfig::opt_13b(), 12.9);
    expect_params(LlmConfig::qwen2_72b(), 72.7);
}

TEST(LlmConfig, HeadDim)
{
    EXPECT_EQ(LlmConfig::llama3_8b().headDim(), 128);
    EXPECT_EQ(LlmConfig::llama1_13b().headDim(), 128);
}

TEST(LlmConfig, GqaModelsHaveFewerKvHeads)
{
    EXPECT_LT(LlmConfig::llama3_8b().num_kv_heads,
              LlmConfig::llama3_8b().num_heads);
    EXPECT_EQ(LlmConfig::llama1_13b().num_kv_heads,
              LlmConfig::llama1_13b().num_heads);
}

TEST(LlmConfig, WeightBytesScaleWithPrecision)
{
    const LlmConfig config = LlmConfig::llama3_8b();
    EXPECT_NEAR(config.weightBytes(16.0) / config.weightBytes(4.0),
                4.0, 1e-9);
    // FP16 LLaMA-3-8B is ~16 GB.
    EXPECT_NEAR(config.weightBytes(16.0) / 1e9, 16.0, 1.5);
}

TEST(LlmConfig, KvBytesPerSequence)
{
    const LlmConfig config = LlmConfig::llama3_8b();
    // 2 * 32 layers * 8 kv heads * 128 dim * 2 bytes = 131072 B/token.
    EXPECT_NEAR(config.kvBytesPerSequence(1, 16.0), 131072.0, 1.0);
    EXPECT_NEAR(config.kvBytesPerSequence(1000, 4.0),
                131072.0 * 1000 / 4.0, 1.0);
}

TEST(LlmConfig, KvCacheDominatesAtLongContext)
{
    // Paper Section 2.1: at 128K context the KV cache overtakes the
    // weights (72% of storage for LLaMA-7B).
    const LlmConfig config = LlmConfig::llama2_7b();
    const double kv = config.kvBytesPerSequence(128 * 1024, 16.0);
    const double weights = config.weightBytes(16.0);
    // The paper reports 72% for LLaMA-7B counting activations too;
    // weights + KV alone put the KV share a bit higher.
    EXPECT_GT(kv / (kv + weights), 0.65);
}

TEST(LlmConfig, PaperModelsListsEleven)
{
    const auto models = LlmConfig::paperModels();
    EXPECT_EQ(models.size(), 11u);
    EXPECT_EQ(models.front().name, "LLaMA-1-13B");
    EXPECT_EQ(models.back().name, "Qwen2-72B");
}

TEST(LlmConfig, ByNameRoundTrips)
{
    for (const auto &config : LlmConfig::paperModels())
        EXPECT_EQ(LlmConfig::byName(config.name).hidden_size,
                  config.hidden_size);
}

TEST(LlmConfigDeathTest, UnknownNameAborts)
{
    EXPECT_DEATH(LlmConfig::byName("GPT-5"), "unknown model");
}

TEST(LlmConfig, OptUsesPlainMlp)
{
    EXPECT_FALSE(LlmConfig::opt_13b().gated_mlp);
    EXPECT_TRUE(LlmConfig::llama3_8b().gated_mlp);
}

} // namespace
} // namespace comet
