/**
 * @file
 * Unit tests for the FMPQ algorithm — precision assignment, the
 * permutation benefit, quantization error, and the packed path.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "comet/common/rng.h"
#include "comet/model/synthetic.h"
#include "comet/quant/fmpq.h"
#include "comet/quant/quantizer.h"

namespace comet {
namespace {

SyntheticActivationModel
outlierModel(int64_t channels, double fraction, uint64_t seed)
{
    SyntheticActivationConfig config;
    config.channels = channels;
    config.outlier_fraction = fraction;
    config.outlier_scale = 40.0;
    config.seed = seed;
    return SyntheticActivationModel(config);
}

TEST(Fmpq, BlocksWithOutliersGetInt8)
{
    Rng rng(1);
    const SyntheticActivationModel model = outlierModel(256, 0.02, 2);
    const Tensor calib = model.sample(128, rng);
    FmpqConfig config;
    config.block_size = 64;
    config.enable_permutation = false;
    const auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, config);

    // Without permutation, a block is INT8 iff it contains a planted
    // outlier channel.
    for (int64_t b = 0; b < quantizer.numBlocks(); ++b) {
        bool has_outlier = false;
        for (int64_t c : model.outlierChannels()) {
            if (c >= b * 64 && c < (b + 1) * 64)
                has_outlier = true;
        }
        EXPECT_EQ(quantizer.blockPrecisions()[static_cast<size_t>(b)],
                  has_outlier ? BlockPrecision::kInt8
                              : BlockPrecision::kInt4)
            << "block " << b;
    }
}

TEST(Fmpq, PermutationRaisesInt4Fraction)
{
    Rng rng(3);
    const SyntheticActivationModel model = outlierModel(512, 0.015, 4);
    const Tensor calib = model.sample(128, rng);

    FmpqConfig no_perm;
    no_perm.block_size = 64;
    no_perm.enable_permutation = false;
    FmpqConfig with_perm = no_perm;
    with_perm.enable_permutation = true;

    const double frac_no_perm =
        FmpqActivationQuantizer::calibrate(calib, no_perm)
            .int4BlockFraction();
    const double frac_with_perm =
        FmpqActivationQuantizer::calibrate(calib, with_perm)
            .int4BlockFraction();
    EXPECT_GT(frac_with_perm, frac_no_perm);
    // ~8 outliers cluster into exactly one 64-channel block.
    EXPECT_NEAR(frac_with_perm, 7.0 / 8.0, 1e-9);
}

TEST(Fmpq, PaperClaimMoreThan84PercentW4A4)
{
    // At LLaMA-like scale (4096 channels, <1% outliers, k=128) the
    // paper reports more than 84% of GEMM compute in W4A4; FMPQ with
    // permutation achieves far more.
    Rng rng(5);
    const SyntheticActivationModel model =
        outlierModel(4096, 0.008, 6);
    const Tensor calib = model.sample(64, rng);
    const auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, FmpqConfig{});
    EXPECT_GT(quantizer.w4a4ComputeFraction(), 0.84);
}

TEST(Fmpq, FakeQuantPreservesOutliersAndNormals)
{
    Rng rng(7);
    const SyntheticActivationModel model = outlierModel(256, 0.02, 8);
    const Tensor calib = model.sample(128, rng);
    FmpqConfig config;
    config.block_size = 64;
    const auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, config);

    const Tensor x = model.sample(16, rng);
    const Tensor q = quantizer.fakeQuantize(x);

    // FMPQ must beat naive per-token INT4 by a wide margin on this
    // distribution.
    const Tensor naive4 = fakeQuantPerRow(x, 4);
    EXPECT_GT(sqnrDb(x, q), sqnrDb(x, naive4) + 6.0);
}

TEST(Fmpq, FakeQuantRespectsBlockPrecision)
{
    Rng rng(9);
    const SyntheticActivationModel model = outlierModel(128, 0.03, 10);
    const Tensor calib = model.sample(64, rng);
    FmpqConfig config;
    config.block_size = 32;
    const auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, config);

    const Tensor x = model.sample(4, rng);
    const Tensor q = quantizer.fakeQuantize(x);

    // Each permuted block may take at most 2^bits distinct values per
    // token.
    const auto &order = quantizer.permutation().order();
    for (int64_t t = 0; t < x.rows(); ++t) {
        for (int64_t b = 0; b < quantizer.numBlocks(); ++b) {
            const int bits =
                quantizer.blockPrecisions()[static_cast<size_t>(b)] ==
                        BlockPrecision::kInt4
                    ? 4
                    : 8;
            std::set<float> distinct;
            for (int64_t i = 0; i < 32; ++i) {
                distinct.insert(q.at(
                    t, order[static_cast<size_t>(b * 32 + i)]));
            }
            EXPECT_LE(static_cast<int>(distinct.size()), 1 << bits);
        }
    }
}

TEST(Fmpq, PackedQuantizeMatchesFakeQuantize)
{
    Rng rng(11);
    const SyntheticActivationModel model = outlierModel(128, 0.02, 12);
    const Tensor calib = model.sample(64, rng);
    FmpqConfig config;
    config.block_size = 32;
    const auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, config);

    const Tensor x = model.sample(8, rng);
    const MixedQuantizedActivation packed = quantizer.quantize(x);
    const Tensor deq = dequantize(packed);
    // dequantize() returns permuted order; fakeQuantize original
    // order. Compare through the permutation.
    const Tensor fake = quantizer.fakeQuantize(x);
    const Tensor fake_permuted =
        quantizer.permutation().applyToColumns(fake);
    EXPECT_LT(maxAbsError(deq, fake_permuted), 1e-5);
}

TEST(Fmpq, QuantizeWeightRoundTrip)
{
    Rng rng(13);
    const SyntheticActivationModel model = outlierModel(128, 0.02, 14);
    const Tensor calib = model.sample(64, rng);
    FmpqConfig config;
    config.block_size = 32;
    const auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, config);

    const Tensor w = sampleWeights(16, 128, rng);
    const BlockQuantizedWeight qw = quantizer.quantizeWeight(w);
    const Tensor deq = dequantize(qw);
    const Tensor w_permuted =
        quantizer.permutation().applyToColumns(w);
    // INT4 per-block quantization error bounded by half a step.
    for (int64_t n = 0; n < w.rows(); ++n) {
        for (int64_t b = 0; b < quantizer.numBlocks(); ++b) {
            const float scale = qw.scales.at(n, b);
            for (int64_t i = 0; i < 32; ++i) {
                EXPECT_LE(std::fabs(deq.at(n, b * 32 + i) -
                                    w_permuted.at(n, b * 32 + i)),
                          scale / 2.0f + 1e-6f);
            }
        }
    }
}

TEST(FmpqDeathTest, BlockSizeMustDivideChannels)
{
    Tensor calib(8, 100);
    FmpqConfig config;
    config.block_size = 64;
    EXPECT_DEATH(FmpqActivationQuantizer::calibrate(calib, config),
                 "divide");
}

TEST(Fmpq, BlockPrecisionNames)
{
    EXPECT_STREQ(blockPrecisionName(BlockPrecision::kInt4), "INT4");
    EXPECT_STREQ(blockPrecisionName(BlockPrecision::kInt8), "INT8");
}

/** Property sweep over block sizes: the INT4 fraction is monotone in
 * the ability of smaller blocks to isolate outliers. */
class FmpqBlockSizeSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(FmpqBlockSizeSweep, Int4FractionReasonable)
{
    const int64_t block_size = GetParam();
    Rng rng(17);
    const SyntheticActivationModel model =
        outlierModel(1024, 0.01, 18);
    const Tensor calib = model.sample(64, rng);
    FmpqConfig config;
    config.block_size = block_size;
    const auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, config);
    // ~10 outliers cluster into ceil(10 / block_size) leading blocks.
    const auto outliers = static_cast<int64_t>(
        model.outlierChannels().size());
    const int64_t expected_int8_blocks =
        (outliers + block_size - 1) / block_size;
    const int64_t blocks = 1024 / block_size;
    EXPECT_NEAR(quantizer.int4BlockFraction(),
                1.0 - static_cast<double>(expected_int8_blocks) /
                          static_cast<double>(blocks),
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, FmpqBlockSizeSweep,
                         ::testing::Values(32, 64, 128, 256));

} // namespace
} // namespace comet
