/**
 * @file
 * Unit tests for the weighted-fair admission queue.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "comet/server/admission.h"

namespace comet {
namespace server {
namespace {

TenantConfig
tenant(const std::string &name, double weight = 1.0)
{
    TenantConfig config;
    config.name = name;
    config.weight = weight;
    return config;
}

PendingRequest
pending(int64_t id, int tenant_index, double arrival_us,
        int64_t prompt = 100, int64_t output = 100)
{
    PendingRequest request;
    request.id = id;
    request.tenant = tenant_index;
    request.arrival_us = arrival_us;
    request.prompt_tokens = prompt;
    request.max_output_tokens = output;
    return request;
}

/** Admission order over @p picks picks, as tenant indices. */
std::vector<int>
pickOrder(FairAdmissionQueue &queue, int picks, double now_us = 0.0)
{
    std::vector<int> order;
    PendingRequest out;
    std::vector<PendingRequest> expired;
    for (int i = 0; i < picks; ++i) {
        if (!queue.pick(now_us, &out, &expired))
            break;
        order.push_back(out.tenant);
    }
    return order;
}

TEST(FairAdmissionQueue, TenantLookup)
{
    FairAdmissionQueue queue({tenant("a"), tenant("b")});
    EXPECT_EQ(queue.numTenants(), 2);
    EXPECT_EQ(queue.tenantIndex("a"), 0);
    EXPECT_EQ(queue.tenantIndex("b"), 1);
    EXPECT_EQ(queue.tenantIndex("nope"), -1);
    EXPECT_EQ(queue.tenant(1).name, "b");
}

TEST(FairAdmissionQueue, WeightsShareAdmissionProportionally)
{
    // Equal declared work per request; weight 2 vs 1 must admit the
    // heavy tenant twice as often over any window.
    FairAdmissionQueue queue({tenant("heavy", 2.0),
                              tenant("light", 1.0)});
    for (int64_t i = 0; i < 12; ++i) {
        EXPECT_EQ(queue.offer(pending(i, 0, 0.0), 0.0),
                  RejectReason::kNone);
        EXPECT_EQ(queue.offer(pending(100 + i, 1, 0.0), 0.0),
                  RejectReason::kNone);
    }
    const std::vector<int> order = pickOrder(queue, 9);
    int heavy = 0;
    for (int t : order)
        heavy += t == 0 ? 1 : 0;
    EXPECT_EQ(heavy, 6);
    EXPECT_EQ(order.size(), 9u);
}

TEST(FairAdmissionQueue, IdleTenantAccumulatesNoCredit)
{
    FairAdmissionQueue queue({tenant("busy"), tenant("sleepy")});
    // Busy runs alone for a long while...
    for (int64_t i = 0; i < 10; ++i)
        queue.offer(pending(i, 0, 0.0), 0.0);
    PendingRequest out;
    std::vector<PendingRequest> expired;
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(queue.pick(0.0, &out, &expired));
    // ...then sleepy wakes up. Its pass is clamped to the global
    // virtual time: it must NOT monopolize admission to "catch up".
    for (int64_t i = 0; i < 4; ++i) {
        queue.offer(pending(100 + i, 0, 0.0), 0.0);
        queue.offer(pending(200 + i, 1, 0.0), 0.0);
    }
    const std::vector<int> order = pickOrder(queue, 8);
    // Strict alternation under equal weights — not a burst of
    // sleepy's requests first.
    int sleepy_first_three = 0;
    for (size_t i = 0; i < 3; ++i)
        sleepy_first_three += order[i] == 1 ? 1 : 0;
    EXPECT_LE(sleepy_first_three, 2);
    int sleepy_total = 0;
    for (int t : order)
        sleepy_total += t == 1 ? 1 : 0;
    EXPECT_EQ(sleepy_total, 4);
}

TEST(FairAdmissionQueue, BoundedQueueRejectsWhenFull)
{
    TenantConfig bounded = tenant("bounded");
    bounded.max_queued = 2;
    FairAdmissionQueue queue({bounded});
    EXPECT_EQ(queue.offer(pending(1, 0, 0.0), 0.0),
              RejectReason::kNone);
    EXPECT_EQ(queue.offer(pending(2, 0, 0.0), 0.0),
              RejectReason::kNone);
    EXPECT_EQ(queue.offer(pending(3, 0, 0.0), 0.0),
              RejectReason::kQueueFull);
    EXPECT_EQ(queue.queuedCount(), 2);
    // Draining one slot re-opens admission.
    PendingRequest out;
    std::vector<PendingRequest> expired;
    ASSERT_TRUE(queue.pick(0.0, &out, &expired));
    EXPECT_EQ(queue.offer(pending(4, 0, 0.0), 0.0),
              RejectReason::kNone);
}

TEST(FairAdmissionQueue, TokenBucketRateLimits)
{
    TenantConfig limited = tenant("limited");
    limited.rate_limit_per_s = 10.0; // one token per 100 ms
    limited.rate_burst = 2.0;
    FairAdmissionQueue queue({limited});
    // The bucket starts full: the burst is admitted...
    EXPECT_EQ(queue.offer(pending(1, 0, 0.0), 0.0),
              RejectReason::kNone);
    EXPECT_EQ(queue.offer(pending(2, 0, 0.0), 0.0),
              RejectReason::kNone);
    // ...the next arrival at the same instant is rejected...
    EXPECT_EQ(queue.offer(pending(3, 0, 0.0), 0.0),
              RejectReason::kRateLimited);
    // ...and 100 virtual ms later one token has refilled.
    EXPECT_EQ(queue.offer(pending(4, 0, 1e5), 1e5),
              RejectReason::kNone);
    EXPECT_EQ(queue.offer(pending(5, 0, 1e5), 1e5),
              RejectReason::kRateLimited);
}

TEST(FairAdmissionQueue, ExpiredDeadlinesAreHandedBackUncharged)
{
    TenantConfig strict = tenant("strict");
    strict.admission_deadline_us = 100.0;
    FairAdmissionQueue queue({strict, tenant("patient")});
    queue.offer(pending(1, 0, 0.0), 0.0);
    queue.offer(pending(2, 0, 500.0), 500.0);
    queue.offer(pending(3, 1, 0.0), 0.0);
    PendingRequest out;
    std::vector<PendingRequest> expired;
    // At t=600 request 1 (deadline 100) is expired, request 2
    // (deadline 600) is still admissible.
    ASSERT_TRUE(queue.pick(600.0, &out, &expired));
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0].id, 1);
    EXPECT_TRUE(out.id == 2 || out.id == 3);
    ASSERT_TRUE(queue.pick(600.0, &out, &expired));
    EXPECT_TRUE(queue.empty());
}

TEST(FairAdmissionQueue, RemoveByIdAndDrainAll)
{
    FairAdmissionQueue queue({tenant("a"), tenant("b")});
    queue.offer(pending(1, 0, 0.0), 0.0);
    queue.offer(pending(2, 1, 0.0), 0.0);
    queue.offer(pending(3, 1, 0.0), 0.0);
    PendingRequest removed;
    EXPECT_TRUE(queue.removeById(2, &removed));
    EXPECT_EQ(removed.id, 2);
    EXPECT_FALSE(queue.removeById(99, &removed));
    EXPECT_EQ(queue.queuedCount(), 2);
    EXPECT_EQ(queue.queuedCount(0), 1);
    const std::vector<PendingRequest> drained = queue.drainAll();
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].id, 1);
    EXPECT_EQ(drained[1].id, 3);
    EXPECT_TRUE(queue.empty());
}

TEST(FairAdmissionQueue, ZeroRateBucketMeansUnlimited)
{
    TenantConfig open = tenant("open");
    open.rate_limit_per_s = 0.0; // no bucket at all
    open.rate_burst = 1.0;       // would bind instantly if misread
    FairAdmissionQueue queue({open});
    for (int64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(queue.offer(pending(i, 0, 0.0), 0.0),
                  RejectReason::kNone);
    }
    EXPECT_EQ(queue.queuedCount(), 100);
}

TEST(FairAdmissionQueue, TinyWeightTenantIsServedNotStarved)
{
    // A 10^6:1 weight skew pushes the light tenant's pass far out,
    // but a backlogged tenant with finite pass must still drain —
    // fair queuing degrades to "last", never to "never".
    FairAdmissionQueue queue(
        {tenant("whale", 1000.0), tenant("shrimp", 1e-3)});
    for (int64_t i = 0; i < 40; ++i)
        queue.offer(pending(i, 0, 0.0), 0.0);
    queue.offer(pending(1000, 1, 0.0), 0.0);
    const std::vector<int> order = pickOrder(queue, 41);
    ASSERT_EQ(order.size(), 41u);
    int shrimp = 0;
    for (int t : order)
        shrimp += t == 1 ? 1 : 0;
    EXPECT_EQ(shrimp, 1);
    EXPECT_TRUE(queue.empty());
}

TEST(FairAdmissionQueue, AllExpiredTenantRejectsWithoutStarvingOthers)
{
    TenantConfig strict = tenant("strict");
    strict.admission_deadline_us = 10.0;
    FairAdmissionQueue queue({strict, tenant("patient")});
    for (int64_t i = 0; i < 5; ++i)
        queue.offer(pending(i, 0, 0.0), 0.0);
    for (int64_t i = 0; i < 3; ++i)
        queue.offer(pending(100 + i, 1, 0.0), 0.0);

    // Far past every strict deadline: each pick must skip the entire
    // expired backlog (handing it back for rejection, uncharged) and
    // still serve the patient tenant — dead requests cannot pin the
    // minimum-pass slot and starve the queue.
    PendingRequest out;
    std::vector<PendingRequest> expired;
    std::vector<int64_t> picked;
    while (queue.pick(1e6, &out, &expired)) {
        EXPECT_EQ(out.tenant, 1);
        picked.push_back(out.id);
    }
    EXPECT_EQ(picked, (std::vector<int64_t>{100, 101, 102}));
    ASSERT_EQ(expired.size(), 5u);
    for (const PendingRequest &request : expired)
        EXPECT_EQ(request.tenant, 0);
    EXPECT_TRUE(queue.empty());
}

TEST(FairAdmissionQueueDeathTest, RejectsBadTenantSets)
{
    EXPECT_DEATH(FairAdmissionQueue({}), "at least one");
    EXPECT_DEATH(FairAdmissionQueue({tenant("a"), tenant("a")}),
                 "unique");
    // Zero and negative weights are configuration bugs, refused at
    // construction rather than silently starving the tenant.
    EXPECT_DEATH(FairAdmissionQueue({tenant("a", 0.0)}),
                 "positive");
    EXPECT_DEATH(FairAdmissionQueue({tenant("a", -1.0)}),
                 "positive");
}

} // namespace
} // namespace server
} // namespace comet
