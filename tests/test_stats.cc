/**
 * @file
 * Unit tests for the streaming statistics accumulators and the
 * percentile-robust calibration.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/common/rng.h"
#include "comet/common/stats.h"
#include "comet/quant/outlier.h"

namespace comet {
namespace {

TEST(StreamingStats, MatchesClosedForms)
{
    StreamingStats stats;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(v);
    EXPECT_EQ(stats.count(), 8);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(StreamingStats, SingleSampleHasZeroVariance)
{
    StreamingStats stats;
    stats.add(3.5);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
}

TEST(StreamingStats, MergeEqualsConcatenation)
{
    Rng rng(1);
    StreamingStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.gaussian(3.0, 2.0);
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmptyIsIdentity)
{
    StreamingStats stats, empty;
    stats.add(1.0);
    stats.add(2.0);
    stats.merge(empty);
    EXPECT_EQ(stats.count(), 2);
    StreamingStats other;
    other.merge(stats);
    EXPECT_DOUBLE_EQ(other.mean(), 1.5);
}

TEST(StreamingStats, SelfMergeDoublesWithoutCorruption)
{
    // merge(*this) reads `other`'s fields while mutating them; the
    // aliasing guard must make it equal merging an identical copy.
    StreamingStats stats;
    for (double v : {1.0, 2.0, 4.0, 8.0})
        stats.add(v);
    StreamingStats expected = stats;
    const StreamingStats copy = stats;
    expected.merge(copy);
    stats.merge(stats);
    EXPECT_EQ(stats.count(), expected.count());
    EXPECT_DOUBLE_EQ(stats.mean(), expected.mean());
    EXPECT_DOUBLE_EQ(stats.variance(), expected.variance());
    EXPECT_DOUBLE_EQ(stats.min(), expected.min());
    EXPECT_DOUBLE_EQ(stats.max(), expected.max());
}

TEST(StreamingStats, EmptySelfMergeStaysEmpty)
{
    StreamingStats stats;
    stats.merge(stats);
    EXPECT_EQ(stats.count(), 0);
}

TEST(StreamingStats, MergeIntoEmptyEqualsCopy)
{
    StreamingStats source, sink;
    source.add(3.0);
    source.add(5.0);
    sink.merge(source);
    EXPECT_EQ(sink.count(), 2);
    EXPECT_DOUBLE_EQ(sink.mean(), 4.0);
    EXPECT_DOUBLE_EQ(sink.variance(), source.variance());
    EXPECT_DOUBLE_EQ(sink.min(), 3.0);
    EXPECT_DOUBLE_EQ(sink.max(), 5.0);
}

TEST(StreamingStats, MergeOrderDoesNotChangeVariance)
{
    // Chunked merges in any order must agree on count/mean exactly
    // and on variance to floating-point noise.
    Rng rng(5);
    std::vector<StreamingStats> chunks(4);
    StreamingStats all;
    for (int i = 0; i < 400; ++i) {
        const double v = rng.gaussian(-1.0, 3.0);
        chunks[static_cast<size_t>(i % 4)].add(v);
        all.add(v);
    }
    StreamingStats forward, backward;
    for (int c = 0; c < 4; ++c)
        forward.merge(chunks[static_cast<size_t>(c)]);
    for (int c = 3; c >= 0; --c)
        backward.merge(chunks[static_cast<size_t>(c)]);
    EXPECT_EQ(forward.count(), all.count());
    EXPECT_EQ(backward.count(), all.count());
    EXPECT_NEAR(forward.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(backward.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(forward.variance(), all.variance(), 1e-9);
    EXPECT_NEAR(backward.variance(), forward.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(forward.min(), all.min());
    EXPECT_DOUBLE_EQ(backward.max(), all.max());
}

TEST(StreamingStatsDeathTest, EmptyMinMaxAbort)
{
    StreamingStats stats;
    EXPECT_DEATH(stats.min(), "empty");
}

TEST(ExactPercentile, Endpoints)
{
    EXPECT_DOUBLE_EQ(exactPercentile({3.0, 1.0, 2.0}, 0), 1.0);
    EXPECT_DOUBLE_EQ(exactPercentile({3.0, 1.0, 2.0}, 100), 3.0);
    EXPECT_DOUBLE_EQ(exactPercentile({3.0, 1.0, 2.0}, 50), 2.0);
}

TEST(ExactPercentile, Interpolates)
{
    EXPECT_DOUBLE_EQ(exactPercentile({0.0, 10.0}, 25), 2.5);
}

TEST(ExactPercentiles, AgreesExactlyWithSingleQuantileCalls)
{
    // The sorted-once multi-quantile helper must return bit-identical
    // results to N independent exactPercentile calls.
    Rng rng(6);
    std::vector<double> values(257);
    for (double &v : values)
        v = rng.gaussian(10.0, 40.0);
    const std::vector<double> ps = {0.0,  1.0,  25.0, 50.0,
                                    90.0, 95.0, 99.0, 100.0};
    const std::vector<double> multi = exactPercentiles(values, ps);
    ASSERT_EQ(multi.size(), ps.size());
    for (size_t i = 0; i < ps.size(); ++i)
        EXPECT_EQ(multi[i], exactPercentile(values, ps[i]))
            << "p=" << ps[i];
}

TEST(ExactPercentiles, UnsortedQuantileListAndDuplicates)
{
    const std::vector<double> values = {3.0, 1.0, 2.0, 4.0};
    const std::vector<double> multi =
        exactPercentiles(values, {100.0, 0.0, 50.0, 50.0});
    EXPECT_DOUBLE_EQ(multi[0], 4.0);
    EXPECT_DOUBLE_EQ(multi[1], 1.0);
    EXPECT_DOUBLE_EQ(multi[2], 2.5);
    EXPECT_DOUBLE_EQ(multi[3], 2.5);
}

TEST(ExactPercentiles, EmptyQuantileListIsEmpty)
{
    EXPECT_TRUE(exactPercentiles({1.0, 2.0}, {}).empty());
}

TEST(PercentileCalibration, IgnoresASingleCorruptToken)
{
    // 256 calibration tokens of unit Gaussian plus ONE corrupt token
    // with a 100x spike in a normal channel: abs-max calibration
    // flags the channel as an outlier, 99th-percentile calibration
    // does not.
    Rng rng(2);
    Tensor calib(256, 32);
    for (int64_t i = 0; i < calib.numel(); ++i)
        calib[i] = static_cast<float>(rng.gaussian(0, 1));
    calib.at(17, 5) = 100.0f; // the corrupt sample

    const OutlierReport absmax_report =
        detectOutliers(computeChannelStats(calib));
    const OutlierReport robust_report = detectOutliers(
        computeChannelStatsPercentile(calib, 99.0));
    EXPECT_TRUE(absmax_report.is_outlier[5]);
    EXPECT_FALSE(robust_report.is_outlier[5]);
}

TEST(PercentileCalibration, StillFindsPersistentOutliers)
{
    // A channel that is large on EVERY token survives the percentile.
    Rng rng(3);
    Tensor calib(256, 32);
    for (int64_t i = 0; i < calib.numel(); ++i)
        calib[i] = static_cast<float>(rng.gaussian(0, 1));
    for (int64_t t = 0; t < 256; ++t)
        calib.at(t, 9) *= 50.0f;
    const OutlierReport report = detectOutliers(
        computeChannelStatsPercentile(calib, 99.0));
    EXPECT_TRUE(report.is_outlier[9]);
    // And only that channel.
    EXPECT_EQ(report.outlier_channels.size(), 1u);
}

TEST(PercentileCalibration, HundredPercentEqualsAbsMax)
{
    Rng rng(4);
    Tensor calib(64, 8);
    for (int64_t i = 0; i < calib.numel(); ++i)
        calib[i] = static_cast<float>(rng.gaussian(0, 2));
    const ChannelStats a = computeChannelStats(calib);
    const ChannelStats b =
        computeChannelStatsPercentile(calib, 100.0);
    for (size_t c = 0; c < a.abs_max.size(); ++c)
        EXPECT_FLOAT_EQ(a.abs_max[c], b.abs_max[c]);
}

} // namespace
} // namespace comet
