/**
 * @file
 * Unit tests for the tiny transformer substrate.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/model/tiny_transformer.h"
#include "comet/quant/outlier.h"

namespace comet {
namespace {

TinyTransformerConfig
smallConfig()
{
    TinyTransformerConfig config;
    config.vocab_size = 64;
    config.hidden_size = 64;
    config.num_heads = 4;
    config.num_kv_heads = 2;
    config.num_layers = 2;
    config.intermediate_size = 128;
    config.seed = 5;
    return config;
}

TEST(TinyTransformer, ForwardShape)
{
    const auto model = TinyTransformer::random(smallConfig());
    const Tensor logits = model.forward({1, 2, 3, 4, 5});
    EXPECT_EQ(logits.rows(), 5);
    EXPECT_EQ(logits.cols(), 64);
}

TEST(TinyTransformer, ForwardIsDeterministic)
{
    const auto model = TinyTransformer::random(smallConfig());
    const Tensor a = model.forward({3, 1, 4, 1, 5});
    const Tensor b = model.forward({3, 1, 4, 1, 5});
    EXPECT_DOUBLE_EQ(maxAbsError(a, b), 0.0);
}

TEST(TinyTransformer, CausalityPrefixInvariance)
{
    // Logits at position t must not depend on tokens after t.
    const auto model = TinyTransformer::random(smallConfig());
    const Tensor full = model.forward({7, 8, 9, 10, 11, 12});
    const Tensor prefix = model.forward({7, 8, 9});
    for (int64_t t = 0; t < 3; ++t) {
        for (int64_t v = 0; v < 64; ++v)
            EXPECT_NEAR(full.at(t, v), prefix.at(t, v), 1e-4);
    }
}

TEST(TinyTransformer, ConstantSequenceMixesToSameOutput)
{
    // With a constant sequence every V vector is identical, so the
    // attention mix — whatever RoPE does to the scores — returns the
    // same vector at every position. A useful invariant check.
    const auto model = TinyTransformer::random(smallConfig());
    const Tensor logits = model.forward({5, 5, 5, 5});
    for (int64_t v = 0; v < 64; ++v)
        EXPECT_NEAR(logits.at(1, v), logits.at(3, v), 1e-4);
}

TEST(TinyTransformer, TokenOrderMattersThroughRope)
{
    // Same multiset of context tokens, different order: the last
    // position's logits must differ, which requires the attention
    // scores to carry positional information (RoPE).
    const auto model = TinyTransformer::random(smallConfig());
    const Tensor a = model.forward({2, 9, 4, 7});
    const Tensor b = model.forward({9, 2, 4, 7});
    double diff = 0.0;
    for (int64_t v = 0; v < 64; ++v)
        diff += std::fabs(a.at(3, v) - b.at(3, v));
    EXPECT_GT(diff, 1e-3);
}

TEST(TinyTransformer, PlantedOutliersAppearInActivations)
{
    // The linear inputs collected from forward passes must show the
    // planted outlier channels — the property FMPQ exploits.
    TinyTransformerConfig config = smallConfig();
    config.outlier_fraction = 0.05;
    config.outlier_scale = 30.0;
    const auto model = TinyTransformer::random(config);
    ASSERT_FALSE(model.outlierChannels().empty());

    class Collector : public QuantSimulator
    {
      public:
        Tensor
        transformActivation(const ActivationSite &site,
                            const Tensor &x) override
        {
            if (site.layer == 0 && site.site == ActSite::kQkv)
                collected = x;
            return x;
        }
        Tensor collected;
    };
    Collector collector;
    model.forward({1, 2, 3, 4, 5, 6, 7, 8}, &collector);
    ASSERT_EQ(collector.collected.cols(), 64);

    const ChannelStats stats =
        computeChannelStats(collector.collected);
    const OutlierReport report = detectOutliers(stats);
    // Every planted channel is detected as an outlier.
    for (int64_t c : model.outlierChannels()) {
        EXPECT_TRUE(report.is_outlier[static_cast<size_t>(c)])
            << "channel " << c;
    }
}

TEST(TinyTransformer, SequenceNllPositiveAndBounded)
{
    const auto model = TinyTransformer::random(smallConfig());
    const auto [arb_nll, arb_count] =
        model.sequenceNll({1, 2, 3, 4, 5, 6});
    EXPECT_EQ(arb_count, 5);
    EXPECT_GT(arb_nll, 0.0);
    // On data sampled from the model itself, the per-token NLL must
    // beat the uniform baseline log(V).
    Rng rng(99);
    const auto seq = model.sampleSequence(32, rng);
    const auto [nll, count] = model.sequenceNll(seq);
    EXPECT_LT(nll / static_cast<double>(count), std::log(64.0));
}

TEST(TinyTransformer, ModelScoresItsOwnSamplesBetterThanRandom)
{
    const auto model = TinyTransformer::random(smallConfig());
    Rng rng(11);
    double model_nll = 0.0;
    int64_t model_tokens = 0;
    for (int i = 0; i < 4; ++i) {
        const auto seq = model.sampleSequence(24, rng);
        const auto [nll, count] = model.sequenceNll(seq);
        model_nll += nll;
        model_tokens += count;
    }
    double random_nll = 0.0;
    int64_t random_tokens = 0;
    for (int i = 0; i < 4; ++i) {
        std::vector<int32_t> seq;
        for (int t = 0; t < 24; ++t)
            seq.push_back(
                static_cast<int32_t>(rng.uniformInt(64)));
        const auto [nll, count] = model.sequenceNll(seq);
        random_nll += nll;
        random_tokens += count;
    }
    EXPECT_LT(model_nll / static_cast<double>(model_tokens),
              random_nll / static_cast<double>(random_tokens));
}

TEST(TinyTransformer, TransformedWeightsVisitsEveryMatrix)
{
    const auto model = TinyTransformer::random(smallConfig());
    int visits = 0;
    model.transformedWeights(
        [&](const LinearSite &, const Tensor &w) {
            ++visits;
            return w;
        });
    EXPECT_EQ(visits, 2 * 7); // 2 layers x 7 matrices
}

TEST(TinyTransformer, IdentityTransformPreservesOutputs)
{
    const auto model = TinyTransformer::random(smallConfig());
    const auto copy = model.transformedWeights(
        [](const LinearSite &, const Tensor &w) { return w; });
    const Tensor a = model.forward({1, 2, 3});
    const Tensor b = copy.forward({1, 2, 3});
    EXPECT_DOUBLE_EQ(maxAbsError(a, b), 0.0);
}

TEST(TinyTransformer, ZeroingWeightsChangesOutputs)
{
    const auto model = TinyTransformer::random(smallConfig());
    const auto zeroed = model.transformedWeights(
        [](const LinearSite &site, const Tensor &w) {
            if (site.kind == WeightKind::kDown) {
                Tensor z(w.rows(), w.cols());
                return z;
            }
            return w;
        });
    const Tensor a = model.forward({1, 2, 3});
    const Tensor b = zeroed.forward({1, 2, 3});
    EXPECT_GT(maxAbsError(a, b), 1e-3);
}

TEST(TinyTransformer, SampleSequenceRespectsLengthAndVocab)
{
    const auto model = TinyTransformer::random(smallConfig());
    Rng rng(13);
    const auto seq = model.sampleSequence(17, rng);
    EXPECT_EQ(seq.size(), 17u);
    for (int32_t token : seq) {
        EXPECT_GE(token, 0);
        EXPECT_LT(token, 64);
    }
}

TEST(TinyTransformer, WeightAccessorReturnsCorrectShapes)
{
    const auto model = TinyTransformer::random(smallConfig());
    EXPECT_EQ(model.weight({0, WeightKind::kQ}).rows(), 64);
    EXPECT_EQ(model.weight({0, WeightKind::kK}).rows(),
              2 * (64 / 4)); // kv_heads * head_dim
    EXPECT_EQ(model.weight({1, WeightKind::kDown}).cols(), 128);
}

TEST(TinyTransformerDeathTest, InvalidTokenRejected)
{
    const auto model = TinyTransformer::random(smallConfig());
    EXPECT_DEATH(model.forward({64}), "CHECK failed");
}

TEST(TinyTransformerPlainMlp, ForwardWorksWithoutGate)
{
    TinyTransformerConfig config = smallConfig();
    config.gated_mlp = false;
    const auto model = TinyTransformer::random(config);
    const Tensor logits = model.forward({1, 2, 3, 4});
    EXPECT_EQ(logits.rows(), 4);
    EXPECT_EQ(logits.cols(), 64);
    // Deterministic like the gated variant.
    EXPECT_DOUBLE_EQ(maxAbsError(logits, model.forward({1, 2, 3, 4})),
                     0.0);
}

TEST(TinyTransformerPlainMlp, TransformVisitsSixMatricesPerLayer)
{
    TinyTransformerConfig config = smallConfig();
    config.gated_mlp = false;
    const auto model = TinyTransformer::random(config);
    int visits = 0;
    model.transformedWeights(
        [&](const LinearSite &site, const Tensor &w) {
            EXPECT_NE(site.kind, WeightKind::kGate);
            ++visits;
            return w;
        });
    EXPECT_EQ(visits, 2 * 6); // no gate projection
}

TEST(TinyTransformerPlainMlpDeathTest, GateAccessRejected)
{
    TinyTransformerConfig config = smallConfig();
    config.gated_mlp = false;
    const auto model = TinyTransformer::random(config);
    EXPECT_DEATH(model.weight({0, WeightKind::kGate}),
                 "no gate projection");
}

TEST(TinyTransformerPlainMlp, SelfScoringStillBeatsRandom)
{
    TinyTransformerConfig config = smallConfig();
    config.gated_mlp = false;
    const auto model = TinyTransformer::random(config);
    Rng rng(21);
    const auto seq = model.sampleSequence(24, rng);
    const auto [nll, count] = model.sequenceNll(seq);
    EXPECT_LT(nll / static_cast<double>(count), std::log(64.0));
}

} // namespace
} // namespace comet

