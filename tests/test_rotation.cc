/**
 * @file
 * Unit tests for the Hadamard rotation and the QuaRot-lite W4A4
 * baseline.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/common/rng.h"
#include "comet/kernel/gemm_ref.h"
#include "comet/model/synthetic.h"
#include "comet/quant/quantizer.h"
#include "comet/quant/rotation.h"

namespace comet {
namespace {

TEST(Fwht, IsInvolutive)
{
    Rng rng(1);
    std::vector<float> data(64);
    for (auto &x : data)
        x = static_cast<float>(rng.gaussian(0, 1));
    std::vector<float> twice = data;
    fastWalshHadamard(twice);
    fastWalshHadamard(twice);
    for (size_t i = 0; i < data.size(); ++i)
        EXPECT_NEAR(twice[i], data[i], 1e-5);
}

TEST(Fwht, PreservesEnergy)
{
    Rng rng(2);
    std::vector<float> data(128);
    double before = 0.0;
    for (auto &x : data) {
        x = static_cast<float>(rng.gaussian(0, 1));
        before += static_cast<double>(x) * x;
    }
    fastWalshHadamard(data);
    double after = 0.0;
    for (float x : data)
        after += static_cast<double>(x) * x;
    EXPECT_NEAR(after, before, before * 1e-5);
}

TEST(Fwht, MatchesTwoPointButterfly)
{
    std::vector<float> data{3.0f, 1.0f};
    fastWalshHadamard(data);
    const float s = 1.0f / std::sqrt(2.0f);
    EXPECT_NEAR(data[0], 4.0f * s, 1e-6);
    EXPECT_NEAR(data[1], 2.0f * s, 1e-6);
}

TEST(FwhtDeathTest, RequiresPowerOfTwo)
{
    std::vector<float> data(12, 1.0f);
    EXPECT_DEATH(fastWalshHadamard(data), "power of two");
}

TEST(HadamardRotation, InverseUndoesApply)
{
    Rng rng(3);
    Tensor x(8, 64);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian(0, 2));
    const HadamardRotation rotation(64, 7);
    const Tensor round_trip =
        rotation.applyInverse(rotation.apply(x));
    EXPECT_LT(maxAbsError(x, round_trip), 1e-5);
}

TEST(HadamardRotation, PreservesInnerProducts)
{
    // Orthogonality: (xR)(wR)^T == x w^T, the computational-
    // equivalence property QuaRot relies on.
    Rng rng(4);
    Tensor x(4, 64), w(6, 64);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian(0, 1));
    for (int64_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.gaussian(0, 1));
    const HadamardRotation rotation(64, 11);
    const Tensor rotated = gemmFloat(rotation.apply(x),
                                     rotation.apply(w));
    EXPECT_LT(maxAbsError(gemmFloat(x, w), rotated), 1e-4);
}

TEST(HadamardRotation, SpreadsOutlierEnergy)
{
    // One huge channel becomes many moderate ones — the mechanism
    // that makes uniform INT4 viable.
    Tensor x(1, 128);
    x.at(0, 5) = 100.0f;
    const HadamardRotation rotation(128, 13);
    const Tensor rotated = rotation.apply(x);
    float max_abs = 0.0f;
    for (int64_t c = 0; c < 128; ++c)
        max_abs = std::max(max_abs, std::fabs(rotated.at(0, c)));
    // 100 spreads to +-100/sqrt(128) ~ 8.8 per channel.
    EXPECT_LT(max_abs, 10.0f);
}

TEST(HadamardRotation, DeterministicPerSeed)
{
    // Dense input so any sign-vector difference shows up.
    Tensor x(2, 32);
    for (int64_t c = 0; c < 32; ++c) {
        x.at(0, c) = static_cast<float>(c + 1);
        x.at(1, c) = static_cast<float>(31 - c);
    }
    const HadamardRotation a(32, 21), b(32, 21), c(32, 22);
    EXPECT_DOUBLE_EQ(maxAbsError(a.apply(x), b.apply(x)), 0.0);
    EXPECT_GT(maxAbsError(a.apply(x), c.apply(x)), 0.0);
}

TEST(RotatedQuant, RescuesW4A4OnOutlierData)
{
    // The headline comparison: on outlier-ridden activations, rotated
    // per-token INT4 beats naive per-token INT4 by a wide margin on
    // layer-output error.
    Rng rng(5);
    SyntheticActivationConfig config;
    config.channels = 256;
    config.outlier_fraction = 0.02;
    config.outlier_scale = 40.0;
    const SyntheticActivationModel model(config);
    const Tensor x = model.sample(16, rng);
    const Tensor w = sampleWeights(32, 256, rng);
    const Tensor reference = gemmFloat(x, w);

    RotatedQuantConfig rot_config;
    rot_config.weight_group_size = 32;
    const Tensor rotated_out =
        gemmFloat(rotatedFakeQuantActivations(x, rot_config),
                  rotatedQuantizeWeight(w, rot_config));
    const Tensor naive_out = gemmFloat(fakeQuantPerRow(x, 4),
                                       fakeQuantPerGroup(w, 4, 32));
    EXPECT_LT(relativeError(reference, rotated_out) * 1.3,
              relativeError(reference, naive_out));
    EXPECT_LT(relativeError(reference, rotated_out), 0.2);
}

TEST(RotatedQuant, WeightQuantErrorSmall)
{
    Rng rng(6);
    const Tensor w = sampleWeights(16, 128, rng);
    RotatedQuantConfig config;
    config.weight_bits = 8;
    config.weight_group_size = 32;
    const Tensor q = rotatedQuantizeWeight(w, config);
    EXPECT_LT(relativeError(w, q), 0.02);
}

TEST(RotatedQuantDeathTest, NonPowerOfTwoChannelsRejected)
{
    Tensor x(2, 96);
    EXPECT_DEATH(rotatedFakeQuantActivations(x), "power-of-two");
}

} // namespace
} // namespace comet
