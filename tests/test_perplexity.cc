/**
 * @file
 * Integration tests for the Table 1 accuracy harness: quantized-model
 * construction and the perplexity ordering the paper demonstrates.
 */
#include <gtest/gtest.h>

#include "comet/model/perplexity.h"

namespace comet {
namespace {

/** Shared expensive fixture: teacher, datasets, calibration. */
class PerplexityHarness : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        TinyTransformerConfig config;
        config.vocab_size = 96;
        config.hidden_size = 64;
        config.num_heads = 4;
        config.num_kv_heads = 4;
        config.num_layers = 2;
        config.intermediate_size = 128;
        config.outlier_fraction = 0.06;
        config.outlier_scale = 20.0;
        config.seed = 21;
        teacher_ = new TinyTransformer(
            TinyTransformer::random(config));
        Rng rng(31);
        eval_ = new Dataset(sampleDataset(*teacher_, 4, 28, rng));
        calib_dataset_ =
            new Dataset(sampleDataset(*teacher_, 3, 28, rng));
        calibration_ = new CalibrationData(
            CalibrationData::collect(*teacher_, *calib_dataset_));
    }

    static void
    TearDownTestSuite()
    {
        delete calibration_;
        delete calib_dataset_;
        delete eval_;
        delete teacher_;
    }

    double
    ppl(QuantScheme scheme, FmpqModelStats *stats = nullptr) const
    {
        const QuantizedModel quantized = buildQuantizedModel(
            *teacher_, scheme, *calibration_, stats);
        return evaluatePerplexity(quantized.model, quantized.sim(),
                                  *eval_);
    }

    static TinyTransformer *teacher_;
    static Dataset *eval_;
    static Dataset *calib_dataset_;
    static CalibrationData *calibration_;
};

TinyTransformer *PerplexityHarness::teacher_ = nullptr;
Dataset *PerplexityHarness::eval_ = nullptr;
Dataset *PerplexityHarness::calib_dataset_ = nullptr;
CalibrationData *PerplexityHarness::calibration_ = nullptr;

TEST_F(PerplexityHarness, DatasetShape)
{
    EXPECT_EQ(eval_->sequences.size(), 4u);
    EXPECT_EQ(eval_->totalTokens(), 4 * 28);
}

TEST_F(PerplexityHarness, CalibrationCoversEverySite)
{
    for (int64_t layer = 0; layer < 2; ++layer) {
        for (ActSite site : {ActSite::kQkv, ActSite::kO, ActSite::kMlp,
                             ActSite::kDown}) {
            const Tensor &acts =
                calibration_->activations(layer, site);
            EXPECT_GT(acts.rows(), 0);
        }
    }
}

TEST_F(PerplexityHarness, Fp16IsTheFloor)
{
    const double fp16 = ppl(QuantScheme::kFp16);
    EXPECT_GT(fp16, 1.0);
    for (QuantScheme scheme :
         {QuantScheme::kSmoothQuantW8A8, QuantScheme::kOmniquantW4A16,
          QuantScheme::kFmpqW4AxKv4, QuantScheme::kOmniquantW4A4}) {
        EXPECT_GE(ppl(scheme), fp16 * 0.98)
            << quantSchemeName(scheme);
    }
}

TEST_F(PerplexityHarness, FullW4A4IsCatastrophic)
{
    // The paper's key negative result: naive full W4A4 collapses
    // while FMPQ's mixed precision stays close to FP16.
    const double fp16 = ppl(QuantScheme::kFp16);
    const double fmpq = ppl(QuantScheme::kFmpqW4AxKv4);
    const double w4a4 = ppl(QuantScheme::kOmniquantW4A4);
    // The tiny substrate is far more quantization-sensitive than a
    // 7B+ model, so the gaps are wider than the paper's — but the
    // ordering (FMPQ usable, full W4A4 collapsed) is what matters.
    EXPECT_LT(fmpq, fp16 * 3.0);
    EXPECT_GT(w4a4, fp16 * 4.0);
    EXPECT_GT(w4a4, fmpq * 2.0);
}

TEST_F(PerplexityHarness, FmpqCloseToW8A8)
{
    const double w8a8 = ppl(QuantScheme::kSmoothQuantW8A8);
    const double fmpq = ppl(QuantScheme::kFmpqW4Ax);
    EXPECT_LT(fmpq, w8a8 * 3.0);
}

TEST_F(PerplexityHarness, KvQuantAddsLittle)
{
    const double no_kv = ppl(QuantScheme::kFmpqW4Ax);
    const double with_kv = ppl(QuantScheme::kFmpqW4AxKv4);
    EXPECT_LT(with_kv, no_kv * 1.2);
}

TEST_F(PerplexityHarness, FmpqStatsReported)
{
    FmpqModelStats stats;
    ppl(QuantScheme::kFmpqW4AxKv4, &stats);
    EXPECT_GT(stats.int4_block_fraction, 0.4);
    EXPECT_LE(stats.int4_block_fraction, 1.0);
    EXPECT_DOUBLE_EQ(stats.w4a4_compute_fraction,
                     stats.int4_block_fraction);
}

TEST_F(PerplexityHarness, WeightOnlyMethodsAllWork)
{
    const double fp16 = ppl(QuantScheme::kFp16);
    for (QuantScheme scheme :
         {QuantScheme::kGptqW4A16, QuantScheme::kAwqW4A16,
          QuantScheme::kOmniquantW4A16}) {
        const double p = ppl(scheme);
        EXPECT_LT(p, fp16 * 3.5) << quantSchemeName(scheme);
    }
}

TEST_F(PerplexityHarness, QoqComparableToFmpq)
{
    const double qoq = ppl(QuantScheme::kQoqW4A8Kv4);
    const double fmpq = ppl(QuantScheme::kFmpqW4AxKv4);
    // Same ballpark; neither catastrophic. (Paper: FMPQ edges out
    // QoQ on most rows.)
    EXPECT_LT(qoq / fmpq, 2.0);
    EXPECT_LT(fmpq / qoq, 2.0);
}

TEST(QuantSchemeMeta, NamesAndPrecisions)
{
    EXPECT_STREQ(quantSchemeName(QuantScheme::kFmpqW4AxKv4), "FMPQ");
    EXPECT_STREQ(quantSchemePrecision(QuantScheme::kFmpqW4AxKv4),
                 "W4AxKV4");
    EXPECT_STREQ(quantSchemePrecision(QuantScheme::kQoqW4A8Kv4),
                 "W4A8 KV4");
    EXPECT_EQ(table1Schemes().size(), 9u);
}

TEST(HookSimulator, DefaultsToIdentity)
{
    HookQuantSimulator sim;
    Tensor x(2, 4);
    x.fill(3.0f);
    const Tensor out = sim.transformActivation({0, ActSite::kQkv}, x);
    EXPECT_DOUBLE_EQ(maxAbsError(out, x), 0.0);
    const Tensor kv = sim.transformKv(0, true, x);
    EXPECT_DOUBLE_EQ(maxAbsError(kv, x), 0.0);
}

TEST(HookSimulator, KvQuantizerEngages)
{
    HookQuantSimulator sim;
    sim.setKvQuantizer(KvQuantConfig{4, 16, true});
    Rng rng(1);
    Tensor kv(32, 8);
    for (int64_t i = 0; i < kv.numel(); ++i)
        kv[i] = static_cast<float>(rng.gaussian(0, 1));
    const Tensor out = sim.transformKv(0, false, kv);
    EXPECT_GT(maxAbsError(out, kv), 0.0);
    EXPECT_LT(meanSquaredError(out, kv), 0.05);
}

} // namespace
} // namespace comet
