/**
 * @file
 * Unit tests for the continuous-batching scheduler.
 */
#include <gtest/gtest.h>

#include "comet/serve/batch_scheduler.h"

namespace comet {
namespace {

PagedKvCache
makeCache(double budget_gb)
{
    KvCacheConfig config;
    config.bits_per_value = 16.0;
    config.block_tokens = 16;
    config.memory_budget_bytes = budget_gb * 1e9;
    return PagedKvCache(LlmConfig::llama3_8b(), config);
}

Request
makeRequest(int64_t id, int64_t prompt, int64_t output)
{
    Request request;
    request.id = id;
    request.prompt_tokens = prompt;
    request.max_output_tokens = output;
    return request;
}

TEST(RequestState, Names)
{
    EXPECT_STREQ(requestStateName(RequestState::kQueued), "queued");
    EXPECT_STREQ(requestStateName(RequestState::kRunning), "running");
    EXPECT_STREQ(requestStateName(RequestState::kFinished),
                 "finished");
}

TEST(Request, ContextAndDone)
{
    Request request = makeRequest(1, 100, 10);
    EXPECT_EQ(request.contextTokens(), 100);
    EXPECT_FALSE(request.done());
    request.generated_tokens = 10;
    EXPECT_TRUE(request.done());
    EXPECT_EQ(request.contextTokens(), 110);
}

TEST(BatchScheduler, AdmitsUpToMaxBatch)
{
    PagedKvCache cache = makeCache(10.0);
    BatchSchedulerConfig config;
    config.max_batch = 3;
    BatchScheduler scheduler(&cache, config);
    for (int64_t i = 0; i < 5; ++i)
        scheduler.submit(makeRequest(i, 32, 8));
    EXPECT_EQ(scheduler.admit(), 3);
    EXPECT_EQ(scheduler.runningCount(), 3);
    EXPECT_EQ(scheduler.queuedCount(), 2);
}

TEST(BatchScheduler, StepGeneratesAndRetires)
{
    PagedKvCache cache = makeCache(10.0);
    BatchScheduler scheduler(&cache);
    scheduler.submit(makeRequest(1, 16, 2));
    scheduler.submit(makeRequest(2, 16, 3));
    scheduler.admit();
    EXPECT_EQ(scheduler.step(), 2);
    EXPECT_EQ(scheduler.finishedCount(), 0);
    EXPECT_EQ(scheduler.step(), 2); // request 1 finishes here
    EXPECT_EQ(scheduler.finishedCount(), 1);
    EXPECT_EQ(scheduler.runningCount(), 1);
    EXPECT_EQ(scheduler.step(), 1);
    EXPECT_TRUE(scheduler.idle());
    EXPECT_EQ(scheduler.finishedCount(), 2);
}

TEST(BatchScheduler, FinishedRequestsFreeKvBlocks)
{
    PagedKvCache cache = makeCache(10.0);
    BatchScheduler scheduler(&cache);
    scheduler.submit(makeRequest(1, 64, 1));
    scheduler.admit();
    EXPECT_LT(cache.freeBlocks(), cache.totalBlocks());
    scheduler.step();
    EXPECT_EQ(cache.freeBlocks(), cache.totalBlocks());
}

/** Pool of exactly @p blocks blocks for the given model. */
PagedKvCache
makeExactCache(const LlmConfig &model, int64_t blocks)
{
    KvCacheConfig config;
    config.bits_per_value = 16.0;
    config.block_tokens = 16;
    config.memory_budget_bytes = 1e9;
    const PagedKvCache probe(model, config);
    config.memory_budget_bytes = probe.blockBytes() *
                                 static_cast<double>(blocks);
    return PagedKvCache(model, config);
}

TEST(BatchScheduler, ReserveFullAdmissionReservesDecodeHeadroom)
{
    // Under full reservation, a pool that can hold the prompts of
    // two sequences but not their full generations must only admit
    // one — and decode then never exhausts the pool.
    PagedKvCache cache = makeExactCache(LlmConfig::llama3_8b(), 10);
    ASSERT_EQ(cache.totalBlocks(), 10);

    BatchSchedulerConfig config;
    config.admission = AdmissionPolicy::kReserveFullOutput;
    BatchScheduler scheduler(&cache, config);
    // Each request needs 2 prompt blocks + 4 more while decoding.
    scheduler.submit(makeRequest(1, 32, 64));
    scheduler.submit(makeRequest(2, 32, 64));
    EXPECT_EQ(scheduler.admit(), 1);

    // Decode to completion never exhausts the pool.
    while (!scheduler.idle()) {
        scheduler.admit();
        if (scheduler.runningCount() == 0)
            break;
        scheduler.step();
    }
    EXPECT_EQ(scheduler.finishedCount(), 2);
    EXPECT_EQ(scheduler.counters().preemptions, 0);
}

TEST(BatchScheduler, OptimisticAdmissionRecoversByPreemption)
{
    // The same 10-block pool: optimistic admission takes both
    // requests on their prompt footprint, exhausts the pool
    // mid-decode, preempts the later request, and still completes
    // everything — the recoverable path that used to abort.
    PagedKvCache cache = makeExactCache(LlmConfig::llama3_8b(), 10);
    ASSERT_EQ(cache.totalBlocks(), 10);

    BatchScheduler scheduler(&cache); // optimistic by default
    scheduler.submit(makeRequest(1, 32, 64));
    scheduler.submit(makeRequest(2, 32, 64));
    EXPECT_EQ(scheduler.admit(), 2); // prompt-only footprint fits

    int64_t steps = 0;
    while (!scheduler.idle() && steps < 10000) {
        scheduler.admit();
        if (scheduler.runningCount() == 0)
            break;
        scheduler.step();
        ++steps;
    }
    EXPECT_EQ(scheduler.finishedCount(), 2);
    EXPECT_GT(scheduler.counters().preemptions, 0);
    EXPECT_GT(scheduler.counters().reprefill_tokens, 0);
    EXPECT_EQ(cache.freeBlocks(), cache.totalBlocks());
}

TEST(BatchScheduler, PreemptsLatestArrivedFirst)
{
    PagedKvCache cache = makeExactCache(LlmConfig::llama3_8b(), 9);
    BatchScheduler scheduler(&cache);
    // Three requests, 2 prompt blocks each (6 of 9 blocks); each
    // wants to grow by 2 more blocks.
    scheduler.submit(makeRequest(1, 32, 32));
    scheduler.submit(makeRequest(2, 32, 32));
    scheduler.submit(makeRequest(3, 32, 32));
    ASSERT_EQ(scheduler.admit(), 3);

    // Decode until the first preemption happens.
    while (scheduler.counters().preemptions == 0 &&
           scheduler.runningCount() > 0) {
        scheduler.step();
    }
    ASSERT_GT(scheduler.counters().preemptions, 0);
    // The latest-arrived request (3) is the victim, back at the
    // queue head in kPreempted state; earlier requests keep running.
    ASSERT_GE(scheduler.queuedCount(), 1);
    for (const Request &request : scheduler.running())
        EXPECT_LT(request.id, 3);
}

TEST(BatchScheduler, PreemptedRequestsReadmitFcfsAheadOfNewcomers)
{
    PagedKvCache cache = makeExactCache(LlmConfig::llama3_8b(), 9);
    BatchScheduler scheduler(&cache);
    scheduler.submit(makeRequest(1, 32, 32));
    scheduler.submit(makeRequest(2, 32, 32));
    scheduler.submit(makeRequest(3, 32, 32));
    ASSERT_EQ(scheduler.admit(), 3);
    while (scheduler.counters().preemptions == 0 &&
           scheduler.runningCount() > 0) {
        scheduler.step();
    }
    ASSERT_GT(scheduler.counters().preemptions, 0);

    // A newcomer arrives while request 3 waits preempted: FCFS means
    // 4 must never be running while 3 is still waiting in the queue.
    scheduler.submit(makeRequest(4, 32, 32));
    int64_t steps = 0;
    bool three_readmitted = false;
    bool four_jumped_the_queue = false;
    while (!scheduler.idle() && steps < 10000) {
        scheduler.admit();
        bool has3 = false, has4 = false;
        for (const Request &request : scheduler.running()) {
            has3 |= request.id == 3;
            has4 |= request.id == 4;
        }
        three_readmitted |= has3;
        if (has4 && !three_readmitted)
            four_jumped_the_queue = true;
        if (scheduler.runningCount() == 0)
            break;
        scheduler.step();
        ++steps;
    }
    EXPECT_TRUE(three_readmitted);
    EXPECT_FALSE(four_jumped_the_queue);
    EXPECT_EQ(scheduler.finishedCount(), 4);
}

TEST(BatchScheduler, RejectsRequestsThatCanNeverFit)
{
    // Graceful degradation: an unservable request is dropped with a
    // counter instead of blocking the FCFS head forever.
    PagedKvCache cache = makeCache(10.0);
    const int64_t huge_tokens = cache.totalBlocks() * 16 * 2;
    BatchScheduler scheduler(&cache);
    scheduler.submit(makeRequest(1, huge_tokens, 1)); // never fits
    scheduler.submit(makeRequest(2, 16, 1));          // fits fine
    EXPECT_EQ(scheduler.admit(), 1);
    EXPECT_EQ(scheduler.counters().rejected, 1);
    EXPECT_EQ(scheduler.queuedCount(), 0);
    EXPECT_EQ(scheduler.running().front().id, 2);
}

TEST(BatchScheduler, FcfsDoesNotSkipATemporarilyBlockedHead)
{
    // A head that fits the pool in principle but not right now still
    // blocks later arrivals (no skipping ahead).
    PagedKvCache cache = makeExactCache(LlmConfig::llama3_8b(), 6);
    BatchScheduler scheduler(&cache);
    scheduler.submit(makeRequest(1, 64, 16)); // 4 prompt blocks
    ASSERT_EQ(scheduler.admit(), 1);
    scheduler.submit(makeRequest(2, 64, 16)); // needs 4, only 2 free
    scheduler.submit(makeRequest(3, 16, 16)); // 1 block would fit
    EXPECT_EQ(scheduler.admit(), 0);
    EXPECT_EQ(scheduler.queuedCount(), 2);
}

TEST(BatchScheduler, WatermarkMakesAdmissionMoreConservative)
{
    PagedKvCache cache = makeExactCache(LlmConfig::llama3_8b(), 10);
    BatchSchedulerConfig config;
    config.watermark_blocks = 7;
    BatchScheduler scheduler(&cache, config);
    scheduler.submit(makeRequest(1, 32, 64));
    scheduler.submit(makeRequest(2, 32, 64));
    // The first admission sees an empty system (no watermark); the
    // second would need 2 + 7 of the 8 remaining blocks, so it waits.
    EXPECT_EQ(scheduler.admit(), 1);
    EXPECT_EQ(scheduler.queuedCount(), 1);
    // The watermark never starves an empty system: once request 1
    // finishes, request 2 is admitted even with the watermark.
    while (scheduler.runningCount() > 0)
        scheduler.step();
    EXPECT_EQ(scheduler.admit(), 1);
}

TEST(BatchScheduler, CancelRemovesQueuedAndRunningRequests)
{
    PagedKvCache cache = makeCache(10.0);
    BatchScheduler scheduler(&cache);
    scheduler.submit(makeRequest(1, 32, 8));
    scheduler.submit(makeRequest(2, 32, 8));
    scheduler.admit();
    scheduler.submit(makeRequest(3, 32, 8)); // still queued
    const int64_t used_before =
        cache.totalBlocks() - cache.freeBlocks();
    ASSERT_GT(used_before, 0);

    // Cancel a running request: its blocks come back immediately.
    EXPECT_TRUE(scheduler.cancel(1).isOk());
    EXPECT_EQ(scheduler.runningCount(), 1);
    EXPECT_LT(cache.totalBlocks() - cache.freeBlocks(), used_before);

    // Cancel a queued request: it never runs.
    EXPECT_TRUE(scheduler.cancel(3).isOk());
    EXPECT_EQ(scheduler.queuedCount(), 0);
    EXPECT_EQ(scheduler.counters().cancelled, 2);

    // Unknown (or already cancelled) ids fail cleanly.
    EXPECT_EQ(scheduler.cancel(1).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(scheduler.cancel(99).code(),
              StatusCode::kInvalidArgument);

    // The survivor runs to completion.
    while (!scheduler.idle()) {
        scheduler.admit();
        if (scheduler.runningCount() == 0)
            break;
        scheduler.step();
    }
    EXPECT_EQ(scheduler.finishedCount(), 1);
    EXPECT_EQ(cache.freeBlocks(), cache.totalBlocks());
}

TEST(BatchScheduler, CountersTrackPeaks)
{
    PagedKvCache cache = makeCache(10.0);
    BatchScheduler scheduler(&cache);
    for (int64_t i = 0; i < 4; ++i)
        scheduler.submit(makeRequest(i, 32, 4));
    scheduler.admit();
    EXPECT_EQ(scheduler.counters().peak_running, 4);
    EXPECT_EQ(scheduler.counters().peak_queue_depth, 4);
    EXPECT_GT(scheduler.counters().peak_used_blocks, 0);
    EXPECT_GT(scheduler.kvUtilization(), 0.0);
    EXPECT_EQ(scheduler.counters().admitted, 4);
}

TEST(AdmissionPolicy, Names)
{
    EXPECT_STREQ(
        admissionPolicyName(AdmissionPolicy::kReserveFullOutput),
        "reserve-full");
    EXPECT_STREQ(
        admissionPolicyName(AdmissionPolicy::kOptimisticPreempt),
        "optimistic-preempt");
}

TEST(BatchScheduler, ContinuousAdmissionAfterRetirement)
{
    PagedKvCache cache = makeCache(10.0);
    BatchSchedulerConfig config;
    config.max_batch = 1;
    BatchScheduler scheduler(&cache, config);
    scheduler.submit(makeRequest(1, 16, 1));
    scheduler.submit(makeRequest(2, 16, 1));
    EXPECT_EQ(scheduler.admit(), 1);
    scheduler.step(); // request 1 finishes
    EXPECT_EQ(scheduler.admit(), 1);
    scheduler.step();
    EXPECT_TRUE(scheduler.idle());
    EXPECT_EQ(scheduler.finishedCount(), 2);
}

TEST(BatchScheduler, ResetCountersZeroesEverything)
{
    PagedKvCache cache = makeExactCache(LlmConfig::llama3_8b(), 9);
    BatchScheduler scheduler(&cache);
    scheduler.submit(makeRequest(1, 32, 32));
    scheduler.submit(makeRequest(2, 32, 32));
    scheduler.submit(makeRequest(3, 32, 32));
    scheduler.admit();
    while (scheduler.counters().preemptions == 0 &&
           scheduler.runningCount() > 0)
        scheduler.step();
    EXPECT_TRUE(scheduler.cancel(3).isOk());
    const SchedulerCounters &counters = scheduler.counters();
    ASSERT_GT(counters.admitted, 0);
    ASSERT_GT(counters.preemptions, 0);
    ASSERT_GT(counters.cancelled, 0);

    scheduler.resetCounters();
    EXPECT_EQ(counters.admitted, 0);
    EXPECT_EQ(counters.preemptions, 0);
    EXPECT_EQ(counters.reprefill_tokens, 0);
    EXPECT_EQ(counters.cancelled, 0);
    EXPECT_EQ(counters.rejected, 0);
    EXPECT_EQ(counters.peak_running, 0);
    EXPECT_EQ(counters.peak_queue_depth, 0);
    EXPECT_EQ(counters.peak_used_blocks, 0);
}

TEST(BatchScheduler, PrefillEmitsTokenCreditsAdmission)
{
    PagedKvCache cache = makeCache(10.0);
    BatchSchedulerConfig config;
    config.prefill_emits_token = true;
    BatchScheduler scheduler(&cache, config);
    scheduler.submit(makeRequest(1, 32, 4));
    EXPECT_EQ(scheduler.admit(), 1);
    // The prefill forward pass produced the first output token.
    ASSERT_EQ(scheduler.runningCount(), 1);
    EXPECT_EQ(scheduler.running().front().generated_tokens, 1);
    // Only 3 decode steps remain for a 4-token generation.
    scheduler.step();
    scheduler.step();
    EXPECT_EQ(scheduler.finishedCount(), 0);
    scheduler.step();
    EXPECT_EQ(scheduler.finishedCount(), 1);
    EXPECT_TRUE(scheduler.idle());
}

TEST(BatchScheduler, OneTokenRequestRetiresAtAdmission)
{
    PagedKvCache cache = makeCache(10.0);
    BatchSchedulerConfig config;
    config.prefill_emits_token = true;
    config.collect_retired = true;
    BatchScheduler scheduler(&cache, config);
    scheduler.submit(makeRequest(1, 32, 1));
    EXPECT_EQ(scheduler.admit(), 1);
    // The crediting completed the request: it never enters the
    // decode batch and its KV is already released.
    EXPECT_EQ(scheduler.runningCount(), 0);
    EXPECT_EQ(scheduler.finishedCount(), 1);
    EXPECT_EQ(cache.freeBlocks(), cache.totalBlocks());
    const std::vector<Request> retired = scheduler.drainRetired();
    ASSERT_EQ(retired.size(), 1u);
    EXPECT_EQ(retired[0].state, RequestState::kFinished);
    EXPECT_EQ(retired[0].generated_tokens, 1);
}

TEST(BatchScheduler, AdmissionRetireReturnsItsFullOutputReservation)
{
    // Under full reservation, a request that finishes at admission
    // (EOS on the prefill token) must also give back the decode
    // headroom it reserved, so the rest of the same admit() round is
    // not gated by a claim nothing holds anymore.
    PagedKvCache cache = makeExactCache(LlmConfig::llama3_8b(), 8);
    ASSERT_EQ(cache.totalBlocks(), 8);

    BatchSchedulerConfig config;
    config.admission = AdmissionPolicy::kReserveFullOutput;
    config.prefill_emits_token = true;
    BatchScheduler scheduler(&cache, config);

    // Both requests reserve 6 blocks (2 prompt + 4 decode); the first
    // stops at its prefill token and frees everything immediately.
    Request one_token = makeRequest(1, 32, 64);
    one_token.eos_output_tokens = 1;
    scheduler.submit(one_token);
    scheduler.submit(makeRequest(2, 32, 64));

    // A stale reservation would leave 6 + 4 > 8 and block the second
    // request for this round even though the pool is empty again.
    EXPECT_EQ(scheduler.admit(), 2);
    EXPECT_EQ(scheduler.finishedCount(), 1);
    EXPECT_EQ(scheduler.runningCount(), 1);
    EXPECT_EQ(scheduler.queuedCount(), 0);
}

TEST(BatchScheduler, DrainRetiredCollectsTerminalTransitions)
{
    PagedKvCache cache = makeCache(10.0);
    BatchSchedulerConfig config;
    config.collect_retired = true;
    BatchScheduler scheduler(&cache, config);
    const int64_t huge_tokens = cache.totalBlocks() * 16 * 2;
    scheduler.submit(makeRequest(1, 16, 1));
    scheduler.submit(makeRequest(2, huge_tokens, 1)); // never fits
    scheduler.submit(makeRequest(3, 16, 8));
    scheduler.admit();
    EXPECT_TRUE(scheduler.cancel(3).isOk());
    scheduler.step(); // request 1 finishes
    const std::vector<Request> retired = scheduler.drainRetired();
    ASSERT_EQ(retired.size(), 3u);
    EXPECT_EQ(retired[0].id, 2);
    EXPECT_EQ(retired[0].state, RequestState::kRejected);
    EXPECT_EQ(retired[1].id, 3);
    EXPECT_EQ(retired[1].state, RequestState::kCancelled);
    EXPECT_EQ(retired[2].id, 1);
    EXPECT_EQ(retired[2].state, RequestState::kFinished);
    // drainRetired clears: a second call returns nothing.
    EXPECT_TRUE(scheduler.drainRetired().empty());
}

TEST(BatchScheduler, DrainRetiredIsEmptyWhenCollectionIsOff)
{
    PagedKvCache cache = makeCache(10.0);
    BatchScheduler scheduler(&cache); // collect_retired off
    scheduler.submit(makeRequest(1, 16, 1));
    scheduler.admit();
    scheduler.step();
    EXPECT_EQ(scheduler.finishedCount(), 1);
    EXPECT_TRUE(scheduler.drainRetired().empty());
}

TEST(BatchSchedulerDeathTest, InvalidSubmissions)
{
    PagedKvCache cache = makeCache(1.0);
    BatchScheduler scheduler(&cache);
    Request bad = makeRequest(1, 0, 4);
    EXPECT_DEATH(scheduler.submit(bad), "CHECK failed");
    Request running = makeRequest(2, 4, 4);
    running.state = RequestState::kRunning;
    EXPECT_DEATH(scheduler.submit(running), "CHECK failed");
}

} // namespace
} // namespace comet
