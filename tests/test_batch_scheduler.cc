/**
 * @file
 * Unit tests for the continuous-batching scheduler.
 */
#include <gtest/gtest.h>

#include "comet/serve/batch_scheduler.h"

namespace comet {
namespace {

PagedKvCache
makeCache(double budget_gb)
{
    KvCacheConfig config;
    config.bits_per_value = 16.0;
    config.block_tokens = 16;
    config.memory_budget_bytes = budget_gb * 1e9;
    return PagedKvCache(LlmConfig::llama3_8b(), config);
}

Request
makeRequest(int64_t id, int64_t prompt, int64_t output)
{
    Request request;
    request.id = id;
    request.prompt_tokens = prompt;
    request.max_output_tokens = output;
    return request;
}

TEST(RequestState, Names)
{
    EXPECT_STREQ(requestStateName(RequestState::kQueued), "queued");
    EXPECT_STREQ(requestStateName(RequestState::kRunning), "running");
    EXPECT_STREQ(requestStateName(RequestState::kFinished),
                 "finished");
}

TEST(Request, ContextAndDone)
{
    Request request = makeRequest(1, 100, 10);
    EXPECT_EQ(request.contextTokens(), 100);
    EXPECT_FALSE(request.done());
    request.generated_tokens = 10;
    EXPECT_TRUE(request.done());
    EXPECT_EQ(request.contextTokens(), 110);
}

TEST(BatchScheduler, AdmitsUpToMaxBatch)
{
    PagedKvCache cache = makeCache(10.0);
    BatchSchedulerConfig config;
    config.max_batch = 3;
    BatchScheduler scheduler(&cache, config);
    for (int64_t i = 0; i < 5; ++i)
        scheduler.submit(makeRequest(i, 32, 8));
    EXPECT_EQ(scheduler.admit(), 3);
    EXPECT_EQ(scheduler.runningCount(), 3);
    EXPECT_EQ(scheduler.queuedCount(), 2);
}

TEST(BatchScheduler, StepGeneratesAndRetires)
{
    PagedKvCache cache = makeCache(10.0);
    BatchScheduler scheduler(&cache);
    scheduler.submit(makeRequest(1, 16, 2));
    scheduler.submit(makeRequest(2, 16, 3));
    scheduler.admit();
    EXPECT_EQ(scheduler.step(), 2);
    EXPECT_EQ(scheduler.finishedCount(), 0);
    EXPECT_EQ(scheduler.step(), 2); // request 1 finishes here
    EXPECT_EQ(scheduler.finishedCount(), 1);
    EXPECT_EQ(scheduler.runningCount(), 1);
    EXPECT_EQ(scheduler.step(), 1);
    EXPECT_TRUE(scheduler.idle());
    EXPECT_EQ(scheduler.finishedCount(), 2);
}

TEST(BatchScheduler, FinishedRequestsFreeKvBlocks)
{
    PagedKvCache cache = makeCache(10.0);
    BatchScheduler scheduler(&cache);
    scheduler.submit(makeRequest(1, 64, 1));
    scheduler.admit();
    EXPECT_LT(cache.freeBlocks(), cache.totalBlocks());
    scheduler.step();
    EXPECT_EQ(cache.freeBlocks(), cache.totalBlocks());
}

TEST(BatchScheduler, AdmissionReservesDecodeHeadroom)
{
    // A pool that can hold the prompts of two sequences but not their
    // full generations must only admit one.
    KvCacheConfig config;
    config.bits_per_value = 16.0;
    config.block_tokens = 16;
    config.memory_budget_bytes = 0.0; // set below
    const LlmConfig model = LlmConfig::llama3_8b();
    // Size the pool to exactly 10 blocks.
    PagedKvCache probe(model, [&] {
        KvCacheConfig c = config;
        c.memory_budget_bytes = 1e9;
        return c;
    }());
    config.memory_budget_bytes = probe.blockBytes() * 10;
    PagedKvCache cache(model, config);
    ASSERT_EQ(cache.totalBlocks(), 10);

    BatchScheduler scheduler(&cache);
    // Each request needs 2 prompt blocks + 4 more while decoding.
    scheduler.submit(makeRequest(1, 32, 64));
    scheduler.submit(makeRequest(2, 32, 64));
    EXPECT_EQ(scheduler.admit(), 1);

    // Decode to completion never exhausts the pool.
    while (!scheduler.idle()) {
        scheduler.admit();
        if (scheduler.runningCount() == 0)
            break;
        scheduler.step();
    }
    EXPECT_EQ(scheduler.finishedCount(), 2);
}

TEST(BatchScheduler, FcfsDoesNotSkipTheHead)
{
    PagedKvCache cache = makeCache(10.0);
    const int64_t huge_tokens = cache.totalBlocks() * 16 * 2;
    BatchScheduler scheduler(&cache);
    scheduler.submit(makeRequest(1, huge_tokens, 1)); // never fits
    scheduler.submit(makeRequest(2, 16, 1));          // would fit
    EXPECT_EQ(scheduler.admit(), 0);
    EXPECT_EQ(scheduler.queuedCount(), 2);
}

TEST(BatchScheduler, ContinuousAdmissionAfterRetirement)
{
    PagedKvCache cache = makeCache(10.0);
    BatchSchedulerConfig config;
    config.max_batch = 1;
    BatchScheduler scheduler(&cache, config);
    scheduler.submit(makeRequest(1, 16, 1));
    scheduler.submit(makeRequest(2, 16, 1));
    EXPECT_EQ(scheduler.admit(), 1);
    scheduler.step(); // request 1 finishes
    EXPECT_EQ(scheduler.admit(), 1);
    scheduler.step();
    EXPECT_TRUE(scheduler.idle());
    EXPECT_EQ(scheduler.finishedCount(), 2);
}

TEST(BatchSchedulerDeathTest, InvalidSubmissions)
{
    PagedKvCache cache = makeCache(1.0);
    BatchScheduler scheduler(&cache);
    Request bad = makeRequest(1, 0, 4);
    EXPECT_DEATH(scheduler.submit(bad), "CHECK failed");
    Request running = makeRequest(2, 4, 4);
    running.state = RequestState::kRunning;
    EXPECT_DEATH(scheduler.submit(running), "CHECK failed");
}

} // namespace
} // namespace comet
