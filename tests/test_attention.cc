/**
 * @file
 * Unit and property tests for decode attention: reference vs online
 * softmax equivalence, GQA mapping, and the quantized-cache path.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/attention/decode_attention.h"
#include "comet/common/rng.h"

namespace comet {
namespace {

struct Fixture {
    AttentionConfig config;
    std::vector<float> q;
    Tensor k;
    Tensor v;
};

Fixture
makeFixture(int64_t heads, int64_t kv_heads, int64_t head_dim,
            int64_t tokens, uint64_t seed)
{
    Fixture f;
    f.config.num_heads = heads;
    f.config.num_kv_heads = kv_heads;
    f.config.head_dim = head_dim;
    f.config.chunk_tokens = 16;
    Rng rng(seed);
    f.q.resize(static_cast<size_t>(f.config.qDim()));
    for (auto &x : f.q)
        x = static_cast<float>(rng.gaussian(0, 1));
    f.k = Tensor(tokens, f.config.kvDim());
    f.v = Tensor(tokens, f.config.kvDim());
    for (int64_t i = 0; i < f.k.numel(); ++i) {
        f.k[i] = static_cast<float>(rng.gaussian(0, 1));
        f.v[i] = static_cast<float>(rng.gaussian(0, 1));
    }
    return f;
}

double
maxDiff(const std::vector<float> &a, const std::vector<float> &b)
{
    EXPECT_EQ(a.size(), b.size());
    double m = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(a[i]) - b[i]));
    return m;
}

TEST(DecodeAttention, OutputIsConvexCombinationOfValues)
{
    // With all scores equal (q = 0), the output is the mean of the V
    // rows.
    Fixture f = makeFixture(2, 2, 8, 10, 1);
    std::fill(f.q.begin(), f.q.end(), 0.0f);
    const auto out =
        decodeAttentionReference(f.config, f.q, f.k, f.v);
    for (int64_t c = 0; c < f.config.kvDim(); ++c) {
        double mean = 0.0;
        for (int64_t t = 0; t < 10; ++t)
            mean += f.v.at(t, c);
        mean /= 10.0;
        EXPECT_NEAR(out[static_cast<size_t>(c)], mean, 1e-5);
    }
}

TEST(DecodeAttention, SingleTokenReturnsItsValue)
{
    Fixture f = makeFixture(2, 2, 8, 1, 2);
    const auto out =
        decodeAttentionReference(f.config, f.q, f.k, f.v);
    for (int64_t c = 0; c < f.config.kvDim(); ++c)
        EXPECT_NEAR(out[static_cast<size_t>(c)], f.v.at(0, c), 1e-5);
}

TEST(DecodeAttention, SharpScoresPickTheArgmaxValue)
{
    // Make one key align overwhelmingly with q: the output converges
    // to that token's value.
    Fixture f = makeFixture(1, 1, 8, 6, 3);
    for (int64_t d = 0; d < 8; ++d) {
        f.q[static_cast<size_t>(d)] = 10.0f;
        f.k.at(3, d) = 10.0f; // huge dot product with token 3
    }
    const auto out =
        decodeAttentionReference(f.config, f.q, f.k, f.v);
    for (int64_t c = 0; c < 8; ++c)
        EXPECT_NEAR(out[static_cast<size_t>(c)], f.v.at(3, c), 1e-3);
}

TEST(DecodeAttention, OnlineMatchesReference)
{
    Fixture f = makeFixture(4, 2, 16, 100, 4);
    const auto reference =
        decodeAttentionReference(f.config, f.q, f.k, f.v);
    const auto online =
        decodeAttentionOnline(f.config, f.q, f.k, f.v);
    EXPECT_LT(maxDiff(reference, online), 1e-5);
}

TEST(DecodeAttention, OnlineHandlesPartialTrailingChunk)
{
    Fixture f = makeFixture(2, 2, 8, 37, 5); // 37 % 16 != 0
    EXPECT_LT(maxDiff(decodeAttentionReference(f.config, f.q, f.k,
                                               f.v),
                      decodeAttentionOnline(f.config, f.q, f.k, f.v)),
              1e-5);
}

TEST(DecodeAttention, GqaMapsQueryHeadsToSharedKvHeads)
{
    // With 4 query heads over 1 kv head and identical q per head,
    // every head must produce the same output slice.
    Fixture f = makeFixture(4, 1, 8, 12, 6);
    for (int64_t h = 1; h < 4; ++h) {
        for (int64_t d = 0; d < 8; ++d)
            f.q[static_cast<size_t>(h * 8 + d)] =
                f.q[static_cast<size_t>(d)];
    }
    const auto out =
        decodeAttentionReference(f.config, f.q, f.k, f.v);
    for (int64_t h = 1; h < 4; ++h) {
        for (int64_t d = 0; d < 8; ++d) {
            EXPECT_NEAR(out[static_cast<size_t>(h * 8 + d)],
                        out[static_cast<size_t>(d)], 1e-6);
        }
    }
}

TEST(DecodeAttention, QuantizedCacheApproximatesFloat)
{
    Fixture f = makeFixture(4, 4, 16, 96, 7);
    const KvCacheQuantizer quantizer(KvQuantConfig{4, 32, true});
    const QuantizedKv qk = quantizer.quantize(f.k);
    const QuantizedKv qv = quantizer.quantize(f.v);

    const auto exact =
        decodeAttentionReference(f.config, f.q, f.k, f.v);
    const auto quantized =
        decodeAttentionQuantized(f.config, f.q, qk, qv, quantizer);
    // KV4 error is small relative to the value scale (~N(0,1)).
    EXPECT_LT(maxDiff(exact, quantized), 0.15);

    // And exactly matches attention over the dequantized cache.
    const auto dequant_ref = decodeAttentionReference(
        f.config, f.q, quantizer.dequantize(qk),
        quantizer.dequantize(qv));
    EXPECT_LT(maxDiff(dequant_ref, quantized), 1e-5);
}

TEST(DecodeAttention, Kv8TighterThanKv4)
{
    Fixture f = makeFixture(2, 2, 16, 64, 8);
    const auto exact =
        decodeAttentionReference(f.config, f.q, f.k, f.v);
    double err[2];
    int i = 0;
    for (int bits : {4, 8}) {
        const KvCacheQuantizer quantizer(
            KvQuantConfig{bits, 32, true});
        const auto out = decodeAttentionQuantized(
            f.config, f.q, quantizer.quantize(f.k),
            quantizer.quantize(f.v), quantizer);
        err[i++] = maxDiff(exact, out);
    }
    EXPECT_LT(err[1], err[0]);
}

TEST(DecodeAttention, KvBytesMatchFigure2Arithmetic)
{
    AttentionConfig config;
    config.num_heads = 8;
    config.num_kv_heads = 8;
    config.head_dim = 128;
    // 2 (K+V) * tokens * 1024 channels * 2 bytes.
    EXPECT_DOUBLE_EQ(decodeAttentionKvBytes(config, 1000, 16.0),
                     2.0 * 1000 * 1024 * 2.0);
    EXPECT_DOUBLE_EQ(decodeAttentionKvBytes(config, 1000, 4.0),
                     decodeAttentionKvBytes(config, 1000, 16.0) /
                         4.0);
}

TEST(DecodeAttentionDeathTest, ShapeMismatchesRejected)
{
    Fixture f = makeFixture(2, 2, 8, 4, 9);
    f.q.pop_back();
    EXPECT_DEATH(
        decodeAttentionReference(f.config, f.q, f.k, f.v),
        "CHECK failed");
}

/** Sweep chunk sizes: the online algorithm is chunk-size invariant. */
class ChunkSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(ChunkSweep, OnlineInvariantToChunking)
{
    Fixture f = makeFixture(2, 2, 16, 50, 10);
    f.config.chunk_tokens = GetParam();
    EXPECT_LT(maxDiff(decodeAttentionReference(f.config, f.q, f.k,
                                               f.v),
                      decodeAttentionOnline(f.config, f.q, f.k, f.v)),
              1e-5);
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkSweep,
                         ::testing::Values(1, 7, 16, 50, 128));

} // namespace
} // namespace comet
