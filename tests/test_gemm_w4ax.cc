/**
 * @file
 * Unit and integration tests for the COMET-W4Ax mixed-precision GEMM:
 * bit-exact agreement with the dequantized reference, the ablation
 * path, and the execution statistics.
 */
#include <gtest/gtest.h>

#include "comet/common/rng.h"
#include "comet/kernel/gemm_ref.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/model/synthetic.h"

namespace comet {
namespace {

struct W4AxFixture {
    FmpqActivationQuantizer quantizer;
    MixedQuantizedActivation activation;
    BlockQuantizedWeight weight;
    Tensor x;
    Tensor w;
};

W4AxFixture
makeFixture(int64_t tokens, int64_t out_features, int64_t channels,
          int64_t block_size, uint64_t seed)
{
    Rng rng(seed);
    SyntheticActivationConfig act_config;
    act_config.channels = channels;
    act_config.outlier_fraction = 0.03;
    act_config.outlier_scale = 30.0;
    act_config.seed = seed + 1;
    const SyntheticActivationModel model(act_config);

    FmpqConfig fmpq_config;
    fmpq_config.block_size = block_size;
    const Tensor calib = model.sample(64, rng);
    auto quantizer =
        FmpqActivationQuantizer::calibrate(calib, fmpq_config);

    Tensor x = model.sample(tokens, rng);
    Tensor w = sampleWeights(out_features, channels, rng);
    auto activation = quantizer.quantize(x);
    auto weight = quantizer.quantizeWeight(w);
    return {std::move(quantizer), std::move(activation),
            std::move(weight), std::move(x), std::move(w)};
}

TEST(W4AxGemm, MatchesDequantizedReference)
{
    W4AxFixture s = makeFixture(8, 16, 128, 32, 1);
    W4AxGemmConfig config;
    config.tile_m = 4;
    config.tile_n = 8;
    config.tile_k = 32;
    const W4AxGemm gemm(s.weight, s.quantizer.blockPrecisions(),
                        config);
    const Tensor out = gemm.run(s.activation);
    const Tensor reference =
        gemmW4AxReference(s.activation, s.weight);
    EXPECT_LT(relativeError(reference, out), 1e-5);
}

TEST(W4AxGemm, MixedBlocksActuallyPresent)
{
    W4AxFixture s = makeFixture(8, 16, 128, 32, 2);
    int int4 = 0, int8 = 0;
    for (BlockPrecision p : s.quantizer.blockPrecisions())
        (p == BlockPrecision::kInt4 ? int4 : int8) += 1;
    ASSERT_GT(int4, 0) << "fixture must exercise the W4A4 path";
    ASSERT_GT(int8, 0) << "fixture must exercise the W4A8 path";
}

TEST(W4AxGemm, ApproximatesFloatGemm)
{
    W4AxFixture s = makeFixture(16, 24, 128, 32, 3);
    W4AxGemmConfig config;
    config.tile_m = 16;
    config.tile_n = 16;
    config.tile_k = 32;
    const W4AxGemm gemm(s.weight, s.quantizer.blockPrecisions(),
                        config);
    const Tensor out = gemm.run(s.activation);
    const Tensor reference = gemmFloat(s.x, s.w);
    // End-to-end quantization error, not emulation error.
    EXPECT_LT(relativeError(reference, out), 0.25);
}

TEST(W4AxGemm, NaiveConversionIsNumericallyIdentical)
{
    W4AxFixture s = makeFixture(8, 16, 128, 32, 4);
    W4AxGemmConfig fast;
    fast.tile_m = 8;
    fast.tile_n = 8;
    fast.tile_k = 32;
    W4AxGemmConfig naive = fast;
    naive.use_fast_conversion = false;

    const W4AxGemm gemm_fast(s.weight, s.quantizer.blockPrecisions(),
                             fast);
    const W4AxGemm gemm_naive(s.weight, s.quantizer.blockPrecisions(),
                              naive);
    const Tensor out_fast = gemm_fast.run(s.activation);
    const Tensor out_naive = gemm_naive.run(s.activation);
    EXPECT_LT(maxAbsError(out_fast, out_naive), 1e-4);
}

TEST(W4AxGemm, StatsCountTilesAndInstructions)
{
    W4AxFixture s = makeFixture(8, 16, 128, 32, 5);
    W4AxGemmConfig config;
    config.tile_m = 8;
    config.tile_n = 8;
    config.tile_k = 32;
    const W4AxGemm gemm(s.weight, s.quantizer.blockPrecisions(),
                        config);
    W4AxGemmStats stats;
    gemm.run(s.activation, &stats);

    int int8_blocks = 0;
    for (BlockPrecision p : s.quantizer.blockPrecisions())
        int8_blocks += p == BlockPrecision::kInt8 ? 1 : 0;
    const int64_t mn_tiles = (8 / 8) * (16 / 8);
    EXPECT_EQ(stats.int8_tiles, mn_tiles * int8_blocks);
    EXPECT_EQ(stats.int4_tiles,
              mn_tiles * (4 - int8_blocks));
    EXPECT_GT(stats.conversion_instructions, 0);
    EXPECT_EQ(stats.int4_mac_ops + stats.int8_mac_ops,
              8LL * 16 * 128);
}

TEST(W4AxGemm, FastConversionUsesFarFewerInstructions)
{
    W4AxFixture s = makeFixture(8, 16, 128, 32, 6);
    W4AxGemmConfig fast;
    fast.tile_m = 8;
    fast.tile_n = 8;
    fast.tile_k = 32;
    W4AxGemmConfig naive = fast;
    naive.use_fast_conversion = false;

    W4AxGemmStats fast_stats, naive_stats;
    W4AxGemm(s.weight, s.quantizer.blockPrecisions(), fast)
        .run(s.activation, &fast_stats);
    W4AxGemm(s.weight, s.quantizer.blockPrecisions(), naive)
        .run(s.activation, &naive_stats);
    EXPECT_GT(naive_stats.conversion_instructions,
              5 * fast_stats.conversion_instructions);
}

TEST(W4AxGemm, PartialEdgeTiles)
{
    // M not a multiple of tile_m exercises the edge-tile handling.
    W4AxFixture s = makeFixture(5, 12, 64, 32, 7);
    W4AxGemmConfig config;
    config.tile_m = 4;
    config.tile_n = 8;
    config.tile_k = 32;
    const W4AxGemm gemm(s.weight, s.quantizer.blockPrecisions(),
                        config);
    const Tensor out = gemm.run(s.activation);
    const Tensor reference =
        gemmW4AxReference(s.activation, s.weight);
    EXPECT_LT(relativeError(reference, out), 1e-5);
}

TEST(W4AxGemm, RaggedNEdgeUnderMultiThreadPartitioning)
{
    // N not a multiple of tile_n (44 over 16-wide tiles) with the
    // n-dimension partitioned across threads: the final partition
    // must clamp to n_dim on both ends of its tile range.
    W4AxFixture s = makeFixture(6, 44, 64, 32, 10);
    W4AxGemmConfig threaded;
    threaded.tile_m = 4;
    threaded.tile_n = 16;
    threaded.tile_k = 32;
    threaded.threads = 4;
    const Tensor out =
        W4AxGemm(s.weight, s.quantizer.blockPrecisions(), threaded)
            .run(s.activation);
    const Tensor reference =
        gemmW4AxReference(s.activation, s.weight);
    EXPECT_LT(relativeError(reference, out), 1e-5);

    W4AxGemmConfig sequential = threaded;
    sequential.threads = 1;
    const Tensor seq_out =
        W4AxGemm(s.weight, s.quantizer.blockPrecisions(), sequential)
            .run(s.activation);
    EXPECT_EQ(maxAbsError(seq_out, out), 0.0)
        << "threaded ragged-edge output must match sequential "
           "bit-for-bit";
}

TEST(W4AxGemmDeathTest, MismatchedPrecisionMapRejected)
{
    W4AxFixture s = makeFixture(4, 8, 64, 32, 8);
    std::vector<BlockPrecision> wrong(1, BlockPrecision::kInt4);
    EXPECT_DEATH(W4AxGemm(s.weight, wrong), "one entry per k block");
}

TEST(W4AxGemmDeathTest, TileKMustDivideBlock)
{
    W4AxFixture s = makeFixture(4, 8, 64, 32, 9);
    W4AxGemmConfig config;
    config.tile_k = 48;
    EXPECT_DEATH(
        W4AxGemm(s.weight, s.quantizer.blockPrecisions(), config),
        "tile_k");
}

/** Property sweep across GEMM extents: the packed kernel always
 * matches its dequantized reference. */
struct SweepParam {
    int64_t tokens;
    int64_t out_features;
    int64_t channels;
};

class W4AxShapeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(W4AxShapeSweep, BitExactAgainstReference)
{
    const SweepParam param = GetParam();
    W4AxFixture s = makeFixture(param.tokens, param.out_features,
                        param.channels, 32,
                        static_cast<uint64_t>(param.tokens * 131 +
                                              param.channels));
    W4AxGemmConfig config;
    config.tile_m = 8;
    config.tile_n = 8;
    config.tile_k = 32;
    const W4AxGemm gemm(s.weight, s.quantizer.blockPrecisions(),
                        config);
    const Tensor out = gemm.run(s.activation);
    const Tensor reference =
        gemmW4AxReference(s.activation, s.weight);
    EXPECT_LT(relativeError(reference, out), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, W4AxShapeSweep,
    ::testing::Values(SweepParam{1, 8, 64}, SweepParam{3, 24, 96},
                      SweepParam{16, 16, 128}, SweepParam{9, 17, 160},
                      SweepParam{32, 8, 256}));

TEST(W4AxGemm, MultithreadedRunIsBitIdentical)
{
    W4AxFixture s = makeFixture(16, 40, 128, 32, 10);
    W4AxGemmConfig serial;
    serial.tile_m = 8;
    serial.tile_n = 8;
    serial.tile_k = 32;
    W4AxGemmConfig parallel = serial;
    parallel.threads = 4;

    W4AxGemmStats serial_stats, parallel_stats;
    const Tensor a = W4AxGemm(s.weight, s.quantizer.blockPrecisions(),
                              serial)
                         .run(s.activation, &serial_stats);
    const Tensor b = W4AxGemm(s.weight, s.quantizer.blockPrecisions(),
                              parallel)
                         .run(s.activation, &parallel_stats);
    EXPECT_DOUBLE_EQ(maxAbsError(a, b), 0.0);
    EXPECT_EQ(serial_stats.int4_tiles, parallel_stats.int4_tiles);
    EXPECT_EQ(serial_stats.int8_tiles, parallel_stats.int8_tiles);
    EXPECT_EQ(serial_stats.int4_mac_ops, parallel_stats.int4_mac_ops);
    EXPECT_EQ(serial_stats.conversion_instructions,
              parallel_stats.conversion_instructions);
}

TEST(W4AxGemm, MoreThreadsThanTilesStillCorrect)
{
    W4AxFixture s = makeFixture(4, 8, 64, 32, 11);
    W4AxGemmConfig config;
    config.tile_m = 4;
    config.tile_n = 8;
    config.tile_k = 32;
    config.threads = 16; // only 1 n-tile exists
    const W4AxGemm gemm(s.weight, s.quantizer.blockPrecisions(),
                        config);
    const Tensor out = gemm.run(s.activation);
    EXPECT_LT(relativeError(gemmW4AxReference(s.activation, s.weight),
                            out),
              1e-5);
}

/** Fuzz: arbitrary (non-calibrated) permutations and precision maps
 * through fromParts must still produce a packed GEMM that matches its
 * dequantized reference bit-for-bit. */
class W4AxFuzz : public ::testing::TestWithParam<int> {};

TEST_P(W4AxFuzz, RandomLayoutsStayExact)
{
    const auto seed = static_cast<uint64_t>(GetParam());
    Rng rng(seed * 7919 + 13);
    const int64_t channels = 64 * (1 + static_cast<int64_t>(
                                           rng.uniformInt(3)));
    const int64_t block = 32;
    const int64_t tokens = 1 + static_cast<int64_t>(rng.uniformInt(20));
    const int64_t out_features =
        8 + static_cast<int64_t>(rng.uniformInt(24));

    // Random bijection + random precisions.
    std::vector<int64_t> order(static_cast<size_t>(channels));
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int64_t>(i);
    rng.shuffle(order);
    std::vector<BlockPrecision> precisions;
    for (int64_t b = 0; b < channels / block; ++b) {
        precisions.push_back(rng.uniform() < 0.5
                                 ? BlockPrecision::kInt4
                                 : BlockPrecision::kInt8);
    }
    FmpqConfig config;
    config.block_size = block;
    auto quantizer = FmpqActivationQuantizer::fromParts(
        config, ChannelPermutation(std::move(order)),
        std::move(precisions));

    Tensor x(tokens, channels);
    Tensor w(out_features, channels);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian(0, 3));
    for (int64_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.gaussian(0, 0.2));

    const auto qa = quantizer.quantize(x);
    const auto qw = quantizer.quantizeWeight(w);
    W4AxGemmConfig kernel_config;
    kernel_config.tile_m = 8;
    kernel_config.tile_n = 16;
    kernel_config.tile_k = 32;
    kernel_config.threads = 1 + static_cast<int>(seed % 3);
    const W4AxGemm gemm(qw, quantizer.blockPrecisions(),
                        kernel_config);
    EXPECT_LT(relativeError(gemmW4AxReference(qa, qw),
                            gemm.run(qa)),
              1e-5)
        << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, W4AxFuzz, ::testing::Range(0, 10));

} // namespace
} // namespace comet


