/**
 * @file
 * Unit tests for the binary serialization of quantized artifacts:
 * byte-level round trips, cross-object behavioural equivalence, and
 * graceful rejection of malformed input.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "comet/common/rng.h"
#include "comet/io/serialize.h"
#include "comet/model/synthetic.h"

namespace comet {
namespace {

TEST(ByteStream, PrimitivesRoundTrip)
{
    ByteWriter writer;
    writer.writeU32(0xdeadbeefu);
    writer.writeU64(0x0123456789abcdefull);
    writer.writeI64(-42);
    writer.writeF32(3.25f);
    const std::vector<uint8_t> bytes = writer.buffer();

    ByteReader reader(bytes);
    EXPECT_EQ(reader.readU32().value(), 0xdeadbeefu);
    EXPECT_EQ(reader.readU64().value(), 0x0123456789abcdefull);
    EXPECT_EQ(reader.readI64().value(), -42);
    EXPECT_FLOAT_EQ(reader.readF32().value(), 3.25f);
    EXPECT_TRUE(reader.atEnd());
}

TEST(ByteStream, TruncationIsAnError)
{
    std::vector<uint8_t> bytes{1, 2, 3};
    ByteReader reader(bytes);
    const Result<uint32_t> value = reader.readU32();
    EXPECT_FALSE(value.isOk());
    EXPECT_EQ(value.status().code(), StatusCode::kOutOfRange);
}

struct QuantizedFixture {
    FmpqActivationQuantizer quantizer;
    BlockQuantizedWeight weight;
    Tensor x;
};

QuantizedFixture
makeFixture(uint64_t seed)
{
    Rng rng(seed);
    SyntheticActivationConfig config;
    config.channels = 128;
    config.outlier_fraction = 0.03;
    config.seed = seed + 1;
    const SyntheticActivationModel model(config);
    FmpqConfig fmpq_config;
    fmpq_config.block_size = 32;
    auto quantizer = FmpqActivationQuantizer::calibrate(
        model.sample(64, rng), fmpq_config);
    auto weight =
        quantizer.quantizeWeight(sampleWeights(16, 128, rng));
    return {std::move(quantizer), std::move(weight),
            model.sample(4, rng)};
}

TEST(SerializeWeight, RoundTripsExactly)
{
    const QuantizedFixture f = makeFixture(1);
    const std::vector<uint8_t> bytes = serialize(f.weight);
    const Result<BlockQuantizedWeight> restored =
        deserializeBlockQuantizedWeight(bytes);
    ASSERT_TRUE(restored.isOk());
    const BlockQuantizedWeight &weight = restored.value();
    EXPECT_EQ(weight.out_features, f.weight.out_features);
    EXPECT_EQ(weight.in_channels, f.weight.in_channels);
    EXPECT_EQ(weight.block_size, f.weight.block_size);
    for (int64_t n = 0; n < weight.out_features; ++n) {
        for (int64_t c = 0; c < weight.in_channels; ++c)
            ASSERT_EQ(weight.data.get(n, c), f.weight.data.get(n, c));
    }
    EXPECT_DOUBLE_EQ(maxAbsError(weight.scales, f.weight.scales),
                     0.0);
}

TEST(SerializeWeight, RejectsWrongMagicAndVersion)
{
    const QuantizedFixture f = makeFixture(2);
    std::vector<uint8_t> bytes = serialize(f.weight);
    std::vector<uint8_t> bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    EXPECT_FALSE(
        deserializeBlockQuantizedWeight(bad_magic).isOk());
    std::vector<uint8_t> bad_version = bytes;
    bad_version[4] = 99;
    EXPECT_FALSE(
        deserializeBlockQuantizedWeight(bad_version).isOk());
}

TEST(SerializeWeight, RejectsTruncation)
{
    const QuantizedFixture f = makeFixture(3);
    std::vector<uint8_t> bytes = serialize(f.weight);
    bytes.resize(bytes.size() / 2);
    const Result<BlockQuantizedWeight> restored =
        deserializeBlockQuantizedWeight(bytes);
    EXPECT_FALSE(restored.isOk());
}

TEST(SerializeQuantizer, RestoredQuantizerBehavesIdentically)
{
    const QuantizedFixture f = makeFixture(4);
    const std::vector<uint8_t> bytes = serialize(f.quantizer);
    const Result<FmpqActivationQuantizer> restored =
        deserializeFmpqQuantizer(bytes);
    ASSERT_TRUE(restored.isOk());

    EXPECT_EQ(restored.value().permutation().order(),
              f.quantizer.permutation().order());
    EXPECT_EQ(restored.value().blockPrecisions(),
              f.quantizer.blockPrecisions());
    // Behavioural equivalence: identical fake quantization output.
    const Tensor a = f.quantizer.fakeQuantize(f.x);
    const Tensor b = restored.value().fakeQuantize(f.x);
    EXPECT_DOUBLE_EQ(maxAbsError(a, b), 0.0);
}

TEST(SerializeQuantizer, RejectsCorruptPermutation)
{
    const QuantizedFixture f = makeFixture(5);
    std::vector<uint8_t> bytes = serialize(f.quantizer);
    // The permutation entries start right after the fixed header
    // (8 magic/version + 8 block + 4 thr + 4 perm + 4 + 4 + 8 ch);
    // duplicate the first index into the second slot.
    const size_t perm_offset = 8 + 8 + 4 + 4 + 4 + 4 + 8;
    for (int i = 0; i < 8; ++i)
        bytes[perm_offset + 8 + static_cast<size_t>(i)] =
            bytes[perm_offset + static_cast<size_t>(i)];
    const auto restored = deserializeFmpqQuantizer(bytes);
    EXPECT_FALSE(restored.isOk());
    EXPECT_EQ(restored.status().code(),
              StatusCode::kInvalidArgument);
}

TEST(SerializeKv, RoundTripsExactly)
{
    Rng rng(6);
    Tensor kv(50, 16);
    for (int64_t i = 0; i < kv.numel(); ++i)
        kv[i] = static_cast<float>(rng.gaussian(0, 1));
    const KvCacheQuantizer quantizer(KvQuantConfig{4, 32, true});
    const QuantizedKv original = quantizer.quantize(kv);

    const Result<QuantizedKv> restored =
        deserializeQuantizedKv(serialize(original));
    ASSERT_TRUE(restored.isOk());
    const Tensor a = quantizer.dequantize(original);
    const Tensor b = quantizer.dequantize(restored.value());
    EXPECT_DOUBLE_EQ(maxAbsError(a, b), 0.0);
}

TEST(SerializeKv, RejectsParamCountMismatch)
{
    Rng rng(7);
    Tensor kv(32, 8);
    for (int64_t i = 0; i < kv.numel(); ++i)
        kv[i] = static_cast<float>(rng.gaussian(0, 1));
    const KvCacheQuantizer quantizer(KvQuantConfig{4, 16, true});
    QuantizedKv original = quantizer.quantize(kv);
    original.params.pop_back(); // corrupt before serializing
    const auto restored =
        deserializeQuantizedKv(serialize(original));
    EXPECT_FALSE(restored.isOk());
}

TEST(SerializeFile, WriteReadRoundTrip)
{
    const QuantizedFixture f = makeFixture(8);
    const std::vector<uint8_t> bytes = serialize(f.weight);
    const std::string path = "/tmp/comet_test_weight.bin";
    ASSERT_TRUE(writeFile(path, bytes).isOk());
    const Result<std::vector<uint8_t>> read = readFile(path);
    ASSERT_TRUE(read.isOk());
    EXPECT_EQ(read.value(), bytes);
    std::remove(path.c_str());
}

TEST(SerializeFile, MissingFileIsAnError)
{
    const auto result = readFile("/tmp/comet_definitely_missing.bin");
    EXPECT_FALSE(result.isOk());
}

/** Fuzz-ish sweep: random byte flips never abort, only fail. */
class CorruptionSweep : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionSweep, FlippedBytesNeverAbort)
{
    const QuantizedFixture f = makeFixture(9);
    std::vector<uint8_t> bytes = serialize(f.quantizer);
    Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
    for (int flip = 0; flip < 8; ++flip) {
        bytes[rng.uniformInt(bytes.size())] ^= static_cast<uint8_t>(
            1u << rng.uniformInt(8));
    }
    // Either parses (flips hit scale payloads) or fails cleanly.
    const auto restored = deserializeFmpqQuantizer(bytes);
    if (!restored.isOk()) {
        EXPECT_FALSE(restored.status().message().empty());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionSweep,
                         ::testing::Range(0, 12));

} // namespace
} // namespace comet
