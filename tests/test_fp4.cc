/**
 * @file
 * Unit tests for E2M1 FP4 and the FP4->INT8 conversion (paper
 * Section 4.3, H100 adaptation).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/common/rng.h"
#include "comet/gpusim/gpu_spec.h"
#include "comet/kernel/fp4.h"
#include "comet/kernel/int4_pack.h"

namespace comet {
namespace {

TEST(Fp4, DecodesAllSixteenCodes)
{
    const float expected[8] = {0.0f, 0.5f, 1.0f, 1.5f,
                               2.0f, 3.0f, 4.0f, 6.0f};
    for (uint8_t code = 0; code < 8; ++code) {
        EXPECT_FLOAT_EQ(decodeFp4(code), expected[code]);
        EXPECT_FLOAT_EQ(decodeFp4(static_cast<uint8_t>(code | 0x8)),
                        -expected[code]);
    }
}

TEST(Fp4, EncodeRoundTripsRepresentableValues)
{
    for (uint8_t code = 0; code < 16; ++code) {
        // -0 encodes as +0; skip that alias.
        if (code == 0x8)
            continue;
        EXPECT_EQ(encodeFp4(decodeFp4(code)), code) << int(code);
    }
}

TEST(Fp4, EncodeRoundsToNearest)
{
    EXPECT_FLOAT_EQ(decodeFp4(encodeFp4(0.2f)), 0.0f);
    EXPECT_FLOAT_EQ(decodeFp4(encodeFp4(0.3f)), 0.5f);
    EXPECT_FLOAT_EQ(decodeFp4(encodeFp4(1.2f)), 1.0f);
    EXPECT_FLOAT_EQ(decodeFp4(encodeFp4(2.4f)), 2.0f);
    EXPECT_FLOAT_EQ(decodeFp4(encodeFp4(2.6f)), 3.0f);
    EXPECT_FLOAT_EQ(decodeFp4(encodeFp4(-4.9f)), -4.0f);
    EXPECT_FLOAT_EQ(decodeFp4(encodeFp4(5.1f)), 6.0f);
}

TEST(Fp4, EncodeSaturates)
{
    EXPECT_FLOAT_EQ(decodeFp4(encodeFp4(1000.0f)), kFp4Max);
    EXPECT_FLOAT_EQ(decodeFp4(encodeFp4(-1000.0f)), -kFp4Max);
}

TEST(Fp4, ConversionIsExactlyTwiceTheValue)
{
    for (uint8_t code = 0; code < 16; ++code) {
        EXPECT_EQ(static_cast<float>(fp4ToInt8(code)),
                  kFp4ConvMultiplier * decodeFp4(code))
            << int(code);
    }
}

TEST(Fp4, ConversionInstructionCountSmall)
{
    InstructionCounter counter;
    fp4ToInt8(0x7, &counter); // +6.0
    EXPECT_LE(counter.count(), 4);
}

TEST(Fp4, PackUnpackRoundTrip)
{
    Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        std::array<uint8_t, 8> codes{};
        for (auto &code : codes)
            code = static_cast<uint8_t>(rng.uniformInt(16));
        EXPECT_EQ(unpackFp4x8(packFp4x8(codes)), codes);
    }
}

TEST(Fp4, RegisterConversionMatchesScalar)
{
    Rng rng(2);
    for (int trial = 0; trial < 50; ++trial) {
        std::array<uint8_t, 8> codes{};
        for (auto &code : codes)
            code = static_cast<uint8_t>(rng.uniformInt(16));
        const ConvertedPair pair =
            fp4RegisterToInt8(packFp4x8(codes));
        const auto lo = unpackInt8x4(pair.lo);
        const auto hi = unpackInt8x4(pair.hi);
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(lo[static_cast<size_t>(i)],
                      fp4ToInt8(codes[static_cast<size_t>(i)]));
            EXPECT_EQ(hi[static_cast<size_t>(i)],
                      fp4ToInt8(codes[static_cast<size_t>(i + 4)]));
        }
    }
}

TEST(Fp4, QuantizeDequantizeErrorBounded)
{
    // FP4's relative step is at most 1/2 within its range; check a
    // fake-quant round trip against that bound.
    Rng rng(3);
    for (int trial = 0; trial < 500; ++trial) {
        const float x =
            static_cast<float>(rng.uniform(-kFp4Max, kFp4Max));
        const float q = decodeFp4(encodeFp4(x));
        EXPECT_LE(std::fabs(q - x), 0.5f + std::fabs(x) / 4.0f);
    }
}

TEST(Fp4DeathTest, BadCodeRejected)
{
    EXPECT_DEATH(decodeFp4(16), "CHECK failed");
    EXPECT_DEATH(fp4ToInt8(200), "CHECK failed");
}

TEST(H100Spec, HopperHasNoInt4TensorCores)
{
    const GpuSpec h100 = GpuSpec::h100Sxm80G();
    EXPECT_DOUBLE_EQ(h100.int4_tensor_ops, h100.int8_tensor_ops);
    EXPECT_GT(h100.hbm_bandwidth,
              GpuSpec::a100Sxm480G().hbm_bandwidth);
    EXPECT_EQ(h100.num_sms, 132);
}

} // namespace
} // namespace comet
