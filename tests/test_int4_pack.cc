/**
 * @file
 * Unit tests for register-word packing and the dp4a/dp8a4 emulation.
 */
#include <gtest/gtest.h>

#include "comet/common/rng.h"
#include "comet/kernel/int4_pack.h"

namespace comet {
namespace {

TEST(PackInt4, RoundTripAllValues)
{
    const std::array<int8_t, 8> values{-8, -1, 0, 1, 7, -5, 3, -2};
    const uint32_t word = packInt4x8(values);
    EXPECT_EQ(unpackInt4x8(word), values);
}

TEST(PackInt4, NibbleOrderLittleEndian)
{
    std::array<int8_t, 8> values{};
    values[0] = 5;
    EXPECT_EQ(packInt4x8(values) & 0xfu, 5u);
    values[0] = 0;
    values[7] = -1; // 0xF in the top nibble
    EXPECT_EQ(packInt4x8(values) >> 28, 0xfu);
}

TEST(PackInt8, RoundTripExtremes)
{
    const std::array<int8_t, 4> values{-128, 127, -1, 0};
    EXPECT_EQ(unpackInt8x4(packInt8x4(values)), values);
}

TEST(PackInt4DeathTest, OutOfRangeValueAborts)
{
    // 8 would silently alias to -8 under nibble masking; the pack
    // must abort instead of corrupting the lane.
    std::array<int8_t, 8> values{};
    values[3] = 8;
    EXPECT_DEATH(packInt4x8(values), "INT4 pack");
    values[3] = -9;
    EXPECT_DEATH(packInt4x8(values), "INT4 pack");
}

TEST(Dp4a, MatchesScalarDotProduct)
{
    Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        std::array<int8_t, 4> a{}, b{};
        int32_t expected = 0;
        for (int i = 0; i < 4; ++i) {
            a[static_cast<size_t>(i)] = static_cast<int8_t>(
                static_cast<int>(rng.uniformInt(256)) - 128);
            b[static_cast<size_t>(i)] = static_cast<int8_t>(
                static_cast<int>(rng.uniformInt(256)) - 128);
            expected += static_cast<int32_t>(a[static_cast<size_t>(i)]) *
                        b[static_cast<size_t>(i)];
        }
        const int32_t acc0 = static_cast<int32_t>(
            static_cast<int64_t>(rng.uniformInt(1000)) - 500);
        EXPECT_EQ(dp4a(packInt8x4(a), packInt8x4(b), acc0),
                  expected + acc0);
    }
}

TEST(Dp8a4, MatchesScalarDotProduct)
{
    Rng rng(2);
    for (int trial = 0; trial < 200; ++trial) {
        std::array<int8_t, 8> a{}, b{};
        int32_t expected = 0;
        for (int i = 0; i < 8; ++i) {
            a[static_cast<size_t>(i)] = static_cast<int8_t>(
                static_cast<int>(rng.uniformInt(16)) - 8);
            b[static_cast<size_t>(i)] = static_cast<int8_t>(
                static_cast<int>(rng.uniformInt(16)) - 8);
            expected += static_cast<int32_t>(a[static_cast<size_t>(i)]) *
                        b[static_cast<size_t>(i)];
        }
        EXPECT_EQ(dp8a4(packInt4x8(a), packInt4x8(b), 0), expected);
    }
}

TEST(Dp4a, AccumulatorChains)
{
    const std::array<int8_t, 4> ones{1, 1, 1, 1};
    const uint32_t w = packInt8x4(ones);
    int32_t acc = 0;
    for (int i = 0; i < 10; ++i)
        acc = dp4a(w, w, acc);
    EXPECT_EQ(acc, 40);
}

TEST(Dp8a4, ExtremeValuesDoNotOverflow)
{
    // 8 * (-8 * -8) = 512 per call; far below INT32 limits even when
    // chained over a full 128-deep k block.
    const std::array<int8_t, 8> min_vals{-8, -8, -8, -8, -8, -8, -8,
                                         -8};
    const uint32_t w = packInt4x8(min_vals);
    int32_t acc = 0;
    for (int i = 0; i < 16; ++i)
        acc = dp8a4(w, w, acc);
    EXPECT_EQ(acc, 16 * 8 * 64);
}

} // namespace
} // namespace comet
