/**
 * @file
 * Unit tests for the kernel simulator facade and ablation variant
 * sets.
 */
#include <gtest/gtest.h>

#include "comet/gpusim/kernel_sim.h"

namespace comet {
namespace {

TEST(KernelSim, SpeedupDefinition)
{
    const KernelSimulator sim;
    const GemmShape shape{64, 8192, 8192};
    const double cublas =
        sim.latencyUs(shape, GemmKernelKind::kCublasW16A16);
    const double comet =
        sim.latencyUs(shape, GemmKernelKind::kCometW4Ax);
    EXPECT_NEAR(sim.speedup(shape, GemmKernelKind::kCublasW16A16,
                            GemmKernelKind::kCometW4Ax),
                cublas / comet, 1e-9);
}

TEST(KernelSim, Figure13VariantsCoverEachFeature)
{
    const auto variants = figure13Variants();
    ASSERT_EQ(variants.size(), 4u);
    EXPECT_TRUE(variants[0].features.software_pipeline);
    EXPECT_FALSE(variants[1].features.software_pipeline);
    EXPECT_FALSE(variants[2].features.weight_interleaving);
    EXPECT_FALSE(variants[3].features.fast_conversion);
}

TEST(KernelSim, Figure14VariantsFollowTheLadder)
{
    const auto variants = figure14Variants();
    ASSERT_EQ(variants.size(), 4u);
    EXPECT_EQ(variants[0].features.scheduling,
              SchedulingStrategy::kNaiveSync);
    EXPECT_EQ(variants[1].features.scheduling,
              SchedulingStrategy::kBarrierMinimized);
    EXPECT_EQ(variants[2].features.scheduling,
              SchedulingStrategy::kTileRemapping);
    EXPECT_EQ(variants[3].features.scheduling,
              SchedulingStrategy::kTaskStealing);
}

TEST(KernelSim, FullVariantIsFastestOfFigure13)
{
    const KernelSimulator sim;
    const GemmShape shape{64, 8192, 8192};
    const auto variants = figure13Variants();
    const double full = sim.variantLatencyUs(shape, variants[0]);
    for (size_t i = 1; i < variants.size(); ++i) {
        EXPECT_GT(sim.variantLatencyUs(shape, variants[i]), full)
            << variants[i].name;
    }
}

TEST(KernelSim, Figure14LadderImprovesMonotonically)
{
    const KernelSimulator sim;
    const GemmShape shape{256, 8192, 8192};
    const auto variants = figure14Variants();
    double previous = 1e30;
    for (const auto &variant : variants) {
        const double t = sim.variantLatencyUs(shape, variant);
        EXPECT_LE(t, previous + 1e-9) << variant.name;
        previous = t;
    }
}

} // namespace
} // namespace comet
