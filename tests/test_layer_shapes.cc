/**
 * @file
 * Unit tests for GEMM shape enumeration.
 */
#include <gtest/gtest.h>

#include "comet/model/layer_shapes.h"

namespace comet {
namespace {

TEST(LayerShapes, Llama3_8bDecodeShapes)
{
    const auto gemms = decoderLayerGemms(LlmConfig::llama3_8b(), 4);
    ASSERT_EQ(gemms.size(), 4u);
    // QKV: (32 + 2*8) * 128 = 6144 outputs.
    EXPECT_EQ(gemms[0].name, "qkv_proj");
    EXPECT_EQ(gemms[0].shape.m, 4);
    EXPECT_EQ(gemms[0].shape.n, 6144);
    EXPECT_EQ(gemms[0].shape.k, 4096);
    EXPECT_EQ(gemms[1].name, "o_proj");
    EXPECT_EQ(gemms[1].shape.n, 4096);
    EXPECT_EQ(gemms[2].name, "gate_up_proj");
    EXPECT_EQ(gemms[2].shape.n, 2 * 14336);
    EXPECT_EQ(gemms[3].name, "down_proj");
    EXPECT_EQ(gemms[3].shape.k, 14336);
}

TEST(LayerShapes, MhaModelQkvIsThreeHidden)
{
    const auto gemms = decoderLayerGemms(LlmConfig::llama1_13b(), 1);
    EXPECT_EQ(gemms[0].shape.n, 3 * 5120);
}

TEST(LayerShapes, OptHasNoGateProjection)
{
    const auto gemms = decoderLayerGemms(LlmConfig::opt_13b(), 1);
    ASSERT_EQ(gemms.size(), 4u);
    EXPECT_EQ(gemms[2].name, "up_proj");
    EXPECT_EQ(gemms[2].shape.n, 20480);
}

TEST(LayerShapes, MTokensPropagates)
{
    for (int64_t m : {1, 16, 1024}) {
        for (const auto &gemm :
             decoderLayerGemms(LlmConfig::mistral_7b(), m))
            EXPECT_EQ(gemm.shape.m, m);
    }
}

TEST(LayerShapes, Figure9ShapeSet)
{
    const auto shapes = figure9Shapes(8);
    EXPECT_EQ(shapes.size(), 8u);
    for (const auto &shape : shapes) {
        EXPECT_EQ(shape.shape.m, 8);
        EXPECT_GT(shape.shape.n, 0);
        EXPECT_GT(shape.shape.k, 0);
    }
    // The paper's named shapes are present.
    bool found = false;
    for (const auto &shape : shapes) {
        if (shape.name == "13.5Kx5K") {
            found = true;
            EXPECT_EQ(shape.shape.n, 13824);
            EXPECT_EQ(shape.shape.k, 5120);
        }
    }
    EXPECT_TRUE(found);
}

TEST(LayerShapesDeathTest, RejectsNonPositiveTokens)
{
    EXPECT_DEATH(decoderLayerGemms(LlmConfig::llama3_8b(), 0),
                 "CHECK failed");
}

} // namespace
} // namespace comet
