/**
 * @file
 * Unit tests of the comet::runtime thread pool: chunk decomposition,
 * exactly-once execution under stealing, determinism of chunk
 * boundaries and ordered reductions, nested-region inlining,
 * exception propagation, and the COMET_THREADS configuration knob.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "comet/runtime/thread_pool.h"

namespace comet {
namespace {

TEST(NumChunks, Math)
{
    EXPECT_EQ(numChunks(0, 0, 1), 0);
    EXPECT_EQ(numChunks(5, 3, 1), 0);
    EXPECT_EQ(numChunks(0, 10, 1), 10);
    EXPECT_EQ(numChunks(0, 10, 3), 4);
    EXPECT_EQ(numChunks(0, 10, 10), 1);
    EXPECT_EQ(numChunks(0, 10, 100), 1);
    EXPECT_EQ(numChunks(7, 17, 4), 3);
}

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    for (const int threads : {1, 2, 4}) {
        ThreadPool pool(threads);
        for (const int64_t grain : {int64_t{1}, int64_t{3},
                                    int64_t{16}}) {
            const int64_t n = 103;
            std::vector<std::atomic<int>> hits(
                static_cast<size_t>(n));
            for (auto &h : hits)
                h.store(0);
            pool.parallelFor(0, n, grain,
                             [&](int64_t b, int64_t e) {
                                 for (int64_t i = b; i < e; ++i)
                                     hits[static_cast<size_t>(i)]
                                         .fetch_add(1);
                             });
            for (int64_t i = 0; i < n; ++i)
                EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
                    << "index " << i << " threads " << threads
                    << " grain " << grain;
        }
    }
}

TEST(ThreadPool, EmptyRangeRunsNothing)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, 0, 1,
                     [&](int64_t, int64_t) { calls.fetch_add(1); });
    pool.parallelFor(10, 3, 4,
                     [&](int64_t, int64_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

/** Chunk boundaries depend only on (begin, end, grain) — never on
 * the pool size. This is the determinism contract's foundation. */
TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount)
{
    using Chunk = std::tuple<int64_t, int64_t, int64_t>;
    auto collect = [](int threads) {
        ThreadPool pool(threads);
        std::mutex mutex;
        std::vector<Chunk> chunks;
        pool.parallelForChunks(
            5, 100, 7, [&](int64_t b, int64_t e, int64_t idx) {
                std::lock_guard<std::mutex> lock(mutex);
                chunks.emplace_back(b, e, idx);
            });
        std::sort(chunks.begin(), chunks.end(),
                  [](const Chunk &a, const Chunk &c) {
                      return std::get<2>(a) < std::get<2>(c);
                  });
        return chunks;
    };
    const auto seq = collect(1);
    const auto par = collect(4);
    EXPECT_EQ(seq, par);
    ASSERT_FALSE(seq.empty());
    // Chunk 0 starts at begin; last chunk ends at end; grain-sized
    // interior chunks.
    EXPECT_EQ(std::get<0>(seq.front()), 5);
    EXPECT_EQ(std::get<1>(seq.back()), 100);
    for (size_t i = 0; i + 1 < seq.size(); ++i)
        EXPECT_EQ(std::get<1>(seq[i]) - std::get<0>(seq[i]), 7);
}

TEST(ThreadPool, SlotIndicesWithinThreadCount)
{
    ThreadPool pool(3);
    std::mutex mutex;
    std::set<int> slots;
    pool.parallelForSlots(0, 64, 1,
                          [&](int64_t, int64_t, int slot) {
                              std::lock_guard<std::mutex> lock(mutex);
                              slots.insert(slot);
                          });
    ASSERT_FALSE(slots.empty());
    EXPECT_GE(*slots.begin(), 0);
    EXPECT_LT(*slots.rbegin(), pool.threadCount());
}

TEST(ThreadPool, MaxParallelismCapsSlots)
{
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<int> slots;
    pool.parallelForSlots(
        0, 64, 1,
        [&](int64_t, int64_t, int slot) {
            std::lock_guard<std::mutex> lock(mutex);
            slots.insert(slot);
        },
        /*max_parallelism=*/2);
    EXPECT_LT(*slots.rbegin(), 2);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(0, 8, 1, [&](int64_t ob, int64_t oe) {
        for (int64_t o = ob; o < oe; ++o) {
            // Nested region: must run inline on this executor, with
            // the same chunking, and must not deadlock.
            pool.parallelFor(o * 8, o * 8 + 8, 2,
                             [&](int64_t b, int64_t e) {
                                 for (int64_t i = b; i < e; ++i)
                                     hits[static_cast<size_t>(i)]
                                         .fetch_add(1);
                             });
        }
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    for (const int threads : {1, 4}) {
        ThreadPool pool(threads);
        EXPECT_THROW(
            pool.parallelFor(0, 32, 1,
                             [&](int64_t b, int64_t) {
                                 if (b == 17)
                                     throw std::runtime_error("boom");
                             }),
            std::runtime_error);
        // The pool stays usable after a failed region.
        std::atomic<int64_t> sum{0};
        pool.parallelFor(0, 10, 1, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i)
                sum.fetch_add(i);
        });
        EXPECT_EQ(sum.load(), 45);
    }
}

TEST(ThreadPool, OrderedReduceBitIdenticalAcrossPoolSizes)
{
    // Floating-point partials whose combination order matters: the
    // ordered reduction must produce the same bits for any pool size.
    auto reduce = [](int threads) {
        ThreadPool pool(threads);
        return pool.parallelReduceOrdered(
            0, 1000, 13, 0.0f,
            [](int64_t b, int64_t e) {
                float partial = 0.0f;
                for (int64_t i = b; i < e; ++i)
                    partial += 1.0f /
                               static_cast<float>(i + 1);
                return partial;
            },
            [](float acc, float partial) { return acc + partial; });
    };
    const float r1 = reduce(1);
    const float r2 = reduce(2);
    const float r4 = reduce(4);
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(r1, r4);
}

TEST(ThreadPool, StressManySmallRegions)
{
    // Exercises wake/steal/complete churn — the TSan leg's target.
    ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    for (int round = 0; round < 200; ++round) {
        pool.parallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
            total.fetch_add(e - b);
        });
    }
    EXPECT_EQ(total.load(), 200 * 64);
}

TEST(ThreadPoolConfig, ResolveThreadsPrecedence)
{
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3);

    ASSERT_EQ(setenv("COMET_THREADS", "7", 1), 0);
    EXPECT_EQ(ThreadPool::resolveThreads(0), 7);
    // Explicit request wins over the environment.
    EXPECT_EQ(ThreadPool::resolveThreads(2), 2);

    // Garbage and out-of-range values fall through to hardware
    // concurrency (>= 1).
    ASSERT_EQ(setenv("COMET_THREADS", "not-a-number", 1), 0);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);
    ASSERT_EQ(setenv("COMET_THREADS", "-4", 1), 0);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);
    ASSERT_EQ(unsetenv("COMET_THREADS"), 0);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);
}

TEST(ThreadPoolConfig, ConfigureRebuildsGlobalPool)
{
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::global().threadCount(), 3);
    RuntimeConfig config;
    config.threads = 2;
    ThreadPool::configure(config);
    EXPECT_EQ(ThreadPool::global().threadCount(), 2);

    // Global free-function entry points run on the configured pool.
    std::atomic<int64_t> sum{0};
    parallelFor(0, 100, 9, [&](int64_t b, int64_t e) {
        sum.fetch_add(e - b);
    });
    EXPECT_EQ(sum.load(), 100);
}

} // namespace
} // namespace comet
