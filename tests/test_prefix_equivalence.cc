/**
 * @file
 * Cache-equivalence suite for the prefix cache: the cache must be a
 * pure optimization. With it on, every request produces token-for-
 * token the same stream as with it off — across seeds, under
 * watermark-driven eviction, across thread counts, and never across
 * tenant namespaces.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "comet/common/rng.h"
#include "comet/kvcache/kv_cache.h"
#include "comet/model/llm_config.h"
#include "comet/obs/metrics.h"
#include "comet/prefix/block_key.h"
#include "comet/quant/kv_quant.h"
#include "comet/runtime/thread_pool.h"
#include "comet/serve/batch_scheduler.h"
#include "comet/serve/engine.h"
#include "comet/server/loadgen.h"
#include "comet/server/server.h"

namespace comet {
namespace {

KvCacheConfig
kv4Config(bool prefix, double budget_blocks = 256.0)
{
    KvCacheConfig config;
    config.bits_per_value = 4.0;
    config.block_tokens = 16;
    config.enable_prefix_cache = prefix;
    // Express the budget in blocks for readability.
    PagedKvCache probe(LlmConfig::llama3_8b(), [] {
        KvCacheConfig c;
        c.bits_per_value = 4.0;
        c.block_tokens = 16;
        c.memory_budget_bytes = 64e6;
        return c;
    }());
    config.memory_budget_bytes = probe.blockBytes() * budget_blocks;
    return config;
}

std::vector<int32_t>
promptFromSeed(uint64_t seed, int64_t tokens)
{
    Rng rng(seed);
    std::vector<int32_t> ids;
    ids.reserve(static_cast<size_t>(tokens));
    for (int64_t i = 0; i < tokens; ++i) {
        ids.push_back(static_cast<int32_t>(rng.uniformInt(32000)));
    }
    return ids;
}

/** A seeded multi-tenant workload over shared prompt pools: per
 * request, a pool prompt (seed = pool id) optionally extended by a
 * unique suffix, so shared prefixes arise exactly as in real chat
 * traffic (same system prompt, divergent turns). */
std::vector<Request>
sharedPromptWorkload(uint64_t seed, int64_t count, bool with_keys)
{
    Rng rng(seed);
    std::vector<Request> requests;
    for (int64_t i = 0; i < count; ++i) {
        const uint64_t pool = rng.uniformInt(3);
        const int64_t shared_tokens = 64 + 16 * pool;
        const int64_t suffix_tokens = rng.uniformInt(24);
        auto prompt = promptFromSeed(pool, shared_tokens);
        const auto suffix =
            promptFromSeed(seed * 1000 + static_cast<uint64_t>(i) + 1,
                           suffix_tokens);
        prompt.insert(prompt.end(), suffix.begin(), suffix.end());

        Request request;
        request.id = i;
        request.prompt_tokens = static_cast<int64_t>(prompt.size());
        request.max_output_tokens = 4 + rng.uniformInt(12);
        if (with_keys) {
            prefix::KeySpace space;
            space.namespace_id = 0;
            space.bits_per_value = 4.0;
            space.block_tokens = 16;
            request.prefix_namespace = 0;
            request.prefix_block_keys = chainBlockKeys(space, prompt);
        }
        requests.push_back(request);
    }
    return requests;
}

/** Runs the workload to completion, recording the per-step token
 * stream of every request (the observable output) plus accounting. */
struct RunResult {
    /** request id -> generated-token count after every step it was
     * alive in; token-for-token identity = equality of these. */
    std::vector<std::string> streams;
    int64_t prefill_tokens_computed = 0;
    int64_t prefix_matched_tokens = 0;
    SchedulerCounters counters;
};

RunResult
runWorkload(const std::vector<Request> &requests, bool prefix_on,
            int64_t watermark = 0, double budget_blocks = 256.0)
{
    PagedKvCache cache(LlmConfig::llama3_8b(),
                       kv4Config(prefix_on, budget_blocks));
    BatchSchedulerConfig config;
    config.max_batch = 8;
    config.watermark_blocks = watermark;
    config.collect_retired = true;
    BatchScheduler scheduler(&cache, config);

    RunResult result;
    result.streams.resize(requests.size());
    size_t next = 0;
    int64_t steps = 0;
    while (next < requests.size() || !scheduler.idle()) {
        // Two submissions per step keeps admission waves overlapping.
        for (int i = 0; i < 2 && next < requests.size(); ++i) {
            scheduler.submit(requests[next++]);
        }
        const int64_t admitted = scheduler.admit();
        (void)admitted;
        for (const Request &request : scheduler.running()) {
            if (request.generated_tokens == 0) {
                // Freshly admitted: charge the prefill honestly —
                // grafted tokens are not computed.
                result.prefill_tokens_computed +=
                    request.contextTokens() -
                    request.prefix_matched_tokens;
            }
        }
        scheduler.step();
        for (const Request &request : scheduler.running()) {
            result.streams[static_cast<size_t>(request.id)] +=
                std::to_string(request.generated_tokens) + ",";
        }
        for (const Request &request : scheduler.drainRetired()) {
            result.streams[static_cast<size_t>(request.id)] +=
                requestStateName(request.state);
            result.streams[static_cast<size_t>(request.id)] +=
                "@" + std::to_string(request.generated_tokens);
        }
        if (++steps >= 100000) {
            ADD_FAILURE() << "workload did not converge";
            break;
        }
    }
    result.prefix_matched_tokens =
        scheduler.counters().prefix_matched_tokens;
    result.counters = scheduler.counters();
    return result;
}

// Void wrapper: ASSERT_* needs a void-returning context.
void
runWorkloadInto(const std::vector<Request> &requests, bool prefix_on,
                RunResult *out, int64_t watermark = 0,
                double budget_blocks = 256.0)
{
    *out = runWorkload(requests, prefix_on, watermark, budget_blocks);
}

TEST(PrefixEquivalenceTest, IdenticalStreamsAcrossSeeds)
{
    for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
        const auto keyed = sharedPromptWorkload(seed, 40, true);
        const auto plain = sharedPromptWorkload(seed, 40, false);
        RunResult on, off;
        runWorkloadInto(keyed, true, &on);
        runWorkloadInto(plain, false, &off);
        // Token-for-token identical observable output...
        EXPECT_EQ(on.streams, off.streams) << "seed " << seed;
        // ...while prefill computed measurably fewer tokens.
        EXPECT_GT(on.prefix_matched_tokens, 0) << "seed " << seed;
        EXPECT_EQ(on.prefill_tokens_computed + on.prefix_matched_tokens,
                  off.prefill_tokens_computed)
            << "seed " << seed;
    }
}

TEST(PrefixEquivalenceTest, CacheOnRunIsDeterministic)
{
    const auto requests = sharedPromptWorkload(9, 40, true);
    RunResult a, b;
    runWorkloadInto(requests, true, &a);
    runWorkloadInto(requests, true, &b);
    EXPECT_EQ(a.streams, b.streams);
    EXPECT_EQ(a.prefix_matched_tokens, b.prefix_matched_tokens);
    EXPECT_EQ(a.prefill_tokens_computed, b.prefill_tokens_computed);
}

TEST(PrefixEquivalenceTest, EvictionUnderWatermarkKeepsStreamsIdentical)
{
    // A pool small enough that cached prefixes must be evicted to
    // admit live traffic, plus a nonzero watermark: the cache yields
    // memory under pressure and outputs still match cache-off.
    for (uint64_t seed : {3u, 11u}) {
        const auto keyed = sharedPromptWorkload(seed, 48, true);
        const auto plain = sharedPromptWorkload(seed, 48, false);
        RunResult on, off;
        runWorkloadInto(keyed, true, &on, /*watermark=*/4,
                        /*budget_blocks=*/48.0);
        runWorkloadInto(plain, false, &off, /*watermark=*/4,
                        /*budget_blocks=*/48.0);
        EXPECT_EQ(on.streams, off.streams) << "seed " << seed;
    }
}

TEST(PrefixEquivalenceTest, EvictionReclaimsCachedBlocksUnderPressure)
{
    PagedKvCache cache(LlmConfig::llama3_8b(), kv4Config(true, 32.0));
    prefix::KeySpace space;
    space.bits_per_value = 4.0;
    const auto prompt = promptFromSeed(1, 16 * 20);
    const auto keys = chainBlockKeys(space, prompt);
    ASSERT_TRUE(cache
                    .addSequenceWithPrefix(1, 16 * 20, 0, keys)
                    .isOk());
    cache.removeSequence(1);
    // The sequence is gone but its full blocks stay cached...
    EXPECT_EQ(cache.prefixOwnedBlocks(), 20);
    EXPECT_LT(cache.freeBlocks(), 32);
    EXPECT_EQ(cache.availableBlocks(), 32);
    // ...and a prompt needing the whole pool still admits: the cache
    // evicts itself rather than block live traffic.
    ASSERT_TRUE(cache.addSequence(2, 16 * 30).isOk());
    EXPECT_EQ(cache.prefixOwnedBlocks(), 32 - 30);
}

TEST(PrefixEquivalenceTest, NoHitsAcrossTenantNamespaces)
{
    PagedKvCache cache(LlmConfig::llama3_8b(), kv4Config(true));
    const auto prompt = promptFromSeed(5, 128);
    prefix::KeySpace tenant_a;
    tenant_a.bits_per_value = 4.0;
    tenant_a.namespace_id = 0;
    prefix::KeySpace tenant_b = tenant_a;
    tenant_b.namespace_id = 1;

    // Tenant A warms the cache with the shared prompt.
    auto first = cache.addSequenceWithPrefix(
        1, 128, 0, chainBlockKeys(tenant_a, prompt));
    ASSERT_TRUE(first.isOk());
    EXPECT_EQ(first.value(), 0); // cold cache
    EXPECT_GT(cache.prefixOwnedBlocks(), 0);

    // Tenant B, same prompt content, different namespace: zero hit —
    // the key chains are disjoint, so there is not even a shared
    // index path whose timing could leak A's working set.
    auto cross = cache.addSequenceWithPrefix(
        2, 128, 1, chainBlockKeys(tenant_b, prompt));
    ASSERT_TRUE(cross.isOk());
    EXPECT_EQ(cross.value(), 0);
    EXPECT_EQ(cache.prefixStats().hits, 0);

    // Tenant A again: full-hit (minus the final recompute block).
    auto warm = cache.addSequenceWithPrefix(
        3, 128, 0, chainBlockKeys(tenant_a, prompt));
    ASSERT_TRUE(warm.isOk());
    EXPECT_EQ(warm.value(), 128 - 16);
}

// ---- End-to-end: the online server over a shared-prompt workload ----

server::LoadgenConfig
sharedPoolLoadgen(uint64_t seed, bool opt_in)
{
    server::LoadgenConfig workload;
    workload.seed = seed;
    workload.clients = 4;
    server::LoadgenTenant tenant;
    tenant.admission.name = "a";
    tenant.admission.prefix_caching = opt_in;
    tenant.arrival_rate_per_s = 100.0;
    tenant.requests = 24;
    tenant.prompt_min = 64;
    tenant.prompt_max = 128;
    tenant.output_min = 2;
    tenant.output_max = 12;
    tenant.shared_prompt_pools = 2;
    server::LoadgenTenant other = tenant;
    other.admission.name = "b";
    workload.tenants = {tenant, other};
    return workload;
}

/** One full loadgen session against a fresh server. */
server::LoadgenReport
runServerWorkload(const server::LoadgenConfig &workload,
                  bool prefix_on, server::ServerStats *stats)
{
    obs::MetricsRegistry::global().reset();
    EngineConfig engine_config;
    engine_config.model = LlmConfig::llama3_8b();
    engine_config.mode = ServingMode::kCometW4AxKv4;
    engine_config.input_tokens = 128;
    engine_config.output_tokens = 32;
    const ServingEngine engine(
        engineConfigWithKvBlocks(engine_config, 1024));
    server::ServerConfig config;
    config.tenants = server::loadgenTenants(workload);
    config.max_batch = 8;
    config.enable_prefix_cache = prefix_on;
    server::Server server(&engine, config);
    const server::LoadgenReport report =
        server::runLoadgen(&server, workload);
    *stats = server.stats();
    server.stop();
    return report;
}

TEST(PrefixEquivalenceTest, ServerStreamsMatchWithCacheOnAndOff)
{
    const server::LoadgenConfig workload = sharedPoolLoadgen(21, true);
    server::ServerStats on_stats, off_stats;
    const server::LoadgenReport on =
        runServerWorkload(workload, true, &on_stats);
    const server::LoadgenReport off =
        runServerWorkload(workload, false, &off_stats);

    // The cache genuinely worked end to end...
    EXPECT_GT(on_stats.prefix_hits, 0);
    EXPECT_GT(on_stats.prefix_matched_tokens, 0);
    EXPECT_GT(on_stats.prefix_bytes_saved, 0);
    EXPECT_EQ(off_stats.prefix_hits, 0);
    // ...and every request's observable output is unchanged by it:
    // same terminal, token for token.
    ASSERT_EQ(on.outcomes.size(), off.outcomes.size());
    for (size_t i = 0; i < on.outcomes.size(); ++i) {
        EXPECT_EQ(on.outcomes[i].terminal, off.outcomes[i].terminal)
            << "request " << i;
        EXPECT_EQ(on.outcomes[i].tokens, off.outcomes[i].tokens)
            << "request " << i;
    }
    EXPECT_EQ(on.completed, off.completed);
    EXPECT_EQ(on.tokens, off.tokens);
}

TEST(PrefixEquivalenceTest, ServerPrefixRunsBitIdenticalAcrossThreads)
{
    const server::LoadgenConfig workload = sharedPoolLoadgen(22, true);
    server::ServerStats serial_stats, pooled_stats;
    ThreadPool::setGlobalThreads(1);
    const server::LoadgenReport serial =
        runServerWorkload(workload, true, &serial_stats);
    ThreadPool::setGlobalThreads(4);
    const server::LoadgenReport pooled =
        runServerWorkload(workload, true, &pooled_stats);
    ThreadPool::setGlobalThreads(0);

    EXPECT_GT(serial_stats.prefix_matched_tokens, 0);
    EXPECT_EQ(serial_stats.prefix_hits, pooled_stats.prefix_hits);
    EXPECT_EQ(serial_stats.prefix_matched_tokens,
              pooled_stats.prefix_matched_tokens);
    EXPECT_EQ(serial_stats.prefix_blocks_evicted,
              pooled_stats.prefix_blocks_evicted);
    // Full report identity, timings included.
    EXPECT_EQ(server::renderLoadgenReport(serial),
              server::renderLoadgenReport(pooled));
    ASSERT_EQ(serial.outcomes.size(), pooled.outcomes.size());
    for (size_t i = 0; i < serial.outcomes.size(); ++i) {
        EXPECT_EQ(serial.outcomes[i].tokens,
                  pooled.outcomes[i].tokens);
        EXPECT_EQ(serial.outcomes[i].first_token_us,
                  pooled.outcomes[i].first_token_us);
        EXPECT_EQ(serial.outcomes[i].last_token_us,
                  pooled.outcomes[i].last_token_us);
    }
}

TEST(PrefixEquivalenceTest, OptedOutTenantsNeverTouchTheCache)
{
    // Server cache on, prompts carried — but no tenant opted in:
    // the cache must see zero traffic (opt-in regression guard).
    const server::LoadgenConfig workload =
        sharedPoolLoadgen(23, false);
    server::ServerStats stats;
    runServerWorkload(workload, true, &stats);
    EXPECT_EQ(stats.prefix_hits, 0);
    EXPECT_EQ(stats.prefix_misses, 0);
    EXPECT_EQ(stats.prefix_matched_tokens, 0);
}

TEST(PrefixEquivalenceTest, QuantizerIsDeterministicPerContent)
{
    // The keying-by-content argument rests on the KV quantizer being
    // a pure function of the token group: same values in, bit-same
    // quantized page out. Pin that here, next to the cache that
    // depends on it.
    Tensor kv(64, 8);
    Rng rng(77);
    for (int64_t i = 0; i < kv.numel(); ++i) {
        kv.data()[i] = static_cast<float>(rng.uniform()) * 2.0f - 1.0f;
    }
    KvCacheQuantizer quantizer;
    const QuantizedKv a = quantizer.quantize(kv);
    const QuantizedKv b = quantizer.quantize(kv);
    ASSERT_EQ(a.data.rows(), b.data.rows());
    ASSERT_EQ(a.data.cols(), b.data.cols());
    for (int64_t i = 0; i < a.data.rows() * a.data.cols(); ++i) {
        ASSERT_EQ(a.data.data()[i], b.data.data()[i]) << "byte " << i;
    }
    ASSERT_EQ(a.params.size(), b.params.size());
    for (size_t i = 0; i < a.params.size(); ++i) {
        EXPECT_EQ(a.params[i].scale, b.params[i].scale) << i;
        EXPECT_EQ(a.params[i].zero_point, b.params[i].zero_point) << i;
    }
}

} // namespace
} // namespace comet
