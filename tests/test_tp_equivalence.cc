/**
 * @file
 * Tensor-parallel equivalence suite: sharding is a latency
 * optimization, never a behaviour change. With the KV pool pinned to
 * the same block count, a TP=N engine must drive the scheduler — and
 * the full online server — through token-for-token the same streams
 * as TP=1, for every degree the model admits and at any
 * COMET_THREADS. (Step *latencies* legitimately differ: that is the
 * whole point of TP. What must not move is which request gets which
 * token when, in scheduler order.)
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "comet/common/rng.h"
#include "comet/kvcache/kv_cache.h"
#include "comet/model/llm_config.h"
#include "comet/obs/metrics.h"
#include "comet/runtime/thread_pool.h"
#include "comet/serve/batch_scheduler.h"
#include "comet/serve/engine.h"
#include "comet/server/loadgen.h"
#include "comet/server/server.h"

namespace comet {
namespace {

EngineConfig
tpEngineConfig(int tp_degree, int64_t blocks = 256)
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 128;
    config.output_tokens = 32;
    config.tensor_parallel = tp_degree;
    return engineConfigWithKvBlocks(config, blocks);
}

/** A seeded workload with varied prompt/output shapes. */
std::vector<Request>
workloadFromSeed(uint64_t seed, int64_t count)
{
    Rng rng(seed);
    std::vector<Request> requests;
    for (int64_t i = 0; i < count; ++i) {
        Request request;
        request.id = i;
        request.prompt_tokens =
            64 + static_cast<int64_t>(rng.uniformInt(96));
        request.max_output_tokens =
            4 + static_cast<int64_t>(rng.uniformInt(12));
        requests.push_back(request);
    }
    return requests;
}

/** Runs the workload through a scheduler whose cache is sized from
 * the engine's shard-aware KV pool, recording every request's
 * per-step token stream and terminal. */
std::vector<std::string>
runSchedulerWorkload(const std::vector<Request> &requests,
                     const ServingEngine &engine)
{
    KvCacheConfig cache_config;
    cache_config.bits_per_value =
        servingPrecision(engine.config().mode).kv_bits;
    cache_config.block_tokens = engine.config().kv_block_tokens;
    cache_config.memory_budget_bytes = engine.kvPoolBytes();
    PagedKvCache cache(engine.config().model, cache_config);
    BatchSchedulerConfig config;
    config.max_batch = 8;
    config.collect_retired = true;
    BatchScheduler scheduler(&cache, config);

    std::vector<std::string> streams(requests.size());
    size_t next = 0;
    int64_t steps = 0;
    while (next < requests.size() || !scheduler.idle()) {
        for (int i = 0; i < 2 && next < requests.size(); ++i)
            scheduler.submit(requests[next++]);
        scheduler.admit();
        scheduler.step();
        for (const Request &request : scheduler.running()) {
            streams[static_cast<size_t>(request.id)] +=
                std::to_string(request.generated_tokens) + ",";
        }
        for (const Request &request : scheduler.drainRetired()) {
            streams[static_cast<size_t>(request.id)] +=
                requestStateName(request.state);
            streams[static_cast<size_t>(request.id)] +=
                "@" + std::to_string(request.generated_tokens);
        }
        if (++steps >= 100000) {
            ADD_FAILURE() << "workload did not converge";
            break;
        }
    }
    return streams;
}

TEST(TpEquivalenceTest, SchedulerStreamsIdenticalAcrossDegrees)
{
    for (uint64_t seed : {1u, 7u, 42u}) {
        const auto requests = workloadFromSeed(seed, 40);
        const ServingEngine baseline(tpEngineConfig(1));
        const auto expected =
            runSchedulerWorkload(requests, baseline);
        for (int tp : {2, 4, 8}) {
            const ServingEngine engine(tpEngineConfig(tp));
            EXPECT_EQ(runSchedulerWorkload(requests, engine),
                      expected)
                << "seed " << seed << " tp " << tp;
        }
    }
}

TEST(TpEquivalenceTest, SmallPoolPreemptionPatternsAlsoMatch)
{
    // 48 blocks: admission, preemption and re-prefill all fire. The
    // shard-aware accounting must keep even the pathological
    // schedules identical.
    const auto requests = workloadFromSeed(11, 48);
    const ServingEngine baseline(tpEngineConfig(1, 48));
    const auto expected = runSchedulerWorkload(requests, baseline);
    for (int tp : {2, 8}) {
        const ServingEngine engine(tpEngineConfig(tp, 48));
        EXPECT_EQ(runSchedulerWorkload(requests, engine), expected)
            << "tp " << tp;
    }
}

// ---- End-to-end: the online server ----

server::LoadgenConfig
serverWorkload(uint64_t seed)
{
    server::LoadgenConfig workload;
    workload.seed = seed;
    workload.clients = 4;
    server::LoadgenTenant tenant;
    tenant.admission.name = "a";
    tenant.arrival_rate_per_s = 100.0;
    tenant.requests = 24;
    tenant.prompt_min = 64;
    tenant.prompt_max = 128;
    tenant.output_min = 2;
    tenant.output_max = 12;
    server::LoadgenTenant other = tenant;
    other.admission.name = "b";
    workload.tenants = {tenant, other};
    return workload;
}

server::LoadgenReport
runServerWorkload(const server::LoadgenConfig &workload,
                  int tp_degree)
{
    obs::MetricsRegistry::global().reset();
    const ServingEngine engine(tpEngineConfig(tp_degree, 1024));
    server::ServerConfig config;
    config.tenants = server::loadgenTenants(workload);
    config.max_batch = 8;
    server::Server server(&engine, config);
    const server::LoadgenReport report =
        server::runLoadgen(&server, workload);
    server.stop();
    return report;
}

TEST(TpEquivalenceTest, ServerOutcomesIdenticalAcrossDegrees)
{
    const server::LoadgenConfig workload = serverWorkload(21);
    const server::LoadgenReport baseline =
        runServerWorkload(workload, 1);
    ASSERT_GT(baseline.completed, 0);
    for (int tp : {2, 4, 8}) {
        const server::LoadgenReport report =
            runServerWorkload(workload, tp);
        // Timings shift (that is TP working); verdicts, terminals
        // and token counts must not.
        ASSERT_EQ(report.outcomes.size(), baseline.outcomes.size())
            << "tp " << tp;
        for (size_t i = 0; i < report.outcomes.size(); ++i) {
            EXPECT_EQ(report.outcomes[i].terminal,
                      baseline.outcomes[i].terminal)
                << "tp " << tp << " request " << i;
            EXPECT_EQ(report.outcomes[i].tokens,
                      baseline.outcomes[i].tokens)
                << "tp " << tp << " request " << i;
        }
        EXPECT_EQ(report.completed, baseline.completed);
        EXPECT_EQ(report.tokens, baseline.tokens);
    }
}

TEST(TpEquivalenceTest, ShardedServerBitIdenticalAcrossThreads)
{
    // At a fixed degree the whole report — timings included — must
    // replay bit-identically at any pool size.
    const server::LoadgenConfig workload = serverWorkload(22);
    ThreadPool::setGlobalThreads(1);
    const server::LoadgenReport serial =
        runServerWorkload(workload, 4);
    ThreadPool::setGlobalThreads(4);
    const server::LoadgenReport pooled =
        runServerWorkload(workload, 4);
    ThreadPool::setGlobalThreads(0);

    EXPECT_EQ(server::renderLoadgenReport(serial),
              server::renderLoadgenReport(pooled));
    ASSERT_EQ(serial.outcomes.size(), pooled.outcomes.size());
    for (size_t i = 0; i < serial.outcomes.size(); ++i) {
        EXPECT_EQ(serial.outcomes[i].tokens,
                  pooled.outcomes[i].tokens);
        EXPECT_EQ(serial.outcomes[i].first_token_us,
                  pooled.outcomes[i].first_token_us);
        EXPECT_EQ(serial.outcomes[i].last_token_us,
                  pooled.outcomes[i].last_token_us);
    }
}

TEST(TpEquivalenceTest, HigherDegreesActuallyChangeLatency)
{
    // Sanity that the equivalence above is not vacuous: TP really
    // does alter the latency surface it is allowed to alter.
    const ServingEngine one(tpEngineConfig(1, 1024));
    const ServingEngine four(tpEngineConfig(4, 1024));
    EXPECT_NE(one.decodeStepLatencyUs(8, 256),
              four.decodeStepLatencyUs(8, 256));
    EXPECT_GT(four.allReduceLatencyUs(8), 0.0);
    EXPECT_DOUBLE_EQ(one.allReduceLatencyUs(8), 0.0);
}

} // namespace
} // namespace comet
