/**
 * @file
 * Unit tests for Shape and Tensor.
 */
#include <gtest/gtest.h>

#include "comet/tensor/tensor.h"

namespace comet {
namespace {

TEST(Shape, NumelAndRank)
{
    const Shape shape({4, 128});
    EXPECT_EQ(shape.rank(), 2);
    EXPECT_EQ(shape.dim(0), 4);
    EXPECT_EQ(shape.dim(1), 128);
    EXPECT_EQ(shape.numel(), 512);
}

TEST(Shape, ToString)
{
    EXPECT_EQ(Shape({4, 128}).toString(), "[4, 128]");
}

TEST(Shape, Equality)
{
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

TEST(ShapeDeathTest, NonPositiveDimAborts)
{
    EXPECT_DEATH(Shape({0, 4}), "positive");
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t(3, 5);
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, RowMajor2dIndexing)
{
    Tensor t(2, 3);
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t[1 * 3 + 2], 7.0f);
    EXPECT_EQ(t.rows(), 2);
    EXPECT_EQ(t.cols(), 3);
}

TEST(Tensor, RowMajor3dIndexing)
{
    Tensor t(Shape({2, 3, 4}));
    t.at(1, 2, 3) = 9.0f;
    EXPECT_EQ(t[(1 * 3 + 2) * 4 + 3], 9.0f);
}

TEST(Tensor, FillAndAbsMax)
{
    Tensor t(2, 2);
    t.fill(-3.0f);
    t.at(0, 1) = 5.0f;
    EXPECT_EQ(t.absMax(), 5.0f);
}

TEST(Tensor, MeanSquare)
{
    Tensor t(1, 4);
    t.at(0, 0) = 2.0f;
    t.at(0, 1) = -2.0f;
    EXPECT_DOUBLE_EQ(t.meanSquare(), (4.0 + 4.0) / 4.0);
}

TEST(TensorDeathTest, OutOfBoundsAborts)
{
    Tensor t(2, 2);
    EXPECT_DEATH(t.at(2, 0), "CHECK failed");
    EXPECT_DEATH(t.at(0, -1), "CHECK failed");
}

TEST(TensorErrors, MseAndMaxAbs)
{
    Tensor a(1, 2), b(1, 2);
    a.at(0, 0) = 1.0f;
    a.at(0, 1) = 2.0f;
    b.at(0, 0) = 1.5f;
    b.at(0, 1) = 2.0f;
    EXPECT_DOUBLE_EQ(meanSquaredError(a, b), 0.25 / 2.0);
    EXPECT_DOUBLE_EQ(maxAbsError(a, b), 0.5);
}

TEST(TensorErrors, RelativeErrorOfIdenticalIsZero)
{
    Tensor a(2, 2);
    a.fill(3.0f);
    EXPECT_DOUBLE_EQ(relativeError(a, a), 0.0);
}

TEST(TensorErrors, RelativeErrorScalesCorrectly)
{
    Tensor a(1, 1), b(1, 1);
    a.at(0, 0) = 10.0f;
    b.at(0, 0) = 9.0f;
    EXPECT_NEAR(relativeError(a, b), 0.1, 1e-6);
}

} // namespace
} // namespace comet
