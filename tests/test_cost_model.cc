/**
 * @file
 * Unit tests for the GEMM cost model — the paper's qualitative
 * performance claims must hold as model properties.
 */
#include <gtest/gtest.h>

#include "comet/gpusim/cost_model.h"
#include "comet/model/llm_config.h"

namespace comet {
namespace {

class CostModelTest : public ::testing::Test
{
  protected:
    GemmCostModel model_{GpuSpec::a100Sxm480G()};
};

TEST_F(CostModelTest, AllKernelsHavePositiveLatency)
{
    const GemmShape shape{64, 4096, 4096};
    for (GemmKernelKind kind :
         {GemmKernelKind::kCublasW16A16, GemmKernelKind::kTrtLlmW4A16,
          GemmKernelKind::kTrtLlmW8A8, GemmKernelKind::kQserveW4A8,
          GemmKernelKind::kCometW4Ax, GemmKernelKind::kOracleW4A4}) {
        EXPECT_GT(model_.estimate(shape, kind).total_us, 0.0)
            << gemmKernelKindName(kind);
    }
}

TEST_F(CostModelTest, CometBeatsCublasEverywhere)
{
    for (int64_t m : {2, 8, 16, 64, 256}) {
        const GemmShape shape{m, 8192, 8192};
        EXPECT_LT(
            model_.estimate(shape, GemmKernelKind::kCometW4Ax)
                .total_us,
            model_.estimate(shape, GemmKernelKind::kCublasW16A16)
                .total_us)
            << "batch " << m;
    }
}

TEST_F(CostModelTest, CometGainGrowsWithBatch)
{
    const auto speedup = [&](int64_t m) {
        const GemmShape shape{m, 8192, 8192};
        return model_.estimate(shape, GemmKernelKind::kCublasW16A16)
                   .total_us /
               model_.estimate(shape, GemmKernelKind::kCometW4Ax)
                   .total_us;
    };
    EXPECT_GT(speedup(256), speedup(8));
    // Paper headline numbers: ~1.5x small batch, ~2.9x large batch.
    EXPECT_GT(speedup(256), 2.0);
    EXPECT_LT(speedup(4), 3.0);
}

TEST_F(CostModelTest, W4A16GainShrinksWithBatch)
{
    const auto speedup = [&](int64_t m) {
        const GemmShape shape{m, 13824, 5120};
        return model_.estimate(shape, GemmKernelKind::kCublasW16A16)
                   .total_us /
               model_.estimate(shape, GemmKernelKind::kTrtLlmW4A16)
                   .total_us;
    };
    // Weight-only quantization helps memory-bound small batches much
    // more than compute-bound large ones (paper Section 1).
    EXPECT_GT(speedup(2), speedup(256));
}

TEST_F(CostModelTest, W8A8GainGrowsWithBatch)
{
    const auto speedup = [&](int64_t m) {
        const GemmShape shape{m, 13824, 5120};
        return model_.estimate(shape, GemmKernelKind::kCublasW16A16)
                   .total_us /
               model_.estimate(shape, GemmKernelKind::kTrtLlmW8A8)
                   .total_us;
    };
    EXPECT_GT(speedup(256), speedup(2));
}

TEST_F(CostModelTest, OracleW4A4IsFastestButNotTwiceW4A8)
{
    const GemmShape shape{256, 8192, 8192};
    const double oracle =
        model_.estimate(shape, GemmKernelKind::kOracleW4A4).total_us;
    const double comet =
        model_.estimate(shape, GemmKernelKind::kCometW4Ax).total_us;
    const double qserve =
        model_.estimate(shape, GemmKernelKind::kQserveW4A8).total_us;
    EXPECT_LT(oracle, comet);
    EXPECT_LT(comet, qserve);
    // Paper: even an Oracle W4A4 kernel cannot reach 2x over W4A8.
    EXPECT_LT(qserve / oracle, 2.0);
}

TEST_F(CostModelTest, CometWithinOracleEnvelope)
{
    // Paper: COMET-W4Ax reaches 92.7% - 97.8% of the Oracle W4A4
    // kernel. Our model lands in the same neighborhood (the INT8
    // quarter of the tiles is inherently slower); require at least
    // 80% to keep the qualitative claim pinned.
    for (int64_t m : {16, 64, 256}) {
        const GemmShape shape{m, 8192, 8192};
        const double oracle =
            model_.estimate(shape, GemmKernelKind::kOracleW4A4)
                .total_us;
        const double comet =
            model_.estimate(shape, GemmKernelKind::kCometW4Ax)
                .total_us;
        EXPECT_GT(oracle / comet, 0.80) << m;
        EXPECT_LE(oracle / comet, 1.0 + 1e-9) << m;
    }
}

TEST_F(CostModelTest, PipelineAblationSlowsKernel)
{
    const GemmShape shape{64, 8192, 8192};
    CometKernelFeatures no_pipe;
    no_pipe.software_pipeline = false;
    EXPECT_GT(model_
                  .estimate(shape, GemmKernelKind::kCometW4Ax,
                            no_pipe)
                  .total_us,
              model_.estimate(shape, GemmKernelKind::kCometW4Ax)
                  .total_us);
}

TEST_F(CostModelTest, InterleaveAblationSlowsKernel)
{
    const GemmShape shape{64, 8192, 8192};
    CometKernelFeatures no_interleave;
    no_interleave.weight_interleaving = false;
    EXPECT_GT(model_
                  .estimate(shape, GemmKernelKind::kCometW4Ax,
                            no_interleave)
                  .total_us,
              model_.estimate(shape, GemmKernelKind::kCometW4Ax)
                  .total_us);
}

TEST_F(CostModelTest, FastConversionAblationSlowsKernel)
{
    const GemmShape shape{64, 8192, 8192};
    CometKernelFeatures no_fast;
    no_fast.fast_conversion = false;
    EXPECT_GT(model_
                  .estimate(shape, GemmKernelKind::kCometW4Ax,
                            no_fast)
                  .total_us,
              model_.estimate(shape, GemmKernelKind::kCometW4Ax)
                  .total_us);
}

TEST_F(CostModelTest, SchedulingLadderMonotone)
{
    const GemmShape shape{256, 8192, 8192};
    double previous = 1e30;
    for (SchedulingStrategy strategy :
         {SchedulingStrategy::kNaiveSync,
          SchedulingStrategy::kBarrierMinimized,
          SchedulingStrategy::kTileRemapping,
          SchedulingStrategy::kTaskStealing}) {
        CometKernelFeatures features;
        features.scheduling = strategy;
        const double t =
            model_.estimate(shape, GemmKernelKind::kCometW4Ax,
                            features)
                .total_us;
        EXPECT_LE(t, previous + 1e-9)
            << schedulingStrategyName(strategy);
        previous = t;
    }
}

TEST_F(CostModelTest, HigherW4A4FractionIsFaster)
{
    const GemmShape shape{128, 8192, 8192};
    CometKernelFeatures lo;
    lo.w4a4_fraction = 0.5;
    CometKernelFeatures hi;
    hi.w4a4_fraction = 1.0;
    EXPECT_LT(
        model_.estimate(shape, GemmKernelKind::kCometW4Ax, hi)
            .total_us,
        model_.estimate(shape, GemmKernelKind::kCometW4Ax, lo)
            .total_us);
}

TEST_F(CostModelTest, LatencyMonotoneInShape)
{
    const double small =
        model_.estimate({16, 4096, 4096},
                        GemmKernelKind::kCometW4Ax)
            .total_us;
    const double large =
        model_.estimate({16, 8192, 8192},
                        GemmKernelKind::kCometW4Ax)
            .total_us;
    EXPECT_GT(large, small);
}

TEST_F(CostModelTest, BreakdownFieldsConsistent)
{
    const GemmShape shape{64, 4096, 4096};
    const KernelCost cost =
        model_.estimate(shape, GemmKernelKind::kCometW4Ax);
    EXPECT_GT(cost.memory_us, 0.0);
    EXPECT_GT(cost.compute_us, 0.0);
    EXPECT_GE(cost.total_us, cost.launch_us);
    EXPECT_GT(cost.sm_utilization, 0.0);
    EXPECT_LE(cost.sm_utilization, 1.0 + 1e-9);
}

TEST_F(CostModelTest, PermutationIsATinyRuntimeFraction)
{
    // Paper Section 3.2: channel permutation accounts for ~0.7% of
    // the overall runtime.
    for (int64_t m : {16, 256}) {
        const GemmShape shape{m, 8192, 8192};
        const KernelCost cost =
            model_.estimate(shape, GemmKernelKind::kCometW4Ax);
        EXPECT_LT(cost.convert_us / cost.total_us, 0.02)
            << "batch " << m;
    }
}

TEST_F(CostModelTest, KernelKindNames)
{
    EXPECT_STREQ(gemmKernelKindName(GemmKernelKind::kCublasW16A16),
                 "cuBLAS-W16A16");
    EXPECT_STREQ(gemmKernelKindName(GemmKernelKind::kCometW4Ax),
                 "COMET-W4Ax");
}

TEST(CostModelDeathTest, RejectsEmptyShape)
{
    GemmCostModel model(GpuSpec::a100Sxm480G());
    EXPECT_DEATH(
        model.estimate({0, 10, 10}, GemmKernelKind::kCublasW16A16),
        "CHECK failed");
}

/** Sweep every paper model x batch: invariants that must hold for
 * any shape the serving engine can generate. */
struct ModelBatch {
    int model_index;
    int64_t batch;
};

class CostModelModelSweep
    : public ::testing::TestWithParam<ModelBatch> {};

TEST_P(CostModelModelSweep, InvariantsHoldEverywhere)
{
    const GemmCostModel model(GpuSpec::a100Sxm480G());
    const auto configs = LlmConfig::paperModels();
    const LlmConfig &llm =
        configs[static_cast<size_t>(GetParam().model_index)];
    const GemmShape shape{GetParam().batch, llm.intermediate_size,
                          llm.hidden_size};
    double previous = 0.0;
    for (GemmKernelKind kind :
         {GemmKernelKind::kOracleW4A4, GemmKernelKind::kCometW4Ax,
          GemmKernelKind::kQserveW4A8, GemmKernelKind::kTrtLlmW8A8,
          GemmKernelKind::kCublasW16A16}) {
        const KernelCost cost = model.estimate(shape, kind);
        EXPECT_GT(cost.total_us, 0.0) << gemmKernelKindName(kind);
        EXPECT_GE(cost.total_us, cost.launch_us);
        // Lower-precision kernels never lose to cuBLAS FP16 in this
        // ordering (each step up the list adds precision/cost).
        if (kind == GemmKernelKind::kCublasW16A16) {
            EXPECT_GE(cost.total_us, previous - 1e-9);
        }
        previous = cost.total_us;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CostModelModelSweep,
    ::testing::Values(ModelBatch{0, 4}, ModelBatch{2, 16},
                      ModelBatch{5, 64}, ModelBatch{6, 128},
                      ModelBatch{10, 256}));

} // namespace
} // namespace comet

