/**
 * @file
 * Unit tests for the KV-cache quantizer.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/common/rng.h"
#include "comet/quant/kv_quant.h"

namespace comet {
namespace {

Tensor
makeKv(int64_t tokens, int64_t channels, uint64_t seed)
{
    Rng rng(seed);
    Tensor kv(tokens, channels);
    for (int64_t t = 0; t < tokens; ++t) {
        for (int64_t c = 0; c < channels; ++c) {
            // Per-channel offsets emulate the post-RoPE structure: V
            // has mild channel-dependent means.
            kv.at(t, c) = static_cast<float>(
                rng.gaussian(0.2 * static_cast<double>(c % 5), 1.0));
        }
    }
    return kv;
}

TEST(KvQuant, FakeQuantErrorBoundedPerGroup)
{
    const Tensor kv = makeKv(100, 16, 1);
    KvQuantConfig config;
    config.bits = 4;
    config.group_size = 32;
    const KvCacheQuantizer quantizer(config);
    const Tensor q = quantizer.fakeQuantize(kv);
    // Per (channel, group) the error is bounded by the group's scale.
    for (int64_t c = 0; c < 16; ++c) {
        for (int64_t g0 = 0; g0 < 100; g0 += 32) {
            const int64_t g1 = std::min<int64_t>(g0 + 32, 100);
            float min_v = kv.at(g0, c), max_v = kv.at(g0, c);
            for (int64_t t = g0; t < g1; ++t) {
                min_v = std::min(min_v, kv.at(t, c));
                max_v = std::max(max_v, kv.at(t, c));
            }
            const float scale = (max_v - min_v) / 15.0f;
            for (int64_t t = g0; t < g1; ++t) {
                EXPECT_LE(std::fabs(q.at(t, c) - kv.at(t, c)),
                          scale + 1e-5f);
            }
        }
    }
}

TEST(KvQuant, AsymmetricBeatsSymmetricOnShiftedData)
{
    // V-cache values with a strong positive mean favor affine
    // quantization.
    Rng rng(2);
    Tensor kv(64, 8);
    for (int64_t i = 0; i < kv.numel(); ++i)
        kv[i] = static_cast<float>(rng.gaussian(3.0, 0.5));

    KvQuantConfig asym{4, 64, true};
    KvQuantConfig sym{4, 64, false};
    const Tensor qa = KvCacheQuantizer(asym).fakeQuantize(kv);
    const Tensor qs = KvCacheQuantizer(sym).fakeQuantize(kv);
    EXPECT_LT(meanSquaredError(kv, qa), meanSquaredError(kv, qs));
}

TEST(KvQuant, PackedMatchesFakeQuant)
{
    const Tensor kv = makeKv(70, 12, 3); // partial trailing group
    const KvCacheQuantizer quantizer(KvQuantConfig{4, 32, true});
    const QuantizedKv packed = quantizer.quantize(kv);
    EXPECT_EQ(packed.numGroups(), 3);
    const Tensor deq = quantizer.dequantize(packed);
    const Tensor fake = quantizer.fakeQuantize(kv);
    EXPECT_LT(maxAbsError(deq, fake), 1e-5);
}

TEST(KvQuant, PackedValuesInRange)
{
    const Tensor kv = makeKv(32, 8, 4);
    const KvCacheQuantizer quantizer(KvQuantConfig{4, 16, true});
    const QuantizedKv packed = quantizer.quantize(kv);
    for (int64_t t = 0; t < 32; ++t) {
        for (int64_t c = 0; c < 8; ++c) {
            EXPECT_GE(packed.data.get(t, c), -8);
            EXPECT_LE(packed.data.get(t, c), 7);
        }
    }
}

TEST(KvQuant, ChannelwiseIsolatesHotChannel)
{
    // One hot channel must not destroy the precision of others —
    // the reason the paper uses channel-wise KV quantization.
    Rng rng(5);
    Tensor kv(64, 4);
    for (int64_t t = 0; t < 64; ++t) {
        for (int64_t c = 0; c < 4; ++c)
            kv.at(t, c) = static_cast<float>(rng.gaussian(0, 1));
        kv.at(t, 0) *= 100.0f;
    }
    const KvCacheQuantizer quantizer(KvQuantConfig{4, 64, true});
    const Tensor q = quantizer.fakeQuantize(kv);
    double cold_mse = 0.0;
    for (int64_t t = 0; t < 64; ++t) {
        for (int64_t c = 1; c < 4; ++c) {
            const double d = q.at(t, c) - kv.at(t, c);
            cold_mse += d * d;
        }
    }
    cold_mse /= 64.0 * 3.0;
    EXPECT_LT(cold_mse, 0.05); // cold channels keep ~INT4 fidelity
}

TEST(KvQuant, HigherBitsLowerError)
{
    const Tensor kv = makeKv(128, 16, 6);
    const Tensor q4 =
        KvCacheQuantizer(KvQuantConfig{4, 64, true}).fakeQuantize(kv);
    const Tensor q8 =
        KvCacheQuantizer(KvQuantConfig{8, 64, true}).fakeQuantize(kv);
    EXPECT_LT(meanSquaredError(kv, q8),
              meanSquaredError(kv, q4) / 10.0);
}

TEST(KvQuantDeathTest, InvalidConfigRejected)
{
    EXPECT_DEATH(KvCacheQuantizer(KvQuantConfig{1, 64, true}),
                 "CHECK failed");
    EXPECT_DEATH(KvCacheQuantizer(KvQuantConfig{4, 0, true}),
                 "CHECK failed");
}

/** Sweep: smaller groups track drifting statistics better. */
class KvGroupSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(KvGroupSweep, ErrorDecreasesWithGroupSize)
{
    // Values drift over time (as a growing KV cache does).
    Rng rng(7);
    Tensor kv(256, 4);
    for (int64_t t = 0; t < 256; ++t) {
        for (int64_t c = 0; c < 4; ++c) {
            kv.at(t, c) = static_cast<float>(
                rng.gaussian(0, 1.0 + static_cast<double>(t) / 32.0));
        }
    }
    const int64_t group = GetParam();
    const double mse =
        meanSquaredError(kv, KvCacheQuantizer(KvQuantConfig{4, group,
                                                            true})
                                 .fakeQuantize(kv));
    const double mse_whole = meanSquaredError(
        kv, KvCacheQuantizer(KvQuantConfig{4, 256, true})
                .fakeQuantize(kv));
    EXPECT_LE(mse, mse_whole * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Groups, KvGroupSweep,
                         ::testing::Values(16, 32, 64, 128));

} // namespace
} // namespace comet
