/**
 * @file
 * Unit tests for the reference GEMMs.
 */
#include <gtest/gtest.h>

#include "comet/common/rng.h"
#include "comet/kernel/gemm_ref.h"

namespace comet {
namespace {

TEST(GemmFloat, SmallKnownResult)
{
    Tensor x(2, 3), w(2, 3);
    // x = [[1,2,3],[4,5,6]]; w = [[1,0,0],[0,1,1]]
    for (int64_t c = 0; c < 3; ++c) {
        x.at(0, c) = static_cast<float>(c + 1);
        x.at(1, c) = static_cast<float>(c + 4);
    }
    w.at(0, 0) = 1.0f;
    w.at(1, 1) = 1.0f;
    w.at(1, 2) = 1.0f;
    const Tensor out = gemmFloat(x, w);
    EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 5.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 4.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 11.0f);
}

TEST(GemmFloat, IdentityWeight)
{
    Rng rng(1);
    Tensor x(4, 8);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian(0, 1));
    Tensor eye(8, 8);
    for (int64_t i = 0; i < 8; ++i)
        eye.at(i, i) = 1.0f;
    const Tensor out = gemmFloat(x, eye);
    EXPECT_LT(maxAbsError(out, x), 1e-6);
}

TEST(GemmFloatDeathTest, InnerDimMismatch)
{
    Tensor x(2, 3), w(2, 4);
    EXPECT_DEATH(gemmFloat(x, w), "inner dimensions");
}

TEST(GemmInt8, ApproximatesFloatGemm)
{
    Rng rng(2);
    Tensor x(8, 64), w(16, 64);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian(0, 1));
    for (int64_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.gaussian(0, 0.1));
    const Tensor reference = gemmFloat(x, w);
    const Tensor out =
        gemmInt8(quantizeInt8PerRow(x), quantizeInt8PerRow(w));
    EXPECT_LT(relativeError(reference, out), 0.02);
}

TEST(GemmInt4, ApproximatesFloatGemmMoreCoarsely)
{
    Rng rng(3);
    Tensor x(8, 64), w(16, 64);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian(0, 1));
    for (int64_t i = 0; i < w.numel(); ++i)
        w[i] = static_cast<float>(rng.gaussian(0, 0.1));
    const Tensor reference = gemmFloat(x, w);
    const Tensor out4 =
        gemmInt4(quantizeInt4PerRow(x), quantizeInt4PerRow(w));
    const Tensor out8 =
        gemmInt8(quantizeInt8PerRow(x), quantizeInt8PerRow(w));
    EXPECT_LT(relativeError(reference, out4), 0.25);
    EXPECT_LT(relativeError(reference, out8),
              relativeError(reference, out4));
}

TEST(GemmInt8, ExactOnGridValues)
{
    // Operands already on the integer grid multiply exactly.
    Tensor x(2, 4), w(2, 4);
    for (int64_t c = 0; c < 4; ++c) {
        x.at(0, c) = static_cast<float>(c - 2);
        x.at(1, c) = static_cast<float>(2 - c);
        w.at(0, c) = 1.0f;
        w.at(1, c) = static_cast<float>(c % 2);
    }
    const Tensor reference = gemmFloat(x, w);
    const Tensor out =
        gemmInt8(quantizeInt8PerRow(x), quantizeInt8PerRow(w));
    EXPECT_LT(maxAbsError(reference, out), 1e-4);
}

} // namespace
} // namespace comet
