/**
 * @file
 * Unit tests for the fine-grained SM scheduler (paper Figure 8).
 */
#include <gtest/gtest.h>

#include "comet/gpusim/sm_scheduler.h"

namespace comet {
namespace {

/** Alternating INT8/INT4 tile list, the Figure 8 pattern. */
std::vector<TileWork>
alternatingTiles(int64_t count, double int4_us, double int8_us)
{
    std::vector<TileWork> tiles;
    for (int64_t i = 0; i < count; ++i) {
        const bool is_int8 = i % 2 == 0;
        tiles.push_back(TileWork{is_int8 ? int8_us : int4_us,
                                 is_int8 ? BlockPrecision::kInt8
                                         : BlockPrecision::kInt4});
    }
    return tiles;
}

SchedulerConfig
fourSms()
{
    SchedulerConfig config;
    config.num_sms = 4;
    return config;
}

TEST(Scheduler, NaiveSyncWavesBoundByslowestTile)
{
    // 8 alternating tiles on 4 SMs: 2 waves, each lasting the INT8
    // duration (Figure 8(b)).
    const auto tiles = alternatingTiles(8, 1.0, 2.0);
    const ScheduleResult result =
        scheduleTiles(tiles, fourSms(), SchedulingStrategy::kNaiveSync);
    EXPECT_DOUBLE_EQ(result.makespan, 4.0);
    EXPECT_EQ(result.barriers, 2);
}

TEST(Scheduler, BarrierMinimizedKeepsCyclicPathology)
{
    // With the alternating pattern and cyclic binding, SM0 and SM2
    // receive every INT8 tile: makespan = all INT8 work on one SM
    // (Figure 8(c)).
    const auto tiles = alternatingTiles(8, 1.0, 2.0);
    const ScheduleResult result = scheduleTiles(
        tiles, fourSms(), SchedulingStrategy::kBarrierMinimized);
    EXPECT_DOUBLE_EQ(result.makespan, 4.0); // 2 INT8 tiles x 2.0
    EXPECT_EQ(result.barriers, 1);
}

TEST(Scheduler, RemappingBalancesPrecisions)
{
    const auto tiles = alternatingTiles(8, 1.0, 2.0);
    const ScheduleResult result = scheduleTiles(
        tiles, fourSms(), SchedulingStrategy::kTileRemapping);
    // LPT: each SM gets one INT8 (2.0) + one INT4 (1.0) = 3.0.
    EXPECT_DOUBLE_EQ(result.makespan, 3.0);
}

TEST(Scheduler, TaskStealingApproachesIdeal)
{
    // 2 tiles on 4 SMs: one-to-one binding strands half the SMs;
    // stealing splits the tiles (Figure 8(e)).
    std::vector<TileWork> tiles(2,
                                TileWork{4.0, BlockPrecision::kInt4});
    const double remap =
        scheduleTiles(tiles, fourSms(),
                      SchedulingStrategy::kTileRemapping)
            .makespan;
    const double steal =
        scheduleTiles(tiles, fourSms(),
                      SchedulingStrategy::kTaskStealing)
            .makespan;
    EXPECT_DOUBLE_EQ(remap, 4.0);
    EXPECT_LT(steal, remap * 0.65);
}

TEST(Scheduler, ProgressionNeverRegresses)
{
    // The paper's optimization ladder must be monotone on the
    // alternating workload.
    const auto tiles = alternatingTiles(42, 0.6, 1.2);
    SchedulerConfig config;
    config.num_sms = 8;
    const double naive =
        scheduleTiles(tiles, config, SchedulingStrategy::kNaiveSync)
            .makespan;
    const double barrier_min =
        scheduleTiles(tiles, config,
                      SchedulingStrategy::kBarrierMinimized)
            .makespan;
    const double remap =
        scheduleTiles(tiles, config,
                      SchedulingStrategy::kTileRemapping)
            .makespan;
    const double steal =
        scheduleTiles(tiles, config,
                      SchedulingStrategy::kTaskStealing)
            .makespan;
    EXPECT_LE(barrier_min, naive + 1e-9);
    EXPECT_LE(remap, barrier_min + 1e-9);
    EXPECT_LE(steal, remap + 1e-9);
}

TEST(Scheduler, MakespanNeverBelowWorkOverSms)
{
    const auto tiles = alternatingTiles(31, 0.7, 1.9);
    SchedulerConfig config;
    config.num_sms = 6;
    for (SchedulingStrategy strategy :
         {SchedulingStrategy::kNaiveSync,
          SchedulingStrategy::kBarrierMinimized,
          SchedulingStrategy::kTileRemapping,
          SchedulingStrategy::kTaskStealing}) {
        const ScheduleResult result =
            scheduleTiles(tiles, config, strategy);
        EXPECT_GE(result.makespan,
                  result.total_work / 6.0 - 1e-9)
            << schedulingStrategyName(strategy);
    }
}

TEST(Scheduler, UtilizationBetweenZeroAndOne)
{
    const auto tiles = alternatingTiles(10, 1.0, 2.0);
    const ScheduleResult result = scheduleTiles(
        tiles, fourSms(), SchedulingStrategy::kTileRemapping);
    EXPECT_GT(result.utilization(), 0.0);
    EXPECT_LE(result.utilization(), 1.0 + 1e-9);
}

TEST(Scheduler, EmptyTileListIsZero)
{
    const ScheduleResult result = scheduleTiles(
        {}, fourSms(), SchedulingStrategy::kTaskStealing);
    EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

TEST(BuildGemmTiles, CountsAndPattern)
{
    // The paper's running example: 256x256x384 GEMM, 128^3 tiles,
    // alternating k-block precision.
    const std::vector<BlockPrecision> pattern{
        BlockPrecision::kInt8, BlockPrecision::kInt4,
        BlockPrecision::kInt8};
    const auto tiles = buildGemmTiles(256, 256, 384, 128, 128, 128,
                                      pattern, 128, 1.0, 2.0);
    EXPECT_EQ(tiles.size(), 12u); // 2 x 2 x 3
    // k is innermost: tiles alternate per the k pattern.
    EXPECT_EQ(tiles[0].precision, BlockPrecision::kInt8);
    EXPECT_EQ(tiles[1].precision, BlockPrecision::kInt4);
    EXPECT_EQ(tiles[2].precision, BlockPrecision::kInt8);
    EXPECT_EQ(tiles[3].precision, BlockPrecision::kInt8);
}

TEST(BuildGemmTiles, RaggedShapesRoundUp)
{
    const std::vector<BlockPrecision> pattern{BlockPrecision::kInt4};
    const auto tiles = buildGemmTiles(100, 100, 100, 128, 128, 128,
                                      pattern, 128, 1.0, 2.0);
    EXPECT_EQ(tiles.size(), 1u);
}

TEST(Scheduler, StealOverheadChargedOnTransferredWorkOnly)
{
    // Two 4.0 tiles on 4 SMs: half the work (4.0) migrates to the
    // idle SMs and pays the reduction overhead.
    std::vector<TileWork> tiles(2,
                                TileWork{4.0, BlockPrecision::kInt4});
    SchedulerConfig config;
    config.num_sms = 4;
    config.steal_split = 4;
    config.steal_overhead = 0.10;
    const ScheduleResult result = scheduleTiles(
        tiles, config, SchedulingStrategy::kTaskStealing);
    EXPECT_NEAR(result.total_work, 8.0 + 4.0 * 0.10, 1e-9);
    EXPECT_NEAR(result.makespan, 8.4 / 4.0, 1e-9);
}

TEST(Scheduler, StealingIsOpportunistic)
{
    // An already-balanced schedule is left untouched: stealing never
    // regresses and charges no overhead.
    std::vector<TileWork> tiles(4,
                                TileWork{1.0, BlockPrecision::kInt4});
    SchedulerConfig config;
    config.num_sms = 4;
    config.steal_overhead = 0.10;
    const ScheduleResult result = scheduleTiles(
        tiles, config, SchedulingStrategy::kTaskStealing);
    EXPECT_NEAR(result.total_work, 4.0, 1e-9);
    EXPECT_NEAR(result.makespan, 1.0, 1e-9);
}

} // namespace
} // namespace comet
