/**
 * @file
 * Unit tests for the compile-time kernel planner.
 */
#include <gtest/gtest.h>

#include "comet/gpusim/planner.h"

namespace comet {
namespace {

TEST(Planner, CoversEveryDecoderGemm)
{
    const CompilePlanner planner;
    const ModelPlan plan =
        planner.plan(LlmConfig::llama3_8b(), 64);
    ASSERT_EQ(plan.layers.size(), 4u); // qkv, o, gate_up, down
    EXPECT_EQ(plan.model_name, "LLaMA-3-8B");
    EXPECT_EQ(plan.batch, 64);
    for (const LayerPlan &layer : plan.layers) {
        EXPECT_GT(layer.total_tiles, 0);
        EXPECT_GT(layer.predicted_us, 0.0);
        EXPECT_GE(layer.naive_us, layer.predicted_us - 1e-9);
    }
}

TEST(Planner, ChosenStrategyIsArgmin)
{
    const CompilePlanner planner;
    const GemmCostModel model(GpuSpec::a100Sxm480G());
    const ModelPlan plan =
        planner.plan(LlmConfig::llama2_13b(), 128);
    for (const LayerPlan &layer : plan.layers) {
        for (SchedulingStrategy strategy :
             {SchedulingStrategy::kNaiveSync,
              SchedulingStrategy::kBarrierMinimized,
              SchedulingStrategy::kTileRemapping,
              SchedulingStrategy::kTaskStealing}) {
            CometKernelFeatures features;
            features.scheduling = strategy;
            features.w4a4_fraction = 0.84;
            const double t = model
                                 .estimate(layer.shape,
                                           GemmKernelKind::kCometW4Ax,
                                           features)
                                 .total_us;
            EXPECT_GE(t, layer.predicted_us - 1e-9)
                << layer.name << " "
                << schedulingStrategyName(strategy);
        }
    }
}

TEST(Planner, StepTimeIsSumOfLayers)
{
    const CompilePlanner planner;
    const ModelPlan plan =
        planner.plan(LlmConfig::mistral_7b(), 32);
    double sum = 0.0;
    for (const LayerPlan &layer : plan.layers)
        sum += layer.predicted_us;
    EXPECT_NEAR(plan.step_gemm_us, sum, 1e-9);
}

TEST(Planner, BottleneckIsTheCostliestLayer)
{
    const CompilePlanner planner;
    const ModelPlan plan =
        planner.plan(LlmConfig::llama3_8b(), 64);
    for (const LayerPlan &layer : plan.layers) {
        EXPECT_LE(layer.predicted_us,
                  plan.layers[plan.bottleneck_layer].predicted_us +
                      1e-9);
    }
    // For LLaMA-style models the fused gate+up projection is the
    // largest GEMM.
    EXPECT_EQ(plan.layers[plan.bottleneck_layer].name,
              "gate_up_proj");
}

TEST(Planner, SchedulingBuysSpeedupOverNaive)
{
    const CompilePlanner planner;
    const ModelPlan plan =
        planner.plan(LlmConfig::llama3_70b(), 128);
    EXPECT_GT(plan.speedup_over_naive, 1.1);
}

TEST(Planner, HigherW4A4FractionLowersStepTime)
{
    const CompilePlanner planner;
    const LlmConfig model = LlmConfig::llama3_8b();
    const double lo =
        planner.plan(model, 128, 0.5).step_gemm_us;
    const double hi =
        planner.plan(model, 128, 1.0).step_gemm_us;
    EXPECT_LT(hi, lo);
}

TEST(Planner, ReportMentionsEveryLayerAndTheBottleneck)
{
    const CompilePlanner planner;
    const ModelPlan plan = planner.plan(LlmConfig::opt_13b(), 16);
    const std::string report = CompilePlanner::report(plan);
    for (const LayerPlan &layer : plan.layers)
        EXPECT_NE(report.find(layer.name), std::string::npos);
    EXPECT_NE(report.find("*"), std::string::npos);
    EXPECT_NE(report.find("OPT-13B"), std::string::npos);
}

TEST(PlannerDeathTest, RejectsBadInputs)
{
    const CompilePlanner planner;
    EXPECT_DEATH(planner.plan(LlmConfig::llama3_8b(), 0),
                 "CHECK failed");
    EXPECT_DEATH(planner.plan(LlmConfig::llama3_8b(), 8, 1.5),
                 "CHECK failed");
}

/** Sweep batch sizes: plans stay internally consistent. */
class PlannerBatchSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(PlannerBatchSweep, ConsistentAcrossBatches)
{
    const CompilePlanner planner;
    const ModelPlan plan =
        planner.plan(LlmConfig::llama2_7b(), GetParam());
    EXPECT_GT(plan.step_gemm_us, 0.0);
    EXPECT_GE(plan.speedup_over_naive, 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Batches, PlannerBatchSweep,
                         ::testing::Values(1, 4, 16, 64, 256));

} // namespace
} // namespace comet
