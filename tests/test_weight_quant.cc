/**
 * @file
 * Unit tests for the weight-only quantization baselines (RTN, GPTQ,
 * AWQ, OmniQuant-lite).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comet/common/rng.h"
#include "comet/kernel/gemm_ref.h"
#include "comet/model/synthetic.h"
#include "comet/quant/quantizer.h"
#include "comet/quant/weight_quant.h"

namespace comet {
namespace {

struct Fixture {
    Tensor weight;
    Tensor acts;
};

Fixture
makeFixture(int64_t out, int64_t in, uint64_t seed)
{
    Rng rng(seed);
    SyntheticActivationConfig config;
    config.channels = in;
    config.outlier_fraction = 0.04;
    config.outlier_scale = 25.0;
    config.seed = seed + 1;
    const SyntheticActivationModel model(config);
    return {sampleWeights(out, in, rng), model.sample(96, rng)};
}

double
outputError(const Fixture &f, const Tensor &wq)
{
    return relativeError(gemmFloat(f.acts, f.weight),
                         gemmFloat(f.acts, wq));
}

TEST(Rtn, ErrorBoundedByGroupScale)
{
    const Fixture f = makeFixture(8, 64, 1);
    WeightQuantConfig config;
    config.bits = 4;
    config.group_size = 32;
    const Tensor q = rtnQuantizeWeight(f.weight, config);
    for (int64_t n = 0; n < 8; ++n) {
        for (int64_t g = 0; g < 64; g += 32) {
            float abs_max = 0.0f;
            for (int64_t c = g; c < g + 32; ++c)
                abs_max = std::max(abs_max,
                                   std::fabs(f.weight.at(n, c)));
            const float scale = abs_max / 7.0f;
            for (int64_t c = g; c < g + 32; ++c) {
                EXPECT_LE(std::fabs(q.at(n, c) - f.weight.at(n, c)),
                          scale / 2.0f + 1e-6f);
            }
        }
    }
}

TEST(Gptq, BeatsRtnOnOutputError)
{
    const Fixture f = makeFixture(16, 64, 2);
    WeightQuantConfig config;
    config.bits = 4;
    config.group_size = 32;
    const double rtn_err =
        outputError(f, rtnQuantizeWeight(f.weight, config));
    const double gptq_err = outputError(
        f, gptqQuantizeWeight(f.weight, f.acts, config));
    EXPECT_LT(gptq_err, rtn_err);
}

TEST(Gptq, ExactlyRepresentableWeightsAreLossless)
{
    // Weights already on the INT4 grid with a shared scale quantize
    // without error, so GPTQ must return them unchanged.
    Tensor w(2, 32);
    for (int64_t n = 0; n < 2; ++n) {
        for (int64_t c = 0; c < 32; ++c)
            w.at(n, c) = static_cast<float>((c % 15) - 7) * 0.5f;
    }
    Rng rng(3);
    Tensor acts(64, 32);
    for (int64_t i = 0; i < acts.numel(); ++i)
        acts[i] = static_cast<float>(rng.gaussian(0, 1));
    WeightQuantConfig config;
    config.bits = 4;
    config.group_size = 32;
    const Tensor q = gptqQuantizeWeight(w, acts, config);
    EXPECT_LT(maxAbsError(w, q), 1e-4);
}

TEST(Gptq, HandlesMultipleGroups)
{
    const Fixture f = makeFixture(8, 128, 4);
    WeightQuantConfig config;
    config.bits = 4;
    config.group_size = 32;
    const Tensor q = gptqQuantizeWeight(f.weight, f.acts, config);
    EXPECT_EQ(q.rows(), 8);
    EXPECT_EQ(q.cols(), 128);
    EXPECT_LT(outputError(f, q), 0.1);
}

TEST(Awq, BeatsOrMatchesRtn)
{
    const Fixture f = makeFixture(16, 64, 5);
    WeightQuantConfig config;
    config.bits = 4;
    config.group_size = 32;
    const double rtn_err =
        outputError(f, rtnQuantizeWeight(f.weight, config));
    const double awq_err = outputError(
        f, awqQuantizeWeight(f.weight, f.acts, config));
    EXPECT_LE(awq_err, rtn_err + 1e-9);
}

TEST(Omniquant, ClippingNeverWorseThanRtnMse)
{
    const Fixture f = makeFixture(8, 64, 6);
    WeightQuantConfig config;
    config.bits = 4;
    config.group_size = 32;
    const Tensor rtn = rtnQuantizeWeight(f.weight, config);
    const Tensor omni = omniquantQuantizeWeight(f.weight, config);
    // OmniQuant's grid includes clip = 1.0 (= RTN), so its per-weight
    // MSE cannot be worse.
    EXPECT_LE(meanSquaredError(f.weight, omni),
              meanSquaredError(f.weight, rtn) + 1e-12);
}

TEST(Omniquant, ClipsModerateTails)
{
    // A group of well-spread values plus one moderate outlier: the
    // MSE-optimal clip is interior (sacrificing a little of the
    // outlier buys precision for everything else), and the grid
    // search must find it.
    Tensor w(1, 256);
    Rng rng(7);
    for (int64_t c = 0; c < 256; ++c)
        w.at(0, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
    w.at(0, 5) = 5.0f;
    WeightQuantConfig config;
    config.bits = 4;
    config.group_size = 256;
    const Tensor omni = omniquantQuantizeWeight(w, config);
    const Tensor rtn = rtnQuantizeWeight(w, config);
    EXPECT_LT(meanSquaredError(w, omni), meanSquaredError(w, rtn));
    // The clip actually engaged: the outlier is represented below
    // its true value.
    EXPECT_LT(omni.at(0, 5), 5.0f - 1e-3f);
}

TEST(WeightQuantDeathTest, GroupMustDivideColumns)
{
    Tensor w(2, 100);
    WeightQuantConfig config;
    config.group_size = 64;
    EXPECT_DEATH(rtnQuantizeWeight(w, config), "CHECK failed");
}

/** Sweep: every method degrades gracefully as bits decrease. */
class WeightBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(WeightBitsSweep, MoreBitsNeverHurt)
{
    const int bits = GetParam();
    const Fixture f = makeFixture(8, 64, 8);
    WeightQuantConfig lo;
    lo.bits = bits;
    lo.group_size = 32;
    WeightQuantConfig hi = lo;
    hi.bits = bits + 2;
    EXPECT_LE(meanSquaredError(f.weight,
                               rtnQuantizeWeight(f.weight, hi)),
              meanSquaredError(f.weight,
                               rtnQuantizeWeight(f.weight, lo)));
}

INSTANTIATE_TEST_SUITE_P(Bits, WeightBitsSweep,
                         ::testing::Values(2, 3, 4, 5, 6));

} // namespace
} // namespace comet
