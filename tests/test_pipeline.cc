/**
 * @file
 * Unit tests for the software-pipeline timing algebra.
 */
#include <gtest/gtest.h>

#include "comet/kernel/pipeline.h"

namespace comet {
namespace {

TEST(Pipeline, SerialIsSumOfStages)
{
    const StageTimes stages{2.0, 1.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(
        pipelineIterationTime(stages, PipelineMode::kSerial), 10.0);
}

TEST(Pipeline, OverlappedIsBoundedByBottleneckResource)
{
    // mma + smem dominates.
    const StageTimes compute_bound{1.0, 0.5, 0.2, 4.0};
    EXPECT_DOUBLE_EQ(pipelineIterationTime(compute_bound,
                                           PipelineMode::kSimtEnhanced),
                     4.5);
    // Global loads dominate.
    const StageTimes memory_bound{9.0, 0.5, 0.2, 4.0};
    EXPECT_DOUBLE_EQ(pipelineIterationTime(memory_bound,
                                           PipelineMode::kSimtEnhanced),
                     9.0);
    // CUDA-core conversion dominates (the naive-conversion regime).
    const StageTimes convert_bound{1.0, 0.5, 12.0, 4.0};
    EXPECT_DOUBLE_EQ(pipelineIterationTime(convert_bound,
                                           PipelineMode::kSimtEnhanced),
                     12.0);
}

TEST(Pipeline, OverlapNeverSlowerThanSerial)
{
    const StageTimes stages{3.0, 1.0, 2.0, 5.0};
    EXPECT_LE(pipelineIterationTime(stages,
                                    PipelineMode::kSimtEnhanced),
              pipelineIterationTime(stages, PipelineMode::kSerial));
}

TEST(Pipeline, TotalTimeIncludesFill)
{
    const StageTimes stages{1.0, 1.0, 1.0, 1.0};
    // Serial: n * 4. Overlapped: fill 4 + (n-1) * 2.
    EXPECT_DOUBLE_EQ(pipelineTime(stages, PipelineMode::kSerial, 10),
                     40.0);
    EXPECT_DOUBLE_EQ(
        pipelineTime(stages, PipelineMode::kSimtEnhanced, 10),
        4.0 + 9.0 * 2.0);
}

TEST(Pipeline, SingleIterationHasNoOverlapBenefit)
{
    const StageTimes stages{2.0, 1.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(
        pipelineTime(stages, PipelineMode::kSimtEnhanced, 1),
        pipelineTime(stages, PipelineMode::kSerial, 1));
}

TEST(PipelineDeathTest, RequiresAtLeastOneIteration)
{
    const StageTimes stages{1.0, 1.0, 1.0, 1.0};
    EXPECT_DEATH(pipelineTime(stages, PipelineMode::kSerial, 0),
                 "CHECK failed");
}

TEST(Pipeline, AsymptoticSpeedupApproachesSumOverMax)
{
    const StageTimes stages{2.0, 0.5, 1.0, 2.5};
    const double serial =
        pipelineTime(stages, PipelineMode::kSerial, 1000);
    const double overlapped =
        pipelineTime(stages, PipelineMode::kSimtEnhanced, 1000);
    EXPECT_NEAR(serial / overlapped, 6.0 / 3.0, 0.05);
}

} // namespace
} // namespace comet
