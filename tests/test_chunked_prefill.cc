/**
 * @file
 * Tests for chunked prefill (DESIGN.md §14): the decode-first token
 * knapsack, deadline-ordered chunk planning, KV pages held across
 * chunk steps, first-token credit at final-chunk completion,
 * byte-identical chunked-vs-monolithic token streams, determinism
 * across thread counts, and chunk-boundary chaos (dropped chunks,
 * cancels, preemptions and grafts landing at chunk edges).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "comet/chaos/failpoint.h"
#include "comet/chaos/harness.h"
#include "comet/chaos/script.h"
#include "comet/obs/metrics.h"
#include "comet/runtime/thread_pool.h"
#include "comet/serve/batch_scheduler.h"
#include "comet/serve/engine.h"
#include "comet/server/loadgen.h"
#include "comet/server/server.h"

namespace comet {
namespace {

PagedKvCache
makeCache(double budget_gb = 10.0)
{
    KvCacheConfig config;
    config.bits_per_value = 16.0;
    config.block_tokens = 16;
    config.memory_budget_bytes = budget_gb * 1e9;
    return PagedKvCache(LlmConfig::llama3_8b(), config);
}

Request
makeRequest(int64_t id, int64_t prompt, int64_t output,
            double deadline_us = 0.0)
{
    Request request;
    request.id = id;
    request.prompt_tokens = prompt;
    request.max_output_tokens = output;
    request.deadline_us = deadline_us;
    return request;
}

EngineConfig
testEngineConfig(int64_t kv_blocks = 4096)
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 128;
    config.output_tokens = 32;
    return engineConfigWithKvBlocks(config, kv_blocks);
}

/** Every test starts with clean metrics and no armed failpoint. */
class ChunkedPrefillTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::MetricsRegistry::global().reset();
        chaos::FailPointRegistry::global().disarmAll();
    }

    void
    TearDown() override
    {
        chaos::FailPointRegistry::global().disarmAll();
    }
};

TEST_F(ChunkedPrefillTest, PlanFillsBudgetInDeadlineOrder)
{
    PagedKvCache cache = makeCache();
    BatchSchedulerConfig config;
    config.chunk_tokens = 16;
    config.step_token_budget = 20;
    BatchScheduler scheduler(&cache, config);
    // No deadline sorts last (0 = none = infinity); the tight
    // deadline goes first even though it arrived second.
    scheduler.submit(makeRequest(1, 64, 4, /*deadline_us=*/0.0));
    scheduler.submit(makeRequest(2, 48, 4, /*deadline_us=*/100.0));
    scheduler.admit();

    const StepPlan plan = scheduler.planStep();
    EXPECT_EQ(plan.decode_batch, 0);
    ASSERT_EQ(plan.chunks.size(), 2u);
    EXPECT_EQ(plan.chunks[0].id, 2);
    EXPECT_EQ(plan.chunks[0].tokens, 16);
    EXPECT_EQ(plan.chunks[0].context_after, 16);
    // Budget 20 leaves 4 tokens for the second request's chunk.
    EXPECT_EQ(plan.chunks[1].id, 1);
    EXPECT_EQ(plan.chunks[1].tokens, 4);
    EXPECT_EQ(plan.prefill_tokens, 20);
    EXPECT_EQ(plan.gemmTokens(), 20);
}

TEST_F(ChunkedPrefillTest, DecodeStealsPriorityFromChunks)
{
    PagedKvCache cache = makeCache();
    BatchSchedulerConfig config;
    config.chunk_tokens = 16;
    config.step_token_budget = 18;
    BatchScheduler scheduler(&cache, config);
    scheduler.submit(makeRequest(1, 32, 8));
    scheduler.admit();
    // Two steps of chunked prefill complete request 1's context; it
    // decodes from the third step on.
    EXPECT_EQ(scheduler.step(), 0);
    EXPECT_EQ(scheduler.step(), 0);

    scheduler.submit(makeRequest(2, 64, 4));
    scheduler.admit();
    const StepPlan plan = scheduler.planStep();
    // Request 1 decodes first (decode steals priority); the chunk
    // only gets the remaining 18 - 1 = 17 -> capped at chunk_tokens.
    EXPECT_EQ(plan.decode_batch, 1);
    EXPECT_EQ(plan.decode_context_sum, 32);
    ASSERT_EQ(plan.chunks.size(), 1u);
    EXPECT_EQ(plan.chunks[0].id, 2);
    EXPECT_EQ(plan.chunks[0].tokens, 16);

    // A budget at the decode batch size defers all prefill but never
    // stalls decode.
    BatchSchedulerConfig tight = config;
    tight.step_token_budget = 1;
    PagedKvCache cache2 = makeCache();
    BatchScheduler starved(&cache2, tight);
    starved.submit(makeRequest(1, 32, 8));
    starved.admit();
    const StepPlan starved_plan = starved.planStep();
    ASSERT_EQ(starved_plan.chunks.size(), 1u);
    EXPECT_EQ(starved_plan.chunks[0].tokens, 1);
}

TEST_F(ChunkedPrefillTest, PagesHeldAcrossChunkSteps)
{
    PagedKvCache cache = makeCache();
    BatchSchedulerConfig config;
    config.chunk_tokens = 16;
    BatchScheduler scheduler(&cache, config);
    scheduler.submit(makeRequest(1, 64, 2));
    scheduler.admit();
    // Admission allocates the full prefill footprint up front — the
    // same pages monolithic mode would take — and holds it across
    // every chunk step.
    const int64_t used_after_admit =
        cache.totalBlocks() - cache.freeBlocks();
    EXPECT_EQ(used_after_admit, 4); // 64 tokens / 16-token blocks
    ASSERT_EQ(scheduler.running().size(), 1u);
    EXPECT_TRUE(scheduler.running()[0].prefilling());

    for (int step = 1; step <= 4; ++step) {
        EXPECT_EQ(scheduler.step(), 0);
        EXPECT_EQ(cache.totalBlocks() - cache.freeBlocks(),
                  used_after_admit);
        EXPECT_EQ(scheduler.running()[0].prefilled_tokens,
                  16 * step);
    }
    EXPECT_FALSE(scheduler.running()[0].prefilling());
    EXPECT_EQ(scheduler.counters().prefill_chunks, 4);
    // Prefill done: the next steps decode to completion.
    EXPECT_EQ(scheduler.step(), 1);
    EXPECT_EQ(scheduler.step(), 1);
    EXPECT_TRUE(scheduler.idle());
    scheduler.counters().publishTo(obs::MetricsRegistry::global());
    EXPECT_EQ(obs::MetricsRegistry::global().counterValue(
                  "serve.scheduler.prefill_chunks"),
              4);
}

TEST_F(ChunkedPrefillTest, FirstTokenCreditAtFinalChunk)
{
    PagedKvCache cache = makeCache();
    BatchSchedulerConfig config;
    config.chunk_tokens = 16;
    config.prefill_emits_token = true;
    config.collect_retired = true;
    BatchScheduler scheduler(&cache, config);
    // A one-token generation: monolithic mode would retire it at
    // admit(); chunked mode retires it on the final-chunk step.
    scheduler.submit(makeRequest(1, 32, 1));
    EXPECT_EQ(scheduler.admit(), 1);
    EXPECT_EQ(scheduler.finishedCount(), 0);
    EXPECT_EQ(scheduler.step(), 0); // first chunk: no credit yet
    EXPECT_EQ(scheduler.step(), 1); // final chunk: credit + retire
    EXPECT_EQ(scheduler.finishedCount(), 1);
    EXPECT_TRUE(scheduler.idle());
    const std::vector<Request> retired = scheduler.drainRetired();
    ASSERT_EQ(retired.size(), 1u);
    EXPECT_EQ(retired[0].state, RequestState::kFinished);
    EXPECT_EQ(retired[0].generated_tokens, 1);
}

TEST_F(ChunkedPrefillTest, SchedulerTokenStreamsMatchMonolithic)
{
    auto run = [](int64_t chunk_tokens) {
        PagedKvCache cache = makeCache();
        BatchSchedulerConfig config;
        config.chunk_tokens = chunk_tokens;
        config.prefill_emits_token = true;
        config.collect_retired = true;
        BatchScheduler scheduler(&cache, config);
        for (int64_t i = 0; i < 12; ++i) {
            scheduler.submit(makeRequest(i, 32 + 16 * (i % 5),
                                         1 + (i % 7)));
        }
        std::vector<Request> retired;
        while (!scheduler.idle()) {
            scheduler.admit();
            scheduler.step();
            for (Request &request : scheduler.drainRetired())
                retired.push_back(request);
        }
        std::sort(retired.begin(), retired.end(),
                  [](const Request &a, const Request &b) {
                      return a.id < b.id;
                  });
        return retired;
    };

    const std::vector<Request> monolithic = run(0);
    for (const int64_t chunk : {8, 16, 64}) {
        const std::vector<Request> chunked = run(chunk);
        ASSERT_EQ(chunked.size(), monolithic.size());
        for (size_t i = 0; i < monolithic.size(); ++i) {
            EXPECT_EQ(chunked[i].id, monolithic[i].id);
            EXPECT_EQ(chunked[i].state, monolithic[i].state);
            EXPECT_EQ(chunked[i].generated_tokens,
                      monolithic[i].generated_tokens);
        }
    }
}

/** Runs the mixed SLO workload against a fresh server with the given
 * chunk size (0 = monolithic) and returns the report. */
server::LoadgenReport
runMixedWorkload(const ServingEngine &engine, int64_t chunk_tokens)
{
    obs::MetricsRegistry::global().reset();
    const server::LoadgenConfig workload =
        server::mixedSloWorkload(/*seed=*/21, /*smoke=*/true);
    server::ServerConfig config;
    config.tenants = server::loadgenTenants(workload);
    config.max_batch = 16;
    config.chunked_prefill_tokens = chunk_tokens;
    server::Server server(&engine, config);
    server::LoadgenReport report =
        server::runLoadgen(&server, workload);
    server.stop();
    return report;
}

TEST_F(ChunkedPrefillTest, ServerTokenStreamsMatchAcrossChunkSizes)
{
    const ServingEngine engine(testEngineConfig());
    const server::LoadgenReport monolithic =
        runMixedWorkload(engine, 0);
    // The scenario must be equality-safe: every verdict is
    // clock-independent (no rate limits, deadlines, bounded queues
    // or cancels), so chunking may only change virtual time.
    EXPECT_GT(monolithic.completed, 0);
    EXPECT_EQ(monolithic.rejected, 0);
    EXPECT_EQ(monolithic.cancelled, 0);

    for (const int64_t chunk : {8, 64, 1024}) {
        const server::LoadgenReport chunked =
            runMixedWorkload(engine, chunk);
        EXPECT_EQ(chunked.completed, monolithic.completed);
        EXPECT_EQ(chunked.rejected, 0);
        EXPECT_EQ(chunked.cancelled, 0);
        EXPECT_EQ(chunked.tokens, monolithic.tokens);
        ASSERT_EQ(chunked.outcomes.size(),
                  monolithic.outcomes.size());
        for (size_t i = 0; i < monolithic.outcomes.size(); ++i) {
            EXPECT_EQ(chunked.outcomes[i].terminal,
                      monolithic.outcomes[i].terminal)
                << "request " << i << " chunk " << chunk;
            EXPECT_EQ(chunked.outcomes[i].tokens,
                      monolithic.outcomes[i].tokens)
                << "request " << i << " chunk " << chunk;
        }
    }
}

TEST_F(ChunkedPrefillTest, ChunkedRunsAreBitIdenticalAcrossThreads)
{
    const ServingEngine engine(testEngineConfig());
    ThreadPool::setGlobalThreads(1);
    const server::LoadgenReport serial = runMixedWorkload(engine, 64);
    ThreadPool::setGlobalThreads(4);
    const server::LoadgenReport pooled = runMixedWorkload(engine, 64);
    ThreadPool::setGlobalThreads(0); // back to the environment pick

    // Full bit-identity, virtual timestamps included.
    EXPECT_EQ(server::renderLoadgenReport(serial),
              server::renderLoadgenReport(pooled));
    ASSERT_EQ(serial.outcomes.size(), pooled.outcomes.size());
    for (size_t i = 0; i < serial.outcomes.size(); ++i) {
        EXPECT_EQ(serial.outcomes[i].tokens,
                  pooled.outcomes[i].tokens);
        EXPECT_EQ(serial.outcomes[i].first_token_us,
                  pooled.outcomes[i].first_token_us);
        EXPECT_EQ(serial.outcomes[i].last_token_us,
                  pooled.outcomes[i].last_token_us);
    }
    EXPECT_EQ(serial.makespan_us, pooled.makespan_us);
}

TEST_F(ChunkedPrefillTest, ChunkedChaosScriptHoldsAllInvariants)
{
    chaos::ChaosScriptConfig config;
    config.seed = 17;
    config.steps = 300;
    config.chunk_tokens = 32;
    const std::vector<chaos::ChaosStep> script =
        chaos::generateChaosScript(config);
    const chaos::ChaosRunResult result =
        chaos::runChaosScript(script, config, nullptr);
    EXPECT_TRUE(result.ok) << result.failure;
    EXPECT_GT(result.stats.completed, 0);
}

TEST_F(ChunkedPrefillTest, DroppedChunksReplayBitIdentically)
{
    // Cancels, preemptions and grafts now land at chunk boundaries,
    // and the sched.chunk failpoint drops every 3rd chunk on top —
    // dropped chunks are re-planned, never lost work, and the whole
    // session still replays bit-identically across thread counts.
    chaos::ChaosScriptConfig config;
    config.seed = 19;
    config.steps = 400;
    config.prefix = true;
    config.chunk_tokens = 32;
    const std::vector<chaos::ChaosStep> script =
        chaos::generateChaosScript(config);
    chaos::ChaosFaultConfig faults;
    faults.seed = 19;
    faults.chunk_every = 3;
    faults.graft_every = 11;

    ThreadPool::setGlobalThreads(1);
    const chaos::ChaosRunResult serial =
        chaos::runChaosScript(script, config, &faults);
    ThreadPool::setGlobalThreads(4);
    const chaos::ChaosRunResult pooled =
        chaos::runChaosScript(script, config, &faults);
    ThreadPool::setGlobalThreads(0);

    EXPECT_TRUE(serial.ok) << serial.failure;
    EXPECT_TRUE(pooled.ok) << pooled.failure;
    EXPECT_FALSE(serial.event_log.empty());
    EXPECT_EQ(serial.event_log, pooled.event_log);
    EXPECT_EQ(serial.stats.streamed_tokens,
              pooled.stats.streamed_tokens);
    EXPECT_EQ(serial.stats.completed, pooled.stats.completed);
    EXPECT_EQ(serial.stats.cancelled, pooled.stats.cancelled);
    // The failpoint genuinely fired (both runs accumulate into the
    // same registry counter).
    EXPECT_GT(obs::MetricsRegistry::global().counterValue(
                  "chaos.failpoint.sched.chunk"),
              0);
}

} // namespace
} // namespace comet
