/**
 * @file
 * Unit tests for channel permutation, including the computational-
 * equivalence property (paper Section 3.2).
 */
#include <gtest/gtest.h>

#include "comet/common/rng.h"
#include "comet/kernel/gemm_ref.h"
#include "comet/model/synthetic.h"
#include "comet/quant/permutation.h"

namespace comet {
namespace {

TEST(ChannelPermutation, IdentityIsIdentity)
{
    const auto perm = ChannelPermutation::identity(8);
    EXPECT_TRUE(perm.isIdentity());
    EXPECT_EQ(perm.channels(), 8);
}

TEST(ChannelPermutation, ApplyToColumnsReorders)
{
    Tensor x(1, 3);
    x.at(0, 0) = 10.0f;
    x.at(0, 1) = 20.0f;
    x.at(0, 2) = 30.0f;
    const ChannelPermutation perm({2, 0, 1});
    const Tensor y = perm.applyToColumns(x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 30.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 10.0f);
    EXPECT_FLOAT_EQ(y.at(0, 2), 20.0f);
}

TEST(ChannelPermutation, InverseUndoes)
{
    Rng rng(1);
    Tensor x(4, 16);
    for (int64_t i = 0; i < x.numel(); ++i)
        x[i] = static_cast<float>(rng.gaussian(0, 1));
    std::vector<int64_t> order(16);
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int64_t>(i);
    rng.shuffle(order);
    const ChannelPermutation perm(order);
    const Tensor round_trip =
        perm.inverse().applyToColumns(perm.applyToColumns(x));
    EXPECT_DOUBLE_EQ(maxAbsError(x, round_trip), 0.0);
}

TEST(ChannelPermutation, ApplyToVector)
{
    const ChannelPermutation perm({1, 2, 0});
    const std::vector<float> v{10.0f, 20.0f, 30.0f};
    const std::vector<float> p = perm.applyToVector(v);
    EXPECT_FLOAT_EQ(p[0], 20.0f);
    EXPECT_FLOAT_EQ(p[1], 30.0f);
    EXPECT_FLOAT_EQ(p[2], 10.0f);
}

TEST(ChannelPermutationDeathTest, RejectsNonBijections)
{
    EXPECT_DEATH(ChannelPermutation({0, 0, 1}), "repeated");
    EXPECT_DEATH(ChannelPermutation({0, 3}), "out of range");
}

TEST(OutlierClustering, OutliersComeFirstByMagnitude)
{
    ChannelStats stats;
    stats.abs_max = {1.0f, 50.0f, 2.0f, 90.0f, 1.5f};
    stats.abs_mean = stats.abs_max;
    stats.median_abs_max = 1.5f;
    OutlierReport report;
    report.is_outlier = {0, 1, 0, 1, 0};
    report.outlier_channels = {1, 3};
    const ChannelPermutation perm =
        buildOutlierClusteringPermutation(stats, report);
    // Largest outlier first, then the other outlier, then the normal
    // channels in original order.
    const std::vector<int64_t> expected{3, 1, 0, 2, 4};
    EXPECT_EQ(perm.order(), expected);
}

TEST(OutlierClustering, GemmEquivalenceUnderCoPermutation)
{
    // Permuting the K axis of both activations and weights leaves
    // X * W^T unchanged — the paper's computational-equivalence
    // requirement.
    Rng rng(7);
    SyntheticActivationConfig config;
    config.channels = 64;
    config.outlier_fraction = 0.05;
    const SyntheticActivationModel model(config);
    const Tensor x = model.sample(8, rng);
    const Tensor w = sampleWeights(12, 64, rng);

    const ChannelStats stats = computeChannelStats(x);
    const OutlierReport report = detectOutliers(stats);
    const ChannelPermutation perm =
        buildOutlierClusteringPermutation(stats, report);

    const Tensor reference = gemmFloat(x, w);
    const Tensor permuted = gemmFloat(perm.applyToColumns(x),
                                      perm.applyToColumns(w));
    EXPECT_LT(maxAbsError(reference, permuted), 1e-4);
}

TEST(OutlierClustering, ClustersIntoFewerBlocks)
{
    // Scattered outliers touch many 16-channel blocks before
    // permutation and exactly one after.
    ChannelStats stats;
    stats.abs_max.assign(64, 1.0f);
    stats.median_abs_max = 1.0f;
    OutlierReport report;
    report.is_outlier.assign(64, 0);
    for (int64_t c : {3, 19, 35, 51}) {
        stats.abs_max[static_cast<size_t>(c)] = 50.0f;
        report.is_outlier[static_cast<size_t>(c)] = 1;
        report.outlier_channels.push_back(c);
    }
    stats.abs_mean = stats.abs_max;
    const ChannelPermutation perm =
        buildOutlierClusteringPermutation(stats, report);

    auto blocks_with_outliers = [&](const ChannelPermutation &p) {
        int count = 0;
        for (int64_t b = 0; b < 4; ++b) {
            for (int64_t i = 0; i < 16; ++i) {
                const int64_t src =
                    p.order()[static_cast<size_t>(b * 16 + i)];
                if (report.is_outlier[static_cast<size_t>(src)]) {
                    ++count;
                    break;
                }
            }
        }
        return count;
    };
    EXPECT_EQ(blocks_with_outliers(ChannelPermutation::identity(64)),
              4);
    EXPECT_EQ(blocks_with_outliers(perm), 1);
}

} // namespace
} // namespace comet
