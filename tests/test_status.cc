/**
 * @file
 * Unit tests for Status / Result error handling.
 */
#include <gtest/gtest.h>

#include "comet/common/status.h"

namespace comet {
namespace {

TEST(Status, DefaultIsOk)
{
    Status status;
    EXPECT_TRUE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::kOk);
    EXPECT_EQ(status.toString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    const Status status = Status::invalidArgument("bad block size");
    EXPECT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(status.message(), "bad block size");
    EXPECT_EQ(status.toString(), "INVALID_ARGUMENT: bad block size");
}

TEST(Status, FactoriesProduceDistinctCodes)
{
    EXPECT_EQ(Status::outOfRange("x").code(), StatusCode::kOutOfRange);
    EXPECT_EQ(Status::resourceExhausted("x").code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(Status::failedPrecondition("x").code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(Status::unimplemented("x").code(),
              StatusCode::kUnimplemented);
    EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
}

TEST(Status, CodeNamesAreStable)
{
    EXPECT_STREQ(statusCodeName(StatusCode::kOk), "OK");
    EXPECT_STREQ(statusCodeName(StatusCode::kResourceExhausted),
                 "RESOURCE_EXHAUSTED");
}

TEST(Result, HoldsValue)
{
    Result<int> result(42);
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value(), 42);
    EXPECT_TRUE(result.status().isOk());
}

TEST(Result, HoldsError)
{
    Result<int> result(Status::resourceExhausted("pool empty"));
    EXPECT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Result, MoveOutValue)
{
    Result<std::string> result(std::string("payload"));
    const std::string moved = std::move(result).value();
    EXPECT_EQ(moved, "payload");
}

TEST(CheckMacro, PassingCheckIsSilent)
{
    COMET_CHECK(1 + 1 == 2);
    COMET_CHECK_MSG(true, "never fires");
    SUCCEED();
}

TEST(CheckMacroDeathTest, FailingCheckAborts)
{
    EXPECT_DEATH(COMET_CHECK(false), "CHECK failed");
    EXPECT_DEATH(COMET_CHECK_MSG(false, "context"), "context");
}

} // namespace
} // namespace comet
