/**
 * @file
 * Unit tests for INT4->INT8 conversion — correctness of both paths,
 * the x16 zero-extension factor, and the instruction-count claims of
 * paper Section 4.3.
 */
#include <gtest/gtest.h>

#include "comet/common/rng.h"
#include "comet/kernel/convert.h"
#include "comet/kernel/int4_pack.h"

namespace comet {
namespace {

std::array<int8_t, 8>
randomInt4(Rng &rng)
{
    std::array<int8_t, 8> values{};
    for (auto &v : values) {
        v = static_cast<int8_t>(static_cast<int>(rng.uniformInt(16)) -
                                8);
    }
    return values;
}

TEST(NaiveConvert, ProducesTrueValues)
{
    Rng rng(1);
    for (int trial = 0; trial < 100; ++trial) {
        const auto values = randomInt4(rng);
        const ConvertedPair pair =
            naiveInt4ToInt8(packInt4x8(values));
        const auto lo = unpackInt8x4(pair.lo);
        const auto hi = unpackInt8x4(pair.hi);
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(lo[static_cast<size_t>(i)],
                      values[static_cast<size_t>(i)]);
            EXPECT_EQ(hi[static_cast<size_t>(i)],
                      values[static_cast<size_t>(i + 4)]);
        }
    }
}

TEST(LocationSwitch, IsSelfInverse)
{
    Rng rng(2);
    for (int trial = 0; trial < 100; ++trial) {
        const uint32_t word = static_cast<uint32_t>(rng.nextU64());
        EXPECT_EQ(locationSwitchInverse(locationSwitch(word)), word);
        EXPECT_EQ(locationSwitch(locationSwitchInverse(word)), word);
    }
}

TEST(FastConvert, ProducesSixteenTimesValues)
{
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        const auto values = randomInt4(rng);
        const uint32_t switched =
            locationSwitch(packInt4x8(values));
        const ConvertedPair pair = fastInt4ToInt8(switched);
        const auto lo = unpackInt8x4(pair.lo);
        const auto hi = unpackInt8x4(pair.hi);
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(lo[static_cast<size_t>(i)],
                      kFastConvMultiplier *
                          values[static_cast<size_t>(i)]);
            EXPECT_EQ(hi[static_cast<size_t>(i)],
                      kFastConvMultiplier *
                          values[static_cast<size_t>(i + 4)]);
        }
    }
}

TEST(FastConvert, ZeroExtensionSignHandling)
{
    // The critical property: placing a negative nibble in the high
    // half of a byte yields exactly 16x the signed value.
    std::array<int8_t, 8> values{-8, -1, 7, 0, -4, 3, -7, 1};
    const ConvertedPair pair =
        fastInt4ToInt8(locationSwitch(packInt4x8(values)));
    const auto lo = unpackInt8x4(pair.lo);
    EXPECT_EQ(lo[0], -128); // 16 * -8
    EXPECT_EQ(lo[1], -16);  // 16 * -1
    EXPECT_EQ(lo[2], 112);  // 16 * 7
    EXPECT_EQ(lo[3], 0);
}

TEST(InstructionCount, FastIsAtMostThreePerRegister)
{
    InstructionCounter counter;
    fastInt4ToInt8(0x12345678u, &counter);
    EXPECT_LE(counter.count(), 3);
    EXPECT_GE(counter.count(), 2); // paper: "2 instructions"
}

TEST(InstructionCount, NaiveIsAboutTenPerValue)
{
    InstructionCounter counter;
    naiveInt4ToInt8(0x12345678u, &counter);
    // 8 values per register word, ~10 instructions each.
    EXPECT_GE(counter.count(), 8 * 8);
    EXPECT_LE(counter.count(), 8 * 12);
}

TEST(InstructionCount, FastAtLeastTenTimesCheaper)
{
    InstructionCounter naive_counter, fast_counter;
    naiveInt4ToInt8(0xdeadbeefu, &naive_counter);
    fastInt4ToInt8(0xdeadbeefu, &fast_counter);
    EXPECT_GE(naive_counter.count(), 10 * fast_counter.count());
}

TEST(InstructionCounter, ResetsAndAccumulates)
{
    InstructionCounter counter;
    counter.add(5);
    counter.add(3);
    EXPECT_EQ(counter.count(), 8);
    counter.reset();
    EXPECT_EQ(counter.count(), 0);
}

TEST(Convert, PathsAgreeUpToScale)
{
    // fast(switch(w)) == 16 * naive(w), lane for lane.
    Rng rng(4);
    for (int trial = 0; trial < 100; ++trial) {
        const uint32_t word =
            packInt4x8(randomInt4(rng));
        const ConvertedPair naive = naiveInt4ToInt8(word);
        const ConvertedPair fast =
            fastInt4ToInt8(locationSwitch(word));
        const auto nl = unpackInt8x4(naive.lo);
        const auto fl = unpackInt8x4(fast.lo);
        const auto nh = unpackInt8x4(naive.hi);
        const auto fh = unpackInt8x4(fast.hi);
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(static_cast<int>(fl[static_cast<size_t>(i)]),
                      16 * nl[static_cast<size_t>(i)]);
            EXPECT_EQ(static_cast<int>(fh[static_cast<size_t>(i)]),
                      16 * nh[static_cast<size_t>(i)]);
        }
    }
}

} // namespace
} // namespace comet
