/**
 * @file
 * Unit tests for the text table renderer.
 */
#include <gtest/gtest.h>

#include "comet/common/table.h"

namespace comet {
namespace {

TEST(Table, RendersHeaderAndRows)
{
    Table table({"Model", "PPL"});
    table.addRow({"LLaMA-1-13B", "5.09"});
    table.addRow({"OPT-13B", "10.13"});
    const std::string out = table.render();
    EXPECT_NE(out.find("Model"), std::string::npos);
    EXPECT_NE(out.find("LLaMA-1-13B"), std::string::npos);
    EXPECT_NE(out.find("10.13"), std::string::npos);
}

TEST(Table, ColumnsAreAligned)
{
    Table table({"A", "B"});
    table.addRow({"short", "x"});
    table.addRow({"much-longer-cell", "y"});
    const std::string out = table.render();
    // Every line must have equal length (aligned columns).
    size_t line_len = 0;
    size_t start = 0;
    while (start < out.size()) {
        const size_t end = out.find('\n', start);
        const size_t len = end - start;
        if (line_len == 0)
            line_len = len;
        EXPECT_EQ(len, line_len);
        start = end + 1;
    }
}

TEST(Table, SeparatorInsertedBetweenGroups)
{
    Table table({"K"});
    table.addRow({"group1"});
    table.addSeparator();
    table.addRow({"group2"});
    const std::string out = table.render();
    // Header separator + group separator = at least two dashed lines.
    size_t dashes = 0, start = 0;
    while ((start = out.find("|--", start)) != std::string::npos) {
        ++dashes;
        start += 3;
    }
    EXPECT_GE(dashes, 2u);
}

TEST(TableDeathTest, RowWidthMismatchAborts)
{
    Table table({"A", "B"});
    EXPECT_DEATH(table.addRow({"only-one"}), "row width");
}

TEST(Format, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(Format, FormatSpeedup)
{
    EXPECT_EQ(formatSpeedup(2.875, 2), "2.88x");
}

TEST(Format, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.84, 1), "84.0%");
}

} // namespace
} // namespace comet
