/**
 * @file
 * Tests for the cluster placement primitives: the consistent-hash
 * ring (stability under replica add/remove), the exact least-loaded
 * comparator, smooth weighted round-robin, and the placement key.
 */
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "comet/cluster/placement.h"

namespace comet {
namespace cluster {
namespace {

std::vector<bool>
allActive(int n)
{
    return std::vector<bool>(static_cast<size_t>(n), true);
}

TEST(PlacementKeyTest, StableAndTenantSeparated)
{
    const uint64_t a = placementKey("tenant-a", 0, false);
    EXPECT_EQ(a, placementKey("tenant-a", 0, false));
    EXPECT_NE(a, placementKey("tenant-b", 0, false));
    // A prefix key folds in; different prefixes separate.
    const uint64_t p1 = placementKey("tenant-a", 123, true);
    const uint64_t p2 = placementKey("tenant-a", 456, true);
    EXPECT_NE(p1, a);
    EXPECT_NE(p1, p2);
    EXPECT_EQ(p1, placementKey("tenant-a", 123, true));
}

TEST(RoutingPolicyTest, NamesRoundTrip)
{
    for (RoutingPolicy policy :
         {RoutingPolicy::kConsistentHash, RoutingPolicy::kLeastLoaded,
          RoutingPolicy::kWeightedRoundRobin}) {
        RoutingPolicy parsed;
        ASSERT_TRUE(
            parseRoutingPolicy(routingPolicyName(policy), &parsed));
        EXPECT_EQ(parsed, policy);
    }
    RoutingPolicy parsed;
    EXPECT_FALSE(parseRoutingPolicy("bogus", &parsed));
}

TEST(ConsistentHashRingTest, CoversAllReplicas)
{
    ConsistentHashRing ring(64);
    for (int r = 0; r < 4; ++r)
        ring.addReplica(r);
    const std::vector<bool> active = allActive(4);
    std::map<int, int> hits;
    for (uint64_t k = 0; k < 4096; ++k) {
        const int pick =
            ring.pick(placementKey("t" + std::to_string(k), 0, false),
                      active);
        ASSERT_GE(pick, 0);
        ASSERT_LT(pick, 4);
        ++hits[pick];
    }
    // With 64 vnodes each, every replica owns a nontrivial share.
    for (int r = 0; r < 4; ++r)
        EXPECT_GT(hits[r], 4096 / 16) << "replica " << r;
}

TEST(ConsistentHashRingTest, RemoveMovesOnlyTheRemovedKeys)
{
    ConsistentHashRing ring(64);
    for (int r = 0; r < 4; ++r)
        ring.addReplica(r);
    const std::vector<bool> active = allActive(4);

    std::vector<uint64_t> keys;
    std::vector<int> before;
    for (uint64_t k = 0; k < 2048; ++k) {
        keys.push_back(
            placementKey("key-" + std::to_string(k), 0, false));
        before.push_back(ring.pick(keys.back(), active));
    }

    ring.removeReplica(2);
    int moved = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
        const int after = ring.pick(keys[i], active);
        ASSERT_NE(after, 2);
        if (before[i] != 2) {
            // The consistent-hash contract: keys not owned by the
            // removed replica do not move.
            EXPECT_EQ(after, before[i]) << "key " << i;
        } else {
            ++moved;
        }
    }
    EXPECT_GT(moved, 0);

    // Adding it back restores the original mapping exactly (vnode
    // positions are a pure function of the replica id).
    ring.addReplica(2);
    for (size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(ring.pick(keys[i], active), before[i]);
}

TEST(ConsistentHashRingTest, InactiveMaskEqualsRemoval)
{
    ConsistentHashRing ring(64);
    for (int r = 0; r < 4; ++r)
        ring.addReplica(r);
    ConsistentHashRing without(64);
    for (int r = 0; r < 4; ++r) {
        if (r != 1)
            without.addReplica(r);
    }
    std::vector<bool> masked = allActive(4);
    masked[1] = false;
    for (uint64_t k = 0; k < 1024; ++k) {
        const uint64_t key =
            placementKey("m" + std::to_string(k), 0, false);
        EXPECT_EQ(ring.pick(key, masked),
                  without.pick(key, allActive(4)));
    }
}

TEST(ConsistentHashRingTest, SecondChoiceDiffersFromFirst)
{
    ConsistentHashRing ring(64);
    for (int r = 0; r < 3; ++r)
        ring.addReplica(r);
    const std::vector<bool> active = allActive(3);
    for (uint64_t k = 0; k < 512; ++k) {
        const uint64_t key =
            placementKey("s" + std::to_string(k), 0, false);
        const int first = ring.pick(key, active);
        const int second = ring.pickSecond(key, active);
        ASSERT_GE(second, 0);
        EXPECT_NE(first, second);
    }
    // One replica: no second choice exists.
    ConsistentHashRing solo(64);
    solo.addReplica(0);
    EXPECT_EQ(solo.pickSecond(7, allActive(1)), -1);
}

TEST(LeastLoadedTest, PicksLowestUtilizationExactly)
{
    // Fractions compare exactly: 10/100 < 11/100.
    std::vector<ReplicaLoad> loads(3);
    loads[0] = {11, 100, true};
    loads[1] = {10, 100, true};
    loads[2] = {50, 100, true};
    EXPECT_EQ(pickLeastLoaded(loads), 1);
    // Heterogeneous capacity: 30/300 == 10/100 ties; lowest index
    // wins deterministically.
    loads[0] = {30, 300, true};
    loads[1] = {10, 100, true};
    loads[2] = {50, 100, true};
    EXPECT_EQ(pickLeastLoaded(loads), 0);
    // Inactive replicas never picked; all-inactive returns -1.
    loads[0].active = false;
    EXPECT_EQ(pickLeastLoaded(loads), 1);
    loads[1].active = false;
    loads[2].active = false;
    EXPECT_EQ(pickLeastLoaded(loads), -1);
}

TEST(WeightedRoundRobinTest, HonorsWeightsSmoothly)
{
    SmoothWeightedRoundRobin wrr;
    wrr.reset({1.0, 2.0, 1.0});
    const std::vector<bool> active = allActive(3);
    std::map<int, int> hits;
    std::vector<int> first_cycle;
    for (int i = 0; i < 400; ++i) {
        const int pick = wrr.pick(active);
        ASSERT_GE(pick, 0);
        ++hits[pick];
        if (i < 4)
            first_cycle.push_back(pick);
    }
    EXPECT_EQ(hits[0], 100);
    EXPECT_EQ(hits[1], 200);
    EXPECT_EQ(hits[2], 100);
    // Smooth: the heavy replica is spread out, not bursty
    // (the nginx sequence for {1,2,1} interleaves replica 1).
    EXPECT_EQ(first_cycle[0], 1);
    EXPECT_NE(first_cycle[1], 1);

    // Masked replicas are skipped and their share redistributes.
    std::vector<bool> masked = active;
    masked[1] = false;
    SmoothWeightedRoundRobin wrr2;
    wrr2.reset({1.0, 2.0, 1.0});
    std::map<int, int> hits2;
    for (int i = 0; i < 100; ++i)
        ++hits2[wrr2.pick(masked)];
    EXPECT_EQ(hits2[1], 0);
    EXPECT_EQ(hits2[0] + hits2[2], 100);
    // No active replica: -1.
    SmoothWeightedRoundRobin wrr3;
    wrr3.reset({1.0});
    EXPECT_EQ(wrr3.pick({false}), -1);
}

} // namespace
} // namespace cluster
} // namespace comet
