/**
 * @file
 * Unit tests for the QoQ (QServe) baseline.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "comet/common/rng.h"
#include "comet/kernel/gemm_ref.h"
#include "comet/model/synthetic.h"
#include "comet/quant/qoq.h"
#include "comet/quant/quantizer.h"
#include "comet/quant/weight_quant.h"

namespace comet {
namespace {

TEST(Qoq, ProgressiveScalesAreMultiplesOfOuter)
{
    Rng rng(1);
    const Tensor w = sampleWeights(4, 128, rng);
    const auto layer = QoqLayer::calibrate(w, QoqConfig{});
    const Tensor &q = layer.quantizedWeight();

    // Every quantized value must sit on a grid whose step is an
    // integer multiple of the outer per-channel INT8 scale.
    for (int64_t n = 0; n < 4; ++n) {
        float abs_max = 0.0f;
        for (int64_t c = 0; c < 128; ++c)
            abs_max = std::max(abs_max, std::fabs(w.at(n, c)));
        const float s_outer = abs_max / 127.0f;
        for (int64_t c = 0; c < 128; ++c) {
            const float steps = q.at(n, c) / s_outer;
            EXPECT_NEAR(steps, std::round(steps), 1e-2f)
                << "value off the progressive grid at (" << n << ","
                << c << ")";
        }
    }
}

TEST(Qoq, QuantizationErrorBounded)
{
    Rng rng(2);
    const Tensor w = sampleWeights(8, 128, rng);
    QoqConfig config;
    config.group_size = 32;
    const auto layer = QoqLayer::calibrate(w, config);
    // Progressive INT4 is slightly coarser than plain group INT4, but
    // must stay within 2x its MSE.
    WeightQuantConfig rtn_config;
    rtn_config.bits = 4;
    rtn_config.group_size = 32;
    const double rtn_mse =
        meanSquaredError(w, rtnQuantizeWeight(w, rtn_config));
    const double qoq_mse =
        meanSquaredError(w, layer.quantizedWeight());
    EXPECT_LT(qoq_mse, rtn_mse * 2.5);
}

TEST(Qoq, ActivationQuantIsPerTokenInt8)
{
    Rng rng(3);
    SyntheticActivationConfig config;
    config.channels = 64;
    const SyntheticActivationModel model(config);
    const Tensor x = model.sample(16, rng);
    Tensor w(1, 64);
    const auto layer = QoqLayer::calibrate(w, QoqConfig{64});
    const Tensor q = layer.fakeQuantActivations(x);
    const Tensor expected = fakeQuantPerRow(x, 8);
    EXPECT_LT(maxAbsError(q, expected), 1e-6);
}

TEST(Qoq, KvQuantIsInt4)
{
    Rng rng(4);
    Tensor kv(64, 16);
    for (int64_t i = 0; i < kv.numel(); ++i)
        kv[i] = static_cast<float>(rng.gaussian(0, 1));
    Tensor w(1, 64);
    const auto layer = QoqLayer::calibrate(w, QoqConfig{64});
    const Tensor q = layer.fakeQuantKv(kv);
    // INT4: at most 16 distinct values per (channel, group).
    std::set<float> distinct;
    for (int64_t t = 0; t < 64; ++t)
        distinct.insert(q.at(t, 0));
    EXPECT_LE(distinct.size(), 16u);
}

TEST(Qoq, EndToEndGemmReasonable)
{
    Rng rng(5);
    SyntheticActivationConfig act_config;
    act_config.channels = 128;
    act_config.outlier_fraction = 0.03;
    const SyntheticActivationModel model(act_config);
    const Tensor x = model.sample(32, rng);
    const Tensor w = sampleWeights(16, 128, rng);

    const auto layer = QoqLayer::calibrate(w, QoqConfig{});
    const Tensor out = gemmFloat(layer.fakeQuantActivations(x),
                                 layer.quantizedWeight());
    const Tensor reference = gemmFloat(x, w);
    EXPECT_LT(relativeError(reference, out), 0.15);
}

} // namespace
} // namespace comet
