/**
 * @file
 * Tests for the synthetic zero-shot suite (Table 2 harness).
 */
#include <gtest/gtest.h>

#include <set>

#include "comet/model/perplexity.h"
#include "comet/model/zeroshot.h"

namespace comet {
namespace {

TinyTransformer &
teacher()
{
    static TinyTransformer *model = [] {
        TinyTransformerConfig config;
        config.vocab_size = 96;
        config.hidden_size = 64;
        config.num_heads = 4;
        config.num_kv_heads = 4;
        config.num_layers = 2;
        config.intermediate_size = 128;
        config.outlier_fraction = 0.06;
        config.outlier_scale = 25.0;
        config.seed = 77;
        return new TinyTransformer(TinyTransformer::random(config));
    }();
    return *model;
}

TEST(Zeroshot, TaskGenerationShape)
{
    ZeroshotTaskConfig config;
    config.name = "toy";
    config.num_examples = 10;
    config.context_length = 12;
    config.num_candidates = 4;
    const ZeroshotTask task = buildZeroshotTask(teacher(), config);
    EXPECT_EQ(task.name, "toy");
    ASSERT_EQ(task.examples.size(), 10u);
    for (const auto &example : task.examples) {
        EXPECT_EQ(example.context.size(), 12u);
        EXPECT_EQ(example.candidates.size(), 4u);
        EXPECT_GE(example.label, 0);
        EXPECT_LT(example.label, 4);
        // Candidates are distinct.
        std::set<int32_t> unique(example.candidates.begin(),
                                 example.candidates.end());
        EXPECT_EQ(unique.size(), example.candidates.size());
    }
}

TEST(Zeroshot, LabelsNotAlwaysFirst)
{
    ZeroshotTaskConfig config;
    config.name = "shuffle";
    config.num_examples = 30;
    config.num_candidates = 4;
    config.context_length = 8;
    const ZeroshotTask task = buildZeroshotTask(teacher(), config);
    int nonzero = 0;
    for (const auto &example : task.examples)
        nonzero += example.label != 0 ? 1 : 0;
    EXPECT_GT(nonzero, 5);
}

TEST(Zeroshot, SuiteHasFiveNamedTasks)
{
    const auto suite = buildZeroshotSuite(teacher(), 5);
    ASSERT_EQ(suite.size(), 5u);
    EXPECT_EQ(suite[0].name, "PIQA-syn");
    EXPECT_EQ(suite[2].name, "ARC-c-syn");
    EXPECT_EQ(suite[4].name, "Winogrande-syn");
}

TEST(Zeroshot, TeacherBeatsChance)
{
    ZeroshotTaskConfig config;
    config.name = "teacher-check";
    config.num_examples = 40;
    config.num_candidates = 4;
    config.context_length = 10;
    const ZeroshotTask task = buildZeroshotTask(teacher(), config);
    const double accuracy =
        evaluateZeroshotAccuracy(teacher(), nullptr, task);
    EXPECT_GT(accuracy, 0.4); // chance is 0.25
}

TEST(Zeroshot, HardDistractorsAreHarder)
{
    ZeroshotTaskConfig easy;
    easy.name = "easy";
    easy.num_examples = 40;
    easy.num_candidates = 4;
    easy.context_length = 10;
    easy.seed = 9;
    ZeroshotTaskConfig hard = easy;
    hard.name = "hard";
    hard.hard_distractors = true;
    const double easy_acc = evaluateZeroshotAccuracy(
        teacher(), nullptr, buildZeroshotTask(teacher(), easy));
    const double hard_acc = evaluateZeroshotAccuracy(
        teacher(), nullptr, buildZeroshotTask(teacher(), hard));
    EXPECT_LE(hard_acc, easy_acc);
}

TEST(Zeroshot, QuantizationDegradesAccuracyOrder)
{
    // FMPQ stays near FP16; full W4A4 falls furthest — the Table 2
    // ordering.
    ZeroshotTaskConfig config;
    config.name = "order";
    config.num_examples = 40;
    config.num_candidates = 4;
    config.context_length = 10;
    config.seed = 13;
    const ZeroshotTask task = buildZeroshotTask(teacher(), config);

    Rng rng(15);
    const Dataset calib_data = sampleDataset(teacher(), 3, 24, rng);
    const CalibrationData calibration =
        CalibrationData::collect(teacher(), calib_data);

    const double fp16 =
        evaluateZeroshotAccuracy(teacher(), nullptr, task);
    const QuantizedModel fmpq = buildQuantizedModel(
        teacher(), QuantScheme::kFmpqW4AxKv4, calibration);
    const double fmpq_acc =
        evaluateZeroshotAccuracy(fmpq.model, fmpq.sim(), task);
    const QuantizedModel w4a4 = buildQuantizedModel(
        teacher(), QuantScheme::kOmniquantW4A4, calibration);
    const double w4a4_acc =
        evaluateZeroshotAccuracy(w4a4.model, w4a4.sim(), task);

    EXPECT_GE(fmpq_acc, fp16 - 0.15);
    EXPECT_LT(w4a4_acc, fmpq_acc + 0.05);
}

} // namespace
} // namespace comet
