/**
 * @file
 * Unit tests for leveled logging: record formatting, level
 * filtering, severity-counter routing into the obs registry, and
 * thread-safety of concurrent emission.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "comet/common/logging.h"
#include "comet/obs/metrics.h"

namespace comet {
namespace {

/** RAII guard restoring the global log level a test changes. */
class LogLevelGuard
{
  public:
    LogLevelGuard() : saved_(logLevel()) {}
    ~LogLevelGuard() { setLogLevel(saved_); }

  private:
    LogLevel saved_;
};

int64_t
warningCount()
{
    return obs::MetricsRegistry::global().counterValue("log.warnings");
}

int64_t
errorCount()
{
    return obs::MetricsRegistry::global().counterValue("log.errors");
}

TEST(Logging, FormatPinsTheRecordLayout)
{
    EXPECT_EQ(detail::formatLogRecord(LogLevel::kWarn,
                                      "/a/b/engine.cc", 42, "kv low"),
              "[comet WARN engine.cc:42] kv low");
    EXPECT_EQ(detail::formatLogRecord(LogLevel::kError, "trace.cc", 7,
                                      ""),
              "[comet ERROR trace.cc:7] ");
    EXPECT_EQ(detail::formatLogRecord(LogLevel::kInfo, "x.cc", 1, "m"),
              "[comet INFO x.cc:1] m");
    EXPECT_EQ(detail::formatLogRecord(LogLevel::kDebug, "x.cc", 1,
                                      "m"),
              "[comet DEBUG x.cc:1] m");
}

TEST(Logging, FormatStripsNestedDirectories)
{
    EXPECT_EQ(detail::formatLogRecord(LogLevel::kWarn,
                                      "src/comet/serve/engine.cc", 3,
                                      "x"),
              "[comet WARN engine.cc:3] x");
}

TEST(Logging, LevelRoundTrips)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::kDebug);
    EXPECT_EQ(logLevel(), LogLevel::kDebug);
    setLogLevel(LogLevel::kError);
    EXPECT_EQ(logLevel(), LogLevel::kError);
}

TEST(Logging, RecordsAboveTheLevelAreDropped)
{
    LogLevelGuard guard;
    // At kError, a kWarn record must be filtered at the call site:
    // the warning counter cannot move.
    setLogLevel(LogLevel::kError);
    const int64_t warnings_before = warningCount();
    COMET_LOG(kWarn) << "filtered out";
    EXPECT_EQ(warningCount(), warnings_before);
    // At kWarn, the same record passes and is counted.
    setLogLevel(LogLevel::kWarn);
    COMET_LOG(kWarn) << "emitted";
    EXPECT_EQ(warningCount(), warnings_before + 1);
}

TEST(Logging, WarnAndErrorRecordsTickObsCounters)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::kWarn);
    const int64_t warnings_before = warningCount();
    const int64_t errors_before = errorCount();
    COMET_LOG(kWarn) << "w1";
    COMET_LOG(kWarn) << "w2";
    COMET_LOG(kError) << "e1";
    EXPECT_EQ(warningCount(), warnings_before + 2);
    EXPECT_EQ(errorCount(), errors_before + 1);
}

TEST(Logging, InfoRecordsDoNotTickSeverityCounters)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::kDebug);
    const int64_t warnings_before = warningCount();
    const int64_t errors_before = errorCount();
    COMET_LOG(kInfo) << "informational";
    COMET_LOG(kDebug) << "debug";
    EXPECT_EQ(warningCount(), warnings_before);
    EXPECT_EQ(errorCount(), errors_before);
}

TEST(Logging, ConcurrentEmissionCountsEveryRecord)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::kWarn);
    const int64_t warnings_before = warningCount();
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                COMET_LOG(kWarn) << "thread " << t << " record " << i;
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(warningCount(),
              warnings_before + kThreads * kPerThread);
}

} // namespace
} // namespace comet
