/**
 * @file
 * Tests for the chaos subsystem: failpoint triggers and injection
 * sites, scheduled virtual-time cancels, seeded workload scripts,
 * delta-debugging shrinks, the model-based fuzzers, and bit-identical
 * faulted replay of the full server harness.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "comet/chaos/failpoint.h"
#include "comet/chaos/harness.h"
#include "comet/chaos/invariants.h"
#include "comet/chaos/script.h"
#include "comet/kvcache/kv_cache.h"
#include "comet/obs/metrics.h"
#include "comet/runtime/thread_pool.h"
#include "comet/serve/batch_scheduler.h"
#include "comet/serve/engine.h"
#include "comet/server/server.h"

namespace comet {
namespace chaos {
namespace {

/** A ~120-block KV4 cache (the fuzzers' pool size). */
PagedKvCache
smallCache()
{
    KvCacheConfig config;
    config.bits_per_value = 4.0;
    config.block_tokens = 16;
    config.memory_budget_bytes = 64e6;
    return PagedKvCache(LlmConfig::llama3_8b(), config);
}

EngineConfig
testEngineConfig(int64_t kv_blocks = 2048)
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 128;
    config.output_tokens = 32;
    return engineConfigWithKvBlocks(config, kv_blocks);
}

server::ServerConfig
oneTenantConfig()
{
    server::ServerConfig config;
    server::TenantConfig tenant;
    tenant.name = "t";
    config.tenants = {tenant};
    config.max_batch = 16;
    return config;
}

/** Every test starts with clean metrics and no armed failpoint. */
class ChaosTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::MetricsRegistry::global().reset();
        FailPointRegistry::global().disarmAll();
    }

    void
    TearDown() override
    {
        FailPointRegistry::global().disarmAll();
    }
};

TEST_F(ChaosTest, DisarmedFailpointsNeverFire)
{
    EXPECT_FALSE(FailPointRegistry::armed());
    EXPECT_FALSE(COMET_FAILPOINT("chaos.test.unarmed"));
    // The disarmed fast path must not even count hits.
    EXPECT_EQ(FailPointRegistry::global().hitCount(
                  "chaos.test.unarmed"),
              0);
}

TEST_F(ChaosTest, NthHitFiresExactlyOnce)
{
    FailPointRegistry::global().arm("chaos.test.fp",
                                    FailPointSpec::nthHit(3));
    EXPECT_TRUE(FailPointRegistry::armed());
    std::vector<bool> fired;
    for (int i = 0; i < 10; ++i)
        fired.push_back(COMET_FAILPOINT("chaos.test.fp"));
    const std::vector<bool> expected{false, false, true,  false,
                                     false, false, false, false,
                                     false, false};
    EXPECT_EQ(fired, expected);
    EXPECT_EQ(FailPointRegistry::global().hitCount("chaos.test.fp"),
              10);
    EXPECT_EQ(FailPointRegistry::global().fireCount("chaos.test.fp"),
              1);
}

TEST_F(ChaosTest, EveryNthFiresPeriodically)
{
    FailPointRegistry::global().arm("chaos.test.fp",
                                    FailPointSpec::everyNth(4));
    int fires = 0;
    for (int i = 0; i < 12; ++i) {
        const bool fired = COMET_FAILPOINT("chaos.test.fp");
        EXPECT_EQ(fired, (i + 1) % 4 == 0) << "hit " << i;
        fires += fired ? 1 : 0;
    }
    EXPECT_EQ(fires, 3);
}

TEST_F(ChaosTest, HitListFiresOnExactlyTheListedHits)
{
    FailPointRegistry::global().arm(
        "chaos.test.fp", FailPointSpec::atHits({5, 0, 2}));
    std::vector<int> fired_at;
    for (int i = 0; i < 8; ++i) {
        if (COMET_FAILPOINT("chaos.test.fp"))
            fired_at.push_back(i);
    }
    EXPECT_EQ(fired_at, (std::vector<int>{0, 2, 5}));
}

TEST_F(ChaosTest, ProbabilityScheduleIsSeededAndCapped)
{
    const auto run = [] {
        FailPointRegistry::global().arm(
            "chaos.test.fp",
            FailPointSpec::withProbability(0.5, 42,
                                           /*max_fires=*/3));
        std::vector<bool> pattern;
        for (int i = 0; i < 64; ++i)
            pattern.push_back(COMET_FAILPOINT("chaos.test.fp"));
        return pattern;
    };
    const std::vector<bool> first = run();
    const std::vector<bool> second = run();
    EXPECT_EQ(first, second); // re-arming resets the seeded draws
    int fires = 0;
    for (const bool fired : first)
        fires += fired ? 1 : 0;
    EXPECT_EQ(fires, 3); // the cap binds at p = 0.5 over 64 hits
    EXPECT_EQ(FailPointRegistry::global().fireCount("chaos.test.fp"),
              3);
}

TEST_F(ChaosTest, ArmingOneNameLeavesOthersInert)
{
    FailPointRegistry::global().arm("chaos.test.a",
                                    FailPointSpec::everyNth(1));
    EXPECT_TRUE(COMET_FAILPOINT("chaos.test.a"));
    EXPECT_FALSE(COMET_FAILPOINT("chaos.test.b"));
    FailPointRegistry::global().disarm("chaos.test.a");
    EXPECT_FALSE(FailPointRegistry::armed());
}

TEST_F(ChaosTest, FiresAreCountedInTheMetricsRegistry)
{
    FailPointRegistry::global().arm("chaos.test.fp",
                                    FailPointSpec::everyNth(2));
    for (int i = 0; i < 10; ++i)
        (void)COMET_FAILPOINT("chaos.test.fp");
    EXPECT_EQ(obs::MetricsRegistry::global()
                  .counter("chaos.failpoint.chaos.test.fp")
                  .value(),
              5);
}

// ---- Injection sites -------------------------------------------------

TEST_F(ChaosTest, InjectedKvAllocFailureRollsBackCleanly)
{
    PagedKvCache cache = smallCache();
    // Fire on the 3rd block allocation: the failure lands mid-chain
    // and the first two blocks must be rolled back.
    FailPointRegistry::global().arm("kv.alloc",
                                    FailPointSpec::nthHit(3));
    const Status status = cache.addSequence(1, 5 * 16);
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_TRUE(checkKvCacheQuiescent(cache).isOk());
    FailPointRegistry::global().disarmAll();
    EXPECT_TRUE(cache.addSequence(1, 5 * 16).isOk());
    EXPECT_TRUE(checkKvCacheConsistency(cache).isOk());
}

TEST_F(ChaosTest, SchedulerRetriesAdmissionAfterInjectedExhaustion)
{
    PagedKvCache cache = smallCache();
    BatchSchedulerConfig config;
    config.max_batch = 4;
    BatchScheduler scheduler(&cache, config);
    Request request;
    request.id = 1;
    request.prompt_tokens = 32;
    request.max_output_tokens = 4;
    scheduler.submit(request);

    FailPointRegistry::global().arm("kv.alloc",
                                    FailPointSpec::nthHit(1));
    EXPECT_EQ(scheduler.admit(), 0); // injected fault: head stays
    EXPECT_EQ(scheduler.queuedCount(), 1);
    EXPECT_TRUE(checkKvCacheQuiescent(cache).isOk());
    FailPointRegistry::global().disarmAll();
    EXPECT_EQ(scheduler.admit(), 1); // recoverable: retry succeeds
    EXPECT_EQ(scheduler.runningCount(), 1);
}

TEST_F(ChaosTest, InjectedPreemptionReprefillsLikeARealOne)
{
    PagedKvCache cache = smallCache();
    BatchSchedulerConfig config;
    config.max_batch = 4;
    BatchScheduler scheduler(&cache, config);
    Request request;
    request.id = 1;
    request.prompt_tokens = 32;
    request.max_output_tokens = 4;
    scheduler.submit(request);
    ASSERT_EQ(scheduler.admit(), 1);

    FailPointRegistry::global().arm("sched.preempt",
                                    FailPointSpec::nthHit(1));
    scheduler.step(); // the victim is evicted before decoding
    EXPECT_EQ(scheduler.counters().preemptions, 1);
    EXPECT_EQ(scheduler.runningCount(), 0);
    EXPECT_EQ(scheduler.queuedCount(), 1);
    EXPECT_TRUE(checkKvCacheConsistency(cache).isOk());
    FailPointRegistry::global().disarmAll();
    while (scheduler.finishedCount() < 1) {
        scheduler.admit();
        scheduler.step();
    }
    EXPECT_TRUE(checkKvCacheQuiescent(cache).isOk());
}

TEST_F(ChaosTest, InjectedAdmissionExpiryRejectsWithoutADeadline)
{
    server::TenantConfig tenant;
    tenant.name = "t"; // no admission deadline configured
    server::FairAdmissionQueue queue({tenant});
    server::PendingRequest request;
    request.id = 1;
    request.prompt_tokens = 8;
    request.max_output_tokens = 2;
    ASSERT_EQ(queue.offer(std::move(request), 0.0),
              server::RejectReason::kNone);

    FailPointRegistry::global().arm("admission.expire",
                                    FailPointSpec::nthHit(1));
    server::PendingRequest out;
    std::vector<server::PendingRequest> expired;
    EXPECT_FALSE(queue.pick(0.0, &out, &expired));
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0].id, 1);
    EXPECT_TRUE(queue.empty());
}

TEST_F(ChaosTest, InjectedIngressCancelEndsExactlyOneStream)
{
    const ServingEngine engine(testEngineConfig());
    server::Server server(&engine, oneTenantConfig());
    // The first ingested arrival (the earliest) is cancelled as if
    // its client disconnected while admission raced it.
    FailPointRegistry::global().arm("server.ingress",
                                    FailPointSpec::nthHit(1));
    server::Server::Client client = server.connect();
    server::StreamRequest request;
    request.tenant = "t";
    request.prompt_tokens = 32;
    // Long enough to outlive the iteration that ingests it: the
    // injected cancel flag is observed at the next loop boundary.
    request.max_output_tokens = 64;
    request.id = 1;
    request.arrival_us = 0.0;
    server::TokenStreamPtr first = client.submit(request);
    request.id = 2;
    request.arrival_us = 10.0;
    server::TokenStreamPtr second = client.submit(request);
    client.close();
    server.drain();

    EXPECT_EQ(first->terminalKind(),
              server::StreamEventKind::kCancelled);
    EXPECT_LT(first->tokenCount(), 64);
    EXPECT_EQ(second->terminalKind(),
              server::StreamEventKind::kFinished);
    EXPECT_EQ(second->tokenCount(), 64);
    const server::ServerStats stats = server.stats();
    EXPECT_EQ(stats.cancelled, 1);
    EXPECT_EQ(stats.completed, 1);
    EXPECT_TRUE(
        checkKvCacheQuiescent(server.kvCacheForAudit()).isOk());
    server.stop();
}

// ---- Scheduled virtual-time cancels ---------------------------------

TEST_F(ChaosTest, CancelScheduledAtArrivalLandsBeforeAnyToken)
{
    const ServingEngine engine(testEngineConfig());
    server::Server server(&engine, oneTenantConfig());
    server::Server::Client client = server.connect();
    server::StreamRequest request;
    request.id = 1;
    request.tenant = "t";
    request.prompt_tokens = 32;
    request.max_output_tokens = 8;
    request.arrival_us = 1000.0;
    request.cancel_at_us = 1000.0; // abandon the instant it arrives
    server::TokenStreamPtr stream = client.submit(request);
    client.close();
    server.drain();

    EXPECT_EQ(stream->terminalKind(),
              server::StreamEventKind::kCancelled);
    EXPECT_EQ(stream->tokenCount(), 0);
    EXPECT_EQ(server.stats().cancelled, 1);
    EXPECT_EQ(server.stats().streamed_tokens, 0);
    server.stop();
}

TEST_F(ChaosTest, CancelScheduledAfterCompletionIsANoOp)
{
    const ServingEngine engine(testEngineConfig());
    server::Server server(&engine, oneTenantConfig());
    server::Server::Client client = server.connect();
    server::StreamRequest request;
    request.id = 1;
    request.tenant = "t";
    request.prompt_tokens = 32;
    request.max_output_tokens = 3;
    request.eos_output_tokens = 3;
    request.arrival_us = 0.0;
    request.cancel_at_us = 1e12; // long after the stream finishes
    server::TokenStreamPtr stream = client.submit(request);
    client.close();
    server.drain();

    EXPECT_EQ(stream->terminalKind(),
              server::StreamEventKind::kFinished);
    EXPECT_EQ(stream->tokenCount(), 3);
    EXPECT_EQ(server.stats().cancelled, 0);
    server.stop();
}

// ---- Scripts and shrinking ------------------------------------------

TEST_F(ChaosTest, ScriptGenerationIsSeedDeterministic)
{
    ChaosScriptConfig config;
    config.seed = 9;
    config.steps = 300;
    const std::vector<ChaosStep> a = generateChaosScript(config);
    const std::vector<ChaosStep> b = generateChaosScript(config);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(renderChaosScript(a), renderChaosScript(b));
    config.seed = 10;
    EXPECT_NE(renderChaosScript(a),
              renderChaosScript(generateChaosScript(config)));
}

TEST_F(ChaosTest, ScriptTimesStrictlyIncreaseAndIdsAreUnique)
{
    ChaosScriptConfig config;
    config.seed = 3;
    config.steps = 500;
    const std::vector<ChaosStep> script =
        generateChaosScript(config);
    ASSERT_EQ(script.size(), 500u);
    double last_us = -1.0;
    std::vector<int64_t> ids;
    for (const ChaosStep &step : script) {
        EXPECT_GT(step.time_us, last_us);
        last_us = step.time_us;
        EXPECT_GE(step.client, 0);
        EXPECT_LT(step.client, config.clients);
        if (step.kind == ChaosStepKind::kSubmit) {
            ids.push_back(step.id);
            EXPECT_GT(step.prompt_tokens, 0);
            EXPECT_GT(step.max_output_tokens, 0);
            EXPECT_LE(step.eos_output_tokens,
                      step.max_output_tokens);
            if (step.cancel_at_us != 0.0) {
                EXPECT_GE(step.cancel_at_us, step.time_us);
            }
        }
    }
    std::sort(ids.begin(), ids.end());
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) ==
                ids.end());
}

TEST_F(ChaosTest, ShrinkReducesToTheSingleCulpritStep)
{
    ChaosScriptConfig config;
    config.seed = 5;
    config.steps = 200;
    const std::vector<ChaosStep> script =
        generateChaosScript(config);
    // Find some submit step mid-script and pretend only it "fails".
    int64_t culprit = 0;
    for (const ChaosStep &step : script) {
        if (step.kind == ChaosStepKind::kSubmit)
            culprit = step.id;
    }
    ASSERT_NE(culprit, 0);
    int runs = 0;
    const std::vector<ChaosStep> shrunk = shrinkChaosScript(
        script,
        [&](const std::vector<ChaosStep> &candidate) {
            ++runs;
            for (const ChaosStep &step : candidate) {
                if (step.kind == ChaosStepKind::kSubmit &&
                    step.id == culprit) {
                    return true;
                }
            }
            return false;
        },
        /*max_runs=*/512);
    ASSERT_EQ(shrunk.size(), 1u);
    EXPECT_EQ(shrunk[0].id, culprit);
    EXPECT_GT(runs, 0);
}

TEST_F(ChaosTest, QuiescenceCheckerFlagsALiveSequence)
{
    PagedKvCache cache = smallCache();
    ASSERT_TRUE(cache.addSequence(1, 16).isOk());
    EXPECT_TRUE(checkKvCacheConsistency(cache).isOk());
    const Status status = checkKvCacheQuiescent(cache);
    EXPECT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("sequences still live"),
              std::string::npos);
    cache.removeSequence(1);
    EXPECT_TRUE(checkKvCacheQuiescent(cache).isOk());
}

// ---- Model-based fuzzers --------------------------------------------

TEST_F(ChaosTest, KvModelFuzzHoldsCleanAndUnderFaults)
{
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        const Status clean = runKvModelFuzz(seed, 300, false);
        EXPECT_TRUE(clean.isOk()) << clean.toString();
        const Status faulted = runKvModelFuzz(seed, 300, true);
        EXPECT_TRUE(faulted.isOk()) << faulted.toString();
    }
}

TEST_F(ChaosTest, SchedulerFuzzHoldsCleanAndUnderFaults)
{
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        const Status clean = runSchedulerFuzz(seed, 300, false);
        EXPECT_TRUE(clean.isOk()) << clean.toString();
        const Status faulted = runSchedulerFuzz(seed, 300, true);
        EXPECT_TRUE(faulted.isOk()) << faulted.toString();
    }
}

TEST_F(ChaosTest, PrefixFuzzHoldsCleanAndUnderFaults)
{
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        const Status clean = runPrefixFuzz(seed, 300, false);
        EXPECT_TRUE(clean.isOk()) << clean.toString();
        const Status faulted = runPrefixFuzz(seed, 300, true);
        EXPECT_TRUE(faulted.isOk()) << faulted.toString();
    }
}

// ---- The full server harness ----------------------------------------

TEST_F(ChaosTest, ScriptedServerRunHoldsAllInvariants)
{
    ChaosScriptConfig config;
    config.seed = 7;
    config.steps = 250;
    const std::vector<ChaosStep> script =
        generateChaosScript(config);
    const ChaosRunResult result =
        runChaosScript(script, config, nullptr);
    EXPECT_TRUE(result.ok) << result.failure;
    EXPECT_GT(result.stats.completed, 0);
    EXPECT_FALSE(result.event_log.empty());
}

TEST_F(ChaosTest, FaultedRunReplaysBitIdenticallyAcrossThreadCounts)
{
    ChaosScriptConfig config;
    config.seed = 11;
    config.steps = 400;
    const std::vector<ChaosStep> script =
        generateChaosScript(config);
    ChaosFaultConfig faults;
    faults.seed = 11;

    ThreadPool::setGlobalThreads(1);
    const ChaosRunResult serial =
        runChaosScript(script, config, &faults);
    ThreadPool::setGlobalThreads(4);
    const ChaosRunResult pooled =
        runChaosScript(script, config, &faults);
    ThreadPool::setGlobalThreads(0); // back to the environment pick

    EXPECT_TRUE(serial.ok) << serial.failure;
    EXPECT_TRUE(pooled.ok) << pooled.failure;
    EXPECT_FALSE(serial.event_log.empty());
    EXPECT_EQ(serial.event_log, pooled.event_log);
    EXPECT_EQ(serial.stats.streamed_tokens,
              pooled.stats.streamed_tokens);
    EXPECT_EQ(serial.stats.completed, pooled.stats.completed);
    EXPECT_EQ(serial.stats.rejected, pooled.stats.rejected);
    EXPECT_EQ(serial.stats.cancelled, pooled.stats.cancelled);
    // The faulted run actually injected something.
    EXPECT_GT(pooled.stats.cancelled + pooled.stats.rejected, 0);
}

TEST_F(ChaosTest, PrefixScriptGraftsAndReplaysBitIdentically)
{
    ChaosScriptConfig config;
    config.seed = 13;
    config.steps = 400;
    config.prefix = true;
    const std::vector<ChaosStep> script =
        generateChaosScript(config);
    ChaosFaultConfig faults;
    faults.seed = 13;
    faults.graft_every = 11; // forced misses on the graft path too

    ThreadPool::setGlobalThreads(1);
    const ChaosRunResult serial =
        runChaosScript(script, config, &faults);
    ThreadPool::setGlobalThreads(4);
    const ChaosRunResult pooled =
        runChaosScript(script, config, &faults);
    ThreadPool::setGlobalThreads(0);

    EXPECT_TRUE(serial.ok) << serial.failure;
    EXPECT_TRUE(pooled.ok) << pooled.failure;
    EXPECT_FALSE(serial.event_log.empty());
    EXPECT_EQ(serial.event_log, pooled.event_log);
    // The cache genuinely grafted despite the armed graft failpoint,
    // and both replays agree on every prefix counter.
    EXPECT_GT(serial.stats.prefix_matched_tokens, 0);
    EXPECT_GT(serial.stats.prefix_hits, 0);
    EXPECT_EQ(serial.stats.prefix_matched_tokens,
              pooled.stats.prefix_matched_tokens);
    EXPECT_EQ(serial.stats.prefix_hits, pooled.stats.prefix_hits);
    EXPECT_EQ(serial.stats.prefix_blocks_matched,
              pooled.stats.prefix_blocks_matched);
}

// ---- Always-on checks along chaos paths (satellite: a violated
// COMET_CHECK aborts with its message in every build type) -----------

using ChaosDeathTest = ChaosTest;

TEST_F(ChaosDeathTest, BlockAccountingChecksAbortWithTheirMessage)
{
PagedKvCache cache = smallCache();
    ASSERT_TRUE(cache.addSequence(1, 16).isOk());
    // The chaos-path accounting checks must hold in Release builds
    // too: COMET_CHECK never compiles out, and the abort carries the
    // violated expression's message.
    EXPECT_DEATH(cache.removeSequence(7), "unknown sequence id");
    EXPECT_DEATH(cache.sequenceBlocks(7), "unknown sequence id");
    cache.removeSequence(1);
}

TEST_F(ChaosDeathTest, InvalidFailPointSpecsAbort)
{
EXPECT_DEATH(FailPointSpec::nthHit(0), "n >= 1");
    EXPECT_DEATH(FailPointSpec::withProbability(1.5, 0),
                 "p >= 0.0 && p <= 1.0");
    EXPECT_DEATH(FailPointRegistry::global().arm(
                     "", FailPointSpec::nthHit(1)),
                 "failpoint names must be non-empty");
}

} // namespace
} // namespace chaos
} // namespace comet
