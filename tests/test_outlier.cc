/**
 * @file
 * Unit tests for outlier-channel detection.
 */
#include <gtest/gtest.h>

#include "comet/common/rng.h"
#include "comet/model/synthetic.h"
#include "comet/quant/outlier.h"

namespace comet {
namespace {

Tensor
makeActivations(const std::vector<int64_t> &outliers, int64_t tokens,
                int64_t channels, float scale, uint64_t seed)
{
    Rng rng(seed);
    Tensor x(tokens, channels);
    for (int64_t t = 0; t < tokens; ++t) {
        for (int64_t c = 0; c < channels; ++c)
            x.at(t, c) = static_cast<float>(rng.gaussian(0, 1));
    }
    for (int64_t c : outliers) {
        for (int64_t t = 0; t < tokens; ++t)
            x.at(t, c) *= scale;
    }
    return x;
}

TEST(ChannelStats, ComputesPerChannelMax)
{
    Tensor x(2, 3);
    x.at(0, 0) = 1.0f;
    x.at(1, 0) = -4.0f;
    x.at(0, 1) = 2.0f;
    x.at(1, 2) = 0.5f;
    const ChannelStats stats = computeChannelStats(x);
    EXPECT_FLOAT_EQ(stats.abs_max[0], 4.0f);
    EXPECT_FLOAT_EQ(stats.abs_max[1], 2.0f);
    EXPECT_FLOAT_EQ(stats.abs_max[2], 0.5f);
    EXPECT_FLOAT_EQ(stats.abs_mean[0], 2.5f);
}

TEST(ChannelStats, MedianIsRobustToFewOutliers)
{
    const Tensor x = makeActivations({0, 1}, 64, 100, 100.0f, 1);
    const ChannelStats stats = computeChannelStats(x);
    // Two outlier channels cannot move the median of 100 channels.
    EXPECT_LT(stats.median_abs_max, 10.0f);
}

TEST(MergeChannelStats, TakesElementwiseMax)
{
    Tensor a(1, 2), b(1, 2);
    a.at(0, 0) = 5.0f;
    b.at(0, 1) = 7.0f;
    const ChannelStats merged = mergeChannelStats(
        {computeChannelStats(a), computeChannelStats(b)});
    EXPECT_FLOAT_EQ(merged.abs_max[0], 5.0f);
    EXPECT_FLOAT_EQ(merged.abs_max[1], 7.0f);
}

TEST(DetectOutliers, FindsPlantedChannels)
{
    const std::vector<int64_t> planted{3, 17, 42};
    const Tensor x = makeActivations(planted, 128, 64, 50.0f, 2);
    const OutlierReport report =
        detectOutliers(computeChannelStats(x));
    EXPECT_EQ(report.outlier_channels, planted);
    for (int64_t c = 0; c < 64; ++c) {
        const bool expected =
            std::find(planted.begin(), planted.end(), c) !=
            planted.end();
        EXPECT_EQ(report.is_outlier[static_cast<size_t>(c)] != 0,
                  expected)
            << "channel " << c;
    }
}

TEST(DetectOutliers, NoOutliersInUniformData)
{
    const Tensor x = makeActivations({}, 128, 64, 1.0f, 3);
    const OutlierReport report =
        detectOutliers(computeChannelStats(x));
    EXPECT_TRUE(report.outlier_channels.empty());
}

TEST(DetectOutliers, ThresholdRatioControlsSensitivity)
{
    const Tensor x = makeActivations({5}, 128, 64, 8.0f, 4);
    OutlierConfig loose;
    loose.threshold_ratio = 3.0f;
    OutlierConfig strict;
    strict.threshold_ratio = 50.0f;
    EXPECT_FALSE(detectOutliers(computeChannelStats(x), loose)
                     .outlier_channels.empty());
    EXPECT_TRUE(detectOutliers(computeChannelStats(x), strict)
                    .outlier_channels.empty());
}

TEST(DetectOutliers, SyntheticModelChannelsRecovered)
{
    // End-to-end with the Figure 3 generator: the detector must
    // recover exactly the planted channel set.
    SyntheticActivationConfig config;
    config.channels = 512;
    config.outlier_fraction = 0.01;
    config.outlier_scale = 40.0;
    const SyntheticActivationModel model(config);
    Rng rng(5);
    const Tensor x = model.sample(256, rng);
    const OutlierReport report =
        detectOutliers(computeChannelStats(x));
    EXPECT_EQ(report.outlier_channels, model.outlierChannels());
}

TEST(DetectOutliers, AllZeroCalibrationFlagsNothing)
{
    Tensor x(8, 16); // all zeros
    const OutlierReport report =
        detectOutliers(computeChannelStats(x));
    EXPECT_TRUE(report.outlier_channels.empty());
}

} // namespace
} // namespace comet
