/**
 * @file
 * Unit tests for the bench --json report emitter (bench_report.h):
 * schema fields, escaping, and the --json flag plumbing that
 * scripts/check_bench.py consumes.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "../bench/bench_report.h"

namespace comet {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TEST(BenchReport, EmitsSchemaFields)
{
    bench::BenchReport report("bench_unit_test");
    report.setConfig("smoke", "true");
    report.setConfig("span_values", static_cast<int64_t>(1024));
    report.addMetric("fast_conv_instructions_per_word", 3.0,
                     "instructions", /*gate=*/true,
                     /*higher_is_better=*/false);
    report.addMetric("throughput", 123.5, "vals/s", /*gate=*/false,
                     /*higher_is_better=*/true);
    const std::string path = tempPath("report.json");
    report.write(path);
    const std::string json = slurp(path);

    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"bench\": \"bench_unit_test\""),
              std::string::npos);
    EXPECT_NE(json.find("\"git_sha\": \""), std::string::npos);
    EXPECT_NE(json.find("\"smoke\": \"true\""), std::string::npos);
    EXPECT_NE(json.find("\"span_values\": \"1024\""),
              std::string::npos);
    EXPECT_NE(
        json.find("\"name\": \"fast_conv_instructions_per_word\""),
        std::string::npos);
    EXPECT_NE(json.find("\"gate\": true"), std::string::npos);
    EXPECT_NE(json.find("\"gate\": false"), std::string::npos);
    EXPECT_NE(json.find("\"direction\": \"lower_is_better\""),
              std::string::npos);
    EXPECT_NE(json.find("\"direction\": \"higher_is_better\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(BenchReport, EmptyReportIsStillWellFormed)
{
    bench::BenchReport report("bench_empty");
    const std::string path = tempPath("empty.json");
    report.write(path);
    const std::string json = slurp(path);
    EXPECT_NE(json.find("\"config\": {}"), std::string::npos);
    EXPECT_NE(json.find("\"metrics\": []"), std::string::npos);
    std::remove(path.c_str());
}

TEST(BenchReport, QuotesSpecialCharacters)
{
    bench::BenchReport report("bench \"quoted\"\\slash");
    const std::string path = tempPath("quoted.json");
    report.write(path);
    const std::string json = slurp(path);
    EXPECT_NE(json.find("\"bench \\\"quoted\\\"\\\\slash\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(BenchReport, WriteIfRequestedHonorsLastJsonFlag)
{
    bench::BenchReport report("bench_flagged");
    report.addMetric("m", 1.0, "u", true, true);
    const std::string first = tempPath("first.json");
    const std::string last = tempPath("last.json");
    const std::string arg1 = "--json=" + first;
    const std::string arg2 = "--json=" + last;
    char prog[] = "bench";
    char smoke[] = "--smoke";
    char *argv[] = {prog, const_cast<char *>(arg1.c_str()), smoke,
                    const_cast<char *>(arg2.c_str())};
    EXPECT_TRUE(report.writeIfRequested(4, argv));
    // Only the last --json= path is written.
    std::ifstream check_first(first);
    EXPECT_FALSE(check_first.good());
    EXPECT_NE(slurp(last).find("\"bench_flagged\""),
              std::string::npos);
    std::remove(last.c_str());
}

TEST(BenchReport, WriteIfRequestedNoFlagIsNoOp)
{
    bench::BenchReport report("bench_noflag");
    char prog[] = "bench";
    char smoke[] = "--smoke";
    char *argv[] = {prog, smoke};
    EXPECT_FALSE(report.writeIfRequested(2, argv));
}

TEST(BenchReportDeathTest, EmptyJsonPathAborts)
{
    bench::BenchReport report("bench_bad");
    char prog[] = "bench";
    char flag[] = "--json=";
    char *argv[] = {prog, flag};
    EXPECT_DEATH(report.writeIfRequested(2, argv), "file path");
}

TEST(BenchReportDeathTest, UnwritablePathAborts)
{
    bench::BenchReport report("bench_bad");
    EXPECT_DEATH(report.write("/nonexistent-dir/report.json"),
                 "json output");
}

} // namespace
} // namespace comet
