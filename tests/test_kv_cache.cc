/**
 * @file
 * Unit tests for the paged KV cache — block math, admission, and the
 * precision/capacity relationship that drives Figure 15.
 */
#include <gtest/gtest.h>

#include "comet/kvcache/kv_cache.h"
#include "comet/serve/batch_scheduler.h"

namespace comet {
namespace {

KvCacheConfig
makeConfig(double bits, double budget_gb)
{
    KvCacheConfig config;
    config.bits_per_value = bits;
    config.block_tokens = 16;
    config.memory_budget_bytes = budget_gb * 1e9;
    return config;
}

TEST(PagedKvCache, BlockBytesMatchGeometry)
{
    const LlmConfig model = LlmConfig::llama3_8b();
    const PagedKvCache cache(model, makeConfig(16.0, 10.0));
    // 2 * 32 layers * 8 heads * 128 dim * 16 tokens * 2 bytes.
    EXPECT_DOUBLE_EQ(cache.blockBytes(),
                     2.0 * 32 * 8 * 128 * 16 * 2.0);
}

TEST(PagedKvCache, QuantizedBlocksAreSmaller)
{
    const LlmConfig model = LlmConfig::llama3_8b();
    const PagedKvCache fp16(model, makeConfig(16.0, 10.0));
    const PagedKvCache int4(model, makeConfig(4.0, 10.0));
    // INT4 + metadata is a bit over 1/4 the FP16 block size.
    EXPECT_LT(int4.blockBytes(), fp16.blockBytes() / 3.0);
    EXPECT_GT(int4.totalBlocks(), fp16.totalBlocks() * 3);
}

TEST(PagedKvCache, BlocksForTokensRoundsUp)
{
    const LlmConfig model = LlmConfig::llama3_8b();
    const PagedKvCache cache(model, makeConfig(16.0, 10.0));
    EXPECT_EQ(cache.blocksForTokens(1), 1);
    EXPECT_EQ(cache.blocksForTokens(16), 1);
    EXPECT_EQ(cache.blocksForTokens(17), 2);
}

TEST(PagedKvCache, AddAppendRemoveLifecycle)
{
    const LlmConfig model = LlmConfig::llama3_8b();
    PagedKvCache cache(model, makeConfig(16.0, 1.0));
    ASSERT_TRUE(cache.addSequence(1, 30).isOk());
    EXPECT_EQ(cache.sequenceTokens(1), 30);
    const int64_t used_before = cache.totalBlocks() -
                                cache.freeBlocks();
    EXPECT_EQ(used_before, 2);

    // Appending to 32 fills block 2; token 33 allocates block 3.
    ASSERT_TRUE(cache.appendToken(1).isOk());
    ASSERT_TRUE(cache.appendToken(1).isOk());
    EXPECT_EQ(cache.totalBlocks() - cache.freeBlocks(), 2);
    ASSERT_TRUE(cache.appendToken(1).isOk());
    EXPECT_EQ(cache.totalBlocks() - cache.freeBlocks(), 3);

    cache.removeSequence(1);
    EXPECT_EQ(cache.freeBlocks(), cache.totalBlocks());
}

TEST(PagedKvCache, DuplicateSequenceRejected)
{
    PagedKvCache cache(LlmConfig::llama3_8b(),
                       makeConfig(16.0, 1.0));
    ASSERT_TRUE(cache.addSequence(7, 10).isOk());
    const Status status = cache.addSequence(7, 10);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(PagedKvCache, AdmissionFailsCleanlyWhenFull)
{
    const LlmConfig model = LlmConfig::llama3_8b();
    KvCacheConfig config = makeConfig(16.0, 0.01); // tiny pool
    PagedKvCache cache(model, config);
    const int64_t capacity_tokens =
        cache.totalBlocks() * 16;
    const Status status =
        cache.addSequence(1, capacity_tokens + 16);
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(cache.freeBlocks(), cache.totalBlocks()); // no leak
}

TEST(PagedKvCache, CanAdmitAgreesWithAddSequence)
{
    PagedKvCache cache(LlmConfig::llama3_8b(),
                       makeConfig(16.0, 0.01));
    const int64_t fit_tokens = cache.totalBlocks() * 16;
    EXPECT_TRUE(cache.canAdmit(fit_tokens));
    EXPECT_FALSE(cache.canAdmit(fit_tokens + 16));
}

TEST(PagedKvCache, Kv4QuadruplesTokenCapacityApproximately)
{
    // The end-to-end mechanism of Figure 15: 4-bit cache ~4x the
    // sequences (slightly less due to scale metadata).
    const LlmConfig model = LlmConfig::llama3_70b();
    const PagedKvCache fp16(model, makeConfig(16.0, 40.0));
    const PagedKvCache int4(model, makeConfig(4.0, 40.0));
    const double ratio =
        static_cast<double>(int4.totalBlocks()) /
        static_cast<double>(fp16.totalBlocks());
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 4.1);
}

TEST(PagedKvCacheDeathTest, UnknownSequence)
{
    PagedKvCache cache(LlmConfig::llama3_8b(),
                       makeConfig(16.0, 1.0));
    EXPECT_DEATH(cache.sequenceTokens(99), "unknown");
    EXPECT_DEATH(cache.removeSequence(99), "unknown");
}

TEST(PagedKvCache, ForkSharesFullBlocksCopyOnWrite)
{
    const LlmConfig model = LlmConfig::llama3_8b();
    PagedKvCache cache(model, makeConfig(16.0, 1.0));
    // 32 tokens = exactly 2 full blocks.
    ASSERT_TRUE(cache.addSequence(1, 32).isOk());
    EXPECT_EQ(cache.physicalBlocksInUse(), 2);

    ASSERT_TRUE(cache.forkSequence(1, 2).isOk());
    // Both sequences see 2 blocks, but only 2 are physical.
    EXPECT_EQ(cache.sequenceTokens(2), 32);
    EXPECT_EQ(cache.logicalBlocksInUse(), 4);
    EXPECT_EQ(cache.physicalBlocksInUse(), 2);

    // Each side appends into a fresh private block.
    ASSERT_TRUE(cache.appendToken(1).isOk());
    ASSERT_TRUE(cache.appendToken(2).isOk());
    EXPECT_EQ(cache.physicalBlocksInUse(), 4);

    // Removing the parent keeps the shared blocks alive for the
    // child.
    cache.removeSequence(1);
    EXPECT_EQ(cache.physicalBlocksInUse(), 3);
    cache.removeSequence(2);
    EXPECT_EQ(cache.physicalBlocksInUse(), 0);
}

TEST(PagedKvCache, ForkSharesPartialTailLazily)
{
    const LlmConfig model = LlmConfig::llama3_8b();
    PagedKvCache cache(model, makeConfig(16.0, 1.0));
    // 20 tokens = 1 full block + 1 partial block.
    ASSERT_TRUE(cache.addSequence(1, 20).isOk());
    EXPECT_EQ(cache.physicalBlocksInUse(), 2);
    ASSERT_TRUE(cache.forkSequence(1, 2).isOk());
    // Everything is shared until someone writes — forking allocates
    // nothing.
    EXPECT_EQ(cache.physicalBlocksInUse(), 2);
    EXPECT_EQ(cache.logicalBlocksInUse(), 4);

    // The first append into the shared partial tail pays for the
    // divergence copy (copy-on-write).
    ASSERT_TRUE(cache.appendToken(1).isOk());
    EXPECT_EQ(cache.physicalBlocksInUse(), 3);
    // The other side now owns its tail exclusively and appends in
    // place.
    ASSERT_TRUE(cache.appendToken(2).isOk());
    EXPECT_EQ(cache.physicalBlocksInUse(), 3);
}

TEST(PagedKvCache, ForkSucceedsEvenWhenPoolIsFull)
{
    // Lazy sharing means forking cannot fail on exhaustion.
    const LlmConfig model = LlmConfig::llama3_8b();
    KvCacheConfig config = makeConfig(16.0, 1.0);
    PagedKvCache probe(model, config);
    config.memory_budget_bytes = probe.blockBytes() * 2;
    PagedKvCache cache(model, config);
    ASSERT_EQ(cache.totalBlocks(), 2);
    ASSERT_TRUE(cache.addSequence(1, 20).isOk()); // fills the pool
    ASSERT_EQ(cache.freeBlocks(), 0);
    EXPECT_TRUE(cache.forkSequence(1, 2).isOk());
    EXPECT_EQ(cache.sequenceTokens(2), 20);
    EXPECT_EQ(cache.physicalBlocksInUse(), 2);
}

TEST(PagedKvCache, CowTailCopyFailsCleanlyUnderExhaustion)
{
    // The divergence copy of a shared partial tail needs a free
    // block; when none exists, appendToken reports exhaustion with
    // no side effects instead of corrupting the chains.
    const LlmConfig model = LlmConfig::llama3_8b();
    KvCacheConfig config = makeConfig(16.0, 1.0);
    PagedKvCache probe(model, config);
    config.memory_budget_bytes = probe.blockBytes() * 2;
    PagedKvCache cache(model, config);
    ASSERT_EQ(cache.totalBlocks(), 2);
    ASSERT_TRUE(cache.addSequence(1, 20).isOk());
    ASSERT_TRUE(cache.forkSequence(1, 2).isOk());
    ASSERT_EQ(cache.freeBlocks(), 0);

    const Status status = cache.appendToken(1);
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(cache.sequenceTokens(1), 20); // unchanged
    EXPECT_EQ(cache.physicalBlocksInUse(), 2);

    // Freeing the other branch releases the sharing; the append now
    // proceeds in place without any allocation.
    cache.removeSequence(2);
    EXPECT_TRUE(cache.appendToken(1).isOk());
    EXPECT_EQ(cache.sequenceTokens(1), 21);
    EXPECT_EQ(cache.physicalBlocksInUse(), 2);
}

TEST(PagedKvCache, SharedFullTailGrowthFailsCleanlyUnderExhaustion)
{
    // The other exhaustion path: a sequence whose shared tail is
    // full needs a brand-new block to grow; failure must leave the
    // sharing intact.
    const LlmConfig model = LlmConfig::llama3_8b();
    KvCacheConfig config = makeConfig(16.0, 1.0);
    PagedKvCache probe(model, config);
    config.memory_budget_bytes = probe.blockBytes() * 2;
    PagedKvCache cache(model, config);
    ASSERT_TRUE(cache.addSequence(1, 32).isOk()); // 2 full blocks
    ASSERT_TRUE(cache.forkSequence(1, 2).isOk());
    ASSERT_EQ(cache.freeBlocks(), 0);

    EXPECT_EQ(cache.appendToken(1).code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(cache.appendToken(2).code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(cache.sequenceTokens(1), 32);
    EXPECT_EQ(cache.sequenceTokens(2), 32);
    EXPECT_EQ(cache.physicalBlocksInUse(), 2);

    // Growth past a full tail always needs a fresh block, so freeing
    // the sibling alone is not enough here; freeing the whole branch
    // is.
    cache.removeSequence(2);
    EXPECT_EQ(cache.appendToken(1).code(),
              StatusCode::kResourceExhausted);
    cache.removeSequence(1);
    ASSERT_TRUE(cache.addSequence(3, 16).isOk());
    EXPECT_TRUE(cache.appendToken(3).isOk());
}

TEST(PagedKvCache, ForkErrorsAreClean)
{
    const LlmConfig model = LlmConfig::llama3_8b();
    PagedKvCache cache(model, makeConfig(16.0, 1.0));
    ASSERT_TRUE(cache.addSequence(1, 16).isOk());
    EXPECT_EQ(cache.forkSequence(9, 10).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(cache.forkSequence(1, 1).code(),
              StatusCode::kInvalidArgument);
}

TEST(PagedKvCache, PreemptionVictimFreesOnlyPrivateBlocks)
{
    // Recompute-style preemption (BatchScheduler::preemptBack) frees
    // the victim with removeSequence. When the victim shares a
    // forked prefix with a still-live request, only its private
    // divergence blocks may come back — the survivor's prefix must
    // stay resident.
    const LlmConfig model = LlmConfig::llama3_8b();
    KvCacheConfig config = makeConfig(16.0, 1.0);
    PagedKvCache probe(model, config);
    config.memory_budget_bytes = probe.blockBytes() * 6;
    PagedKvCache cache(model, config);
    ASSERT_EQ(cache.totalBlocks(), 6);

    ASSERT_TRUE(cache.addSequence(1, 32).isOk()); // 2 shared blocks
    ASSERT_TRUE(cache.forkSequence(1, 2).isOk());
    ASSERT_TRUE(cache.appendToken(1).isOk()); // private tails
    ASSERT_TRUE(cache.appendToken(2).isOk());
    ASSERT_EQ(cache.physicalBlocksInUse(), 4);

    cache.removeSequence(2); // preempt the later arrival
    EXPECT_EQ(cache.physicalBlocksInUse(), 3);
    EXPECT_EQ(cache.freeBlocks(), 3);
    // The survivor is untouched and keeps decoding in place.
    EXPECT_EQ(cache.sequenceTokens(1), 33);
    ASSERT_TRUE(cache.appendToken(1).isOk());
    EXPECT_EQ(cache.physicalBlocksInUse(), 3);
}

TEST(PagedKvCache, PreemptionFreeThenReadmitOrderingUnderSharing)
{
    // The ordering edge the scheduler relies on: a preempted victim
    // re-prefills its FULL context as a fresh allocation (sharing is
    // not reconstructed), so the re-admission only fits AFTER the
    // victim's old private blocks are freed — free-then-readmit
    // succeeds where readmit-before-free must fail cleanly.
    const LlmConfig model = LlmConfig::llama3_8b();
    KvCacheConfig config = makeConfig(16.0, 1.0);
    PagedKvCache probe(model, config);
    config.memory_budget_bytes = probe.blockBytes() * 6;
    PagedKvCache cache(model, config);
    ASSERT_EQ(cache.totalBlocks(), 6);

    ASSERT_TRUE(cache.addSequence(1, 32).isOk());
    ASSERT_TRUE(cache.forkSequence(1, 2).isOk());
    ASSERT_TRUE(cache.appendToken(1).isOk());
    ASSERT_TRUE(cache.appendToken(2).isOk());
    ASSERT_EQ(cache.freeBlocks(), 2);

    // Re-prefilling the victim's 33-token context needs 3 blocks;
    // with the victim still holding its slot there are only 2 free.
    EXPECT_FALSE(cache.canAdmit(33));
    const Status early = cache.addSequence(3, 33);
    EXPECT_EQ(early.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(cache.freeBlocks(), 2); // failure leaked nothing

    // Free first, then re-admit under the same id: the recompute
    // copy owns all 3 of its blocks, no sharing with the survivor.
    cache.removeSequence(2);
    EXPECT_TRUE(cache.canAdmit(33));
    ASSERT_TRUE(cache.addSequence(2, 33).isOk());
    EXPECT_EQ(cache.sequenceTokens(2), 33);
    EXPECT_EQ(cache.physicalBlocksInUse(), 6);
    EXPECT_EQ(cache.freeBlocks(), 0);

    // The survivor's shared prefix stayed intact across the cycle,
    // and teardown accounts for every block exactly once.
    EXPECT_EQ(cache.sequenceTokens(1), 33);
    cache.removeSequence(1);
    EXPECT_EQ(cache.physicalBlocksInUse(), 3);
    cache.removeSequence(2);
    EXPECT_EQ(cache.physicalBlocksInUse(), 0);
    EXPECT_EQ(cache.freeBlocks(), cache.totalBlocks());
}

TEST(PagedKvCache, SchedulerPreemptionWithSharedPrefixEndToEnd)
{
    // The same ordering driven through the real scheduler: two
    // requests whose KV lives alongside a forked third sequence that
    // stays resident the whole time. Preemptions must never free the
    // bystander's shared blocks, and the run must still complete.
    const LlmConfig model = LlmConfig::llama3_8b();
    KvCacheConfig config = makeConfig(16.0, 1.0);
    PagedKvCache probe(model, config);
    config.memory_budget_bytes = probe.blockBytes() * 12;
    PagedKvCache cache(model, config);
    ASSERT_EQ(cache.totalBlocks(), 12);

    // A resident forked pair outside the scheduler: 2 shared blocks.
    ASSERT_TRUE(cache.addSequence(1000, 32).isOk());
    ASSERT_TRUE(cache.forkSequence(1000, 1001).isOk());
    ASSERT_EQ(cache.physicalBlocksInUse(), 2);

    // 10 blocks remain for the scheduler; two 32/64 requests admit
    // optimistically (2 blocks each) and exhaust the pool mid-decode.
    BatchScheduler scheduler(&cache);
    Request a;
    a.id = 1;
    a.prompt_tokens = 32;
    a.max_output_tokens = 64;
    Request b = a;
    b.id = 2;
    scheduler.submit(a);
    scheduler.submit(b);
    ASSERT_EQ(scheduler.admit(), 2);

    int64_t steps = 0;
    while (!scheduler.idle() && steps < 10000) {
        scheduler.admit();
        if (scheduler.runningCount() == 0)
            break;
        scheduler.step();
        ++steps;
        // The bystanders' shared prefix survives every preemption.
        ASSERT_EQ(cache.sequenceTokens(1000), 32);
        ASSERT_EQ(cache.sequenceTokens(1001), 32);
        ASSERT_GE(cache.physicalBlocksInUse(), 2);
    }
    EXPECT_EQ(scheduler.finishedCount(), 2);
    EXPECT_GT(scheduler.counters().preemptions, 0);

    // Only the forked pair's footprint remains.
    EXPECT_EQ(cache.physicalBlocksInUse(), 2);
    cache.removeSequence(1000);
    ASSERT_TRUE(cache.appendToken(1001).isOk()); // still usable
    cache.removeSequence(1001);
    EXPECT_EQ(cache.freeBlocks(), cache.totalBlocks());
}

TEST(PagedKvCache, ManyForksShareOnePrompt)
{
    // Parallel sampling: n completions over one prompt cost one
    // prompt's worth of physical blocks plus per-branch tails.
    const LlmConfig model = LlmConfig::llama3_8b();
    PagedKvCache cache(model, makeConfig(16.0, 1.0));
    ASSERT_TRUE(cache.addSequence(0, 64).isOk()); // 4 full blocks
    for (int64_t child = 1; child <= 8; ++child)
        ASSERT_TRUE(cache.forkSequence(0, child).isOk());
    EXPECT_EQ(cache.logicalBlocksInUse(), 9 * 4);
    EXPECT_EQ(cache.physicalBlocksInUse(), 4);
}

} // namespace
} // namespace comet

