/**
 * @file
 * Unit tests for the observability subsystem: counters, histograms,
 * the metrics registry, scoped spans, Chrome-trace export, env
 * activation, and the shared peak-KV-utilization definition.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "comet/kvcache/kv_cache.h"
#include "comet/obs/metrics.h"
#include "comet/obs/obs.h"
#include "comet/obs/trace_session.h"
#include "comet/runtime/thread_pool.h"
#include "comet/serve/batch_scheduler.h"
#include "comet/serve/trace.h"

namespace comet {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (no external deps): validates the whole
// exported trace parses, not just that a few substrings appear.

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text)
        : p_(text.c_str()), end_(text.c_str() + text.size())
    {
    }

    bool
    valid()
    {
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        return p_ == end_;
    }

  private:
    void
    skipWs()
    {
        while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' ||
                             *p_ == '\n' || *p_ == '\r'))
            ++p_;
    }

    bool
    parseValue()
    {
        if (p_ >= end_)
            return false;
        switch (*p_) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': return parseLiteral("true");
          case 'f': return parseLiteral("false");
          case 'n': return parseLiteral("null");
          default: return parseNumber();
        }
    }

    bool
    parseObject()
    {
        ++p_; // '{'
        skipWs();
        if (p_ < end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (p_ >= end_ || *p_ != ':')
                return false;
            ++p_;
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (p_ < end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            break;
        }
        if (p_ >= end_ || *p_ != '}')
            return false;
        ++p_;
        return true;
    }

    bool
    parseArray()
    {
        ++p_; // '['
        skipWs();
        if (p_ < end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (p_ < end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            break;
        }
        if (p_ >= end_ || *p_ != ']')
            return false;
        ++p_;
        return true;
    }

    bool
    parseString()
    {
        if (p_ >= end_ || *p_ != '"')
            return false;
        ++p_;
        while (p_ < end_ && *p_ != '"') {
            if (*p_ == '\\') {
                ++p_;
                if (p_ >= end_)
                    return false;
            }
            ++p_;
        }
        if (p_ >= end_)
            return false;
        ++p_; // closing quote
        return true;
    }

    bool
    parseNumber()
    {
        const char *start = p_;
        if (p_ < end_ && (*p_ == '-' || *p_ == '+'))
            ++p_;
        bool digits = false;
        while (p_ < end_ &&
               ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                *p_ == 'e' || *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
            if (*p_ >= '0' && *p_ <= '9')
                digits = true;
            ++p_;
        }
        return digits && p_ > start;
    }

    bool
    parseLiteral(const char *literal)
    {
        const size_t len = std::strlen(literal);
        if (static_cast<size_t>(end_ - p_) < len ||
            std::strncmp(p_, literal, len) != 0)
            return false;
        p_ += len;
        return true;
    }

    const char *p_;
    const char *end_;
};

/** Quiesce the global session so a test starts from a clean slate. */
void
resetSession()
{
    obs::TraceSession::global().stop();
    obs::TraceSession::global().drain();
}

int
countSpans(const std::vector<obs::SpanRecord> &spans, const char *name)
{
    int count = 0;
    for (const obs::SpanRecord &span : spans) {
        if (std::strcmp(span.name, name) == 0)
            ++count;
    }
    return count;
}

// ---------------------------------------------------------------------------
// Counters and histograms

TEST(ObsCounter, AddAndValue)
{
    obs::Counter counter;
    EXPECT_EQ(counter.value(), 0);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42);
    counter.reset();
    EXPECT_EQ(counter.value(), 0);
}

TEST(ObsHistogram, BucketAssignment)
{
    obs::Histogram histogram({1.0, 10.0});
    ASSERT_EQ(histogram.numBuckets(), 3u); // two bounds + overflow
    histogram.observe(0.5);  // <= 1.0
    histogram.observe(1.0);  // boundary lands in the first bucket
    histogram.observe(5.0);  // <= 10.0
    histogram.observe(99.0); // overflow
    EXPECT_EQ(histogram.count(), 4);
    EXPECT_DOUBLE_EQ(histogram.sum(), 105.5);
    EXPECT_EQ(histogram.bucketCount(0), 2);
    EXPECT_EQ(histogram.bucketCount(1), 1);
    EXPECT_EQ(histogram.bucketCount(2), 1);
    histogram.reset();
    EXPECT_EQ(histogram.count(), 0);
    EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
    EXPECT_EQ(histogram.bucketCount(0), 0);
}

TEST(ObsRegistry, CounterIdentityIsStable)
{
    obs::MetricsRegistry registry;
    obs::Counter &a = registry.counter("test.alpha");
    obs::Counter &b = registry.counter("test.alpha");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(registry.counterValue("test.alpha"), 7);
    EXPECT_EQ(registry.counterValue("test.never_registered"), 0);
    // reset zeroes values but keeps references valid.
    registry.reset();
    EXPECT_EQ(a.value(), 0);
    a.add(3);
    EXPECT_EQ(registry.counterValue("test.alpha"), 3);
}

TEST(ObsRegistry, HistogramBoundsFixedAtRegistration)
{
    obs::MetricsRegistry registry;
    obs::Histogram &h = registry.histogram("test.h", {1.0, 2.0});
    obs::Histogram &again = registry.histogram("test.h", {9.0});
    EXPECT_EQ(&h, &again);
    ASSERT_EQ(again.upperBounds().size(), 2u);
    EXPECT_DOUBLE_EQ(again.upperBounds()[0], 1.0);
}

TEST(ObsRegistry, DumpTextListsEveryMetric)
{
    obs::MetricsRegistry registry;
    registry.counter("test.c").add(5);
    registry.histogram("test.h", {1.0}).observe(0.5);
    std::ostringstream out;
    registry.dumpText(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("test.c 5"), std::string::npos);
    EXPECT_NE(text.find("test.h count=1"), std::string::npos);
    EXPECT_NE(text.find("test.h.bucket[le=1] 1"), std::string::npos);
    EXPECT_NE(text.find("test.h.bucket[le=+inf] 0"),
              std::string::npos);
}

TEST(ObsRegistry, DumpJsonIsValidJson)
{
    obs::MetricsRegistry registry;
    registry.counter("test.c").add(5);
    registry.histogram("test.h", {1.0, 2.0}).observe(1.5);
    const std::string json = registry.dumpJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"test.c\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Spans

TEST(ObsSpans, DisabledSessionRecordsNothing)
{
    resetSession();
    {
        COMET_SPAN("should_not_record");
    }
    EXPECT_EQ(obs::TraceSession::global().bufferedSpans(), 0);
    EXPECT_TRUE(obs::TraceSession::global().drain().empty());
}

TEST(ObsSpans, NestedSpansRecordDepthAndOrder)
{
    resetSession();
    obs::TraceSession::global().start();
    {
        COMET_SPAN("outer");
        {
            COMET_SPAN("inner");
        }
    }
    obs::TraceSession::global().stop();
    const std::vector<obs::SpanRecord> spans =
        obs::TraceSession::global().drain();
    ASSERT_EQ(spans.size(), 2u);
    // Sorted by begin time: outer opens first.
    EXPECT_STREQ(spans[0].name, "outer");
    EXPECT_STREQ(spans[1].name, "inner");
    EXPECT_EQ(spans[0].depth, 0);
    EXPECT_EQ(spans[1].depth, 1);
    // The inner interval nests inside the outer one.
    EXPECT_GE(spans[1].begin_ns, spans[0].begin_ns);
    EXPECT_LE(spans[1].end_ns, spans[0].end_ns);
    EXPECT_GE(spans[0].end_ns, spans[0].begin_ns);
}

TEST(ObsSpans, StopThenStartIsolatesSessions)
{
    resetSession();
    obs::TraceSession::global().start();
    {
        COMET_SPAN("first_session");
    }
    obs::TraceSession::global().stop();
    {
        COMET_SPAN("between_sessions"); // must not record
    }
    const auto spans = obs::TraceSession::global().drain();
    EXPECT_EQ(countSpans(spans, "first_session"), 1);
    EXPECT_EQ(countSpans(spans, "between_sessions"), 0);
}

TEST(ObsSpans, ThreadPoolChunksRecordSpans)
{
    resetSession();
    obs::TraceSession::global().start();
    std::vector<int64_t> data(1024, 0);
    parallelFor(0, static_cast<int64_t>(data.size()), 1,
                [&](int64_t begin, int64_t end) {
                    for (int64_t i = begin; i < end; ++i)
                        data[static_cast<size_t>(i)] = i;
                });
    obs::TraceSession::global().stop();
    const auto spans = obs::TraceSession::global().drain();
    EXPECT_GT(countSpans(spans, "pool/chunk"), 0);
}

TEST(ObsTrace, ChromeTraceJsonIsValidAndCarriesEvents)
{
    resetSession();
    obs::TraceSession::global().start();
    {
        COMET_SPAN("outer");
        {
            COMET_SPAN("inner");
        }
    }
    obs::TraceSession::global().stop();
    const std::string json =
        obs::TraceSession::global().chromeTraceJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // chromeTraceJson drains: a second export is empty but valid.
    const std::string empty =
        obs::TraceSession::global().chromeTraceJson();
    JsonChecker empty_checker(empty);
    EXPECT_TRUE(empty_checker.valid()) << empty;
    EXPECT_EQ(empty.find("\"name\":\"outer\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Serving-replay integration: the engine step loop must emit the
// documented span hierarchy, including preemption spans under KV
// pressure.

/** Engine whose KV budget is exactly @p blocks KV4 blocks. */
ServingEngine
makeTinyKvEngine(EngineConfig config, int64_t blocks)
{
    const KvCacheConfig probe_config{4.0, 16, 4.0, 64, 1e9};
    const PagedKvCache probe(config.model, probe_config);
    const double weights = ServingEngine(config).weightBytes();
    config.usable_memory_fraction =
        (weights +
         probe.blockBytes() * static_cast<double>(blocks)) /
        config.gpu.hbm_capacity_bytes;
    return ServingEngine(config);
}

TraceMetrics
replayTightKvBurst(int64_t *total_blocks_out = nullptr)
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 256;
    config.output_tokens = 256;
    const ServingEngine engine = makeTinyKvEngine(config, 300);
    TraceConfig trace_config;
    trace_config.num_requests = 16;
    trace_config.request_rate_per_s = 1000.0; // all at once
    trace_config.mean_prompt_tokens = 256;
    trace_config.mean_output_tokens = 256;
    const TraceMetrics metrics =
        replayTrace(engine, generateTrace(trace_config));
    if (total_blocks_out != nullptr)
        *total_blocks_out = metrics.total_kv_blocks;
    return metrics;
}

TEST(ObsReplay, ReplayEmitsNestedSchedulingSpans)
{
    resetSession();
    obs::TraceSession::global().start();
    const TraceMetrics metrics = replayTightKvBurst();
    obs::TraceSession::global().stop();
    ASSERT_GT(metrics.preemptions, 0); // the workload is KV-tight
    const auto spans = obs::TraceSession::global().drain();
    EXPECT_GT(countSpans(spans, "replay"), 0);
    EXPECT_GT(countSpans(spans, "replay/step"), 0);
    EXPECT_GT(countSpans(spans, "replay/admit"), 0);
    EXPECT_GT(countSpans(spans, "replay/prefill"), 0);
    EXPECT_GT(countSpans(spans, "replay/decode"), 0);
    EXPECT_GT(countSpans(spans, "replay/preempt"), 0);
    // Step spans nest under the one top-level replay span.
    for (const obs::SpanRecord &span : spans) {
        if (std::strcmp(span.name, "replay/step") == 0) {
            EXPECT_GE(span.depth, 1);
        }
        if (std::strcmp(span.name, "replay") == 0) {
            EXPECT_EQ(span.depth, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Activation plumbing (programmatic twin of COMET_TRACE)

TEST(ObsConfigTest, FlushTraceWritesLoadableJson)
{
    resetSession();
    const std::string path =
        ::testing::TempDir() + "comet_obs_trace_test.json";
    obs::ObsConfig config;
    config.spans = true;
    config.trace_path = path;
    obs::configure(config);
    EXPECT_TRUE(obs::TraceSession::enabled());
    {
        COMET_SPAN("configured_span");
    }
    const Status status = obs::flushTrace();
    ASSERT_TRUE(status.isOk()) << status.message();
    EXPECT_FALSE(obs::TraceSession::enabled()); // flush stops it

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream contents;
    contents << in.rdbuf();
    const std::string json = contents.str();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"name\":\"configured_span\""),
              std::string::npos);
    std::remove(path.c_str());
    obs::configure(obs::ObsConfig{}); // leave everything off
}

TEST(ObsConfigTest, ConfigFromEnvReadsCometTrace)
{
    ::setenv("COMET_TRACE", "/tmp/some_trace.json", 1);
    const obs::ObsConfig on = obs::configFromEnv();
    EXPECT_TRUE(on.spans);
    EXPECT_EQ(on.trace_path, "/tmp/some_trace.json");
    ::unsetenv("COMET_TRACE");
    const obs::ObsConfig off = obs::configFromEnv();
    EXPECT_FALSE(off.spans);
    EXPECT_TRUE(off.trace_path.empty());
}

// ---------------------------------------------------------------------------
// The peak-KV-utilization unit bugfix: one shared fraction definition.

TEST(KvUtilization, SchedulerDefinitionIsAFraction)
{
    SchedulerCounters counters;
    counters.peak_used_blocks = 50;
    EXPECT_DOUBLE_EQ(counters.peakKvUtilization(100), 0.5);
    EXPECT_DOUBLE_EQ(counters.peakKvUtilization(0), 0.0);
    counters.peak_used_blocks = 100;
    EXPECT_DOUBLE_EQ(counters.peakKvUtilization(100), 1.0);
}

TEST(KvUtilization, ReplayMetricsMatchTheSharedDefinition)
{
    // Regression for the unit bug: TraceMetrics must report the same
    // fraction SchedulerCounters::peakKvUtilization defines, never a
    // percent and never a different block accounting.
    int64_t total_blocks = 0;
    const TraceMetrics metrics = replayTightKvBurst(&total_blocks);
    ASSERT_GT(total_blocks, 0);
    ASSERT_GT(metrics.peak_used_blocks, 0);
    SchedulerCounters counters;
    counters.peak_used_blocks = metrics.peak_used_blocks;
    EXPECT_DOUBLE_EQ(metrics.peak_kv_utilization,
                     counters.peakKvUtilization(total_blocks));
    EXPECT_GT(metrics.peak_kv_utilization, 0.0);
    EXPECT_LE(metrics.peak_kv_utilization, 1.0);
}

TEST(KvUtilization, ReplayPublishesCountersToTheRegistry)
{
    obs::MetricsRegistry &registry = obs::MetricsRegistry::global();
    const int64_t completed_before =
        registry.counterValue("serve.replay.completed");
    const int64_t preemptions_before =
        registry.counterValue("serve.replay.preemptions");
    const TraceMetrics metrics = replayTightKvBurst();
    EXPECT_EQ(registry.counterValue("serve.replay.completed") -
                  completed_before,
              static_cast<int64_t>(metrics.per_request.size()));
    EXPECT_EQ(registry.counterValue("serve.replay.preemptions") -
                  preemptions_before,
              metrics.preemptions);
}

} // namespace
} // namespace comet
