/**
 * @file
 * Unit tests for the comet::prefix subsystem: chained content keys
 * (determinism, namespace/geometry separation, shared-prefix
 * structure), the flat radix index (match semantics, insert rules,
 * deterministic leaf-LRU eviction), and the reference-holding
 * PrefixCache (refcount accounting, graft failpoint, eviction under
 * live sequences, metrics/stats).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "comet/chaos/failpoint.h"
#include "comet/common/rng.h"
#include "comet/kvcache/block_allocator.h"
#include "comet/prefix/block_key.h"
#include "comet/prefix/prefix_cache.h"
#include "comet/prefix/radix_index.h"

namespace comet {
namespace prefix {
namespace {

std::vector<int32_t>
tokensFromSeed(uint64_t seed, int64_t count)
{
    Rng rng(seed);
    std::vector<int32_t> ids;
    ids.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
        ids.push_back(static_cast<int32_t>(rng.uniformInt(32000)));
    }
    return ids;
}

TEST(BlockKeyTest, FullBlocksOnlyAndDeterministic)
{
    KeySpace space;
    space.block_tokens = 16;
    const auto tokens = tokensFromSeed(1, 16 * 3 + 7);
    const auto keys = chainBlockKeys(space, tokens);
    ASSERT_EQ(keys.size(), 3u); // the trailing 7 tokens are not keyed
    EXPECT_EQ(keys, chainBlockKeys(space, tokens));
    for (const BlockKey key : keys) {
        EXPECT_NE(key, 0u); // 0 is the no-parent sentinel
    }
}

TEST(BlockKeyTest, SharedPrefixSharesKeysUntilDivergence)
{
    KeySpace space;
    auto a = tokensFromSeed(2, 64);
    auto b = a;
    b[40] ^= 1; // diverge inside block 2
    const auto ka = chainBlockKeys(space, a);
    const auto kb = chainBlockKeys(space, b);
    ASSERT_EQ(ka.size(), 4u);
    EXPECT_EQ(ka[0], kb[0]);
    EXPECT_EQ(ka[1], kb[1]);
    EXPECT_NE(ka[2], kb[2]);
    // Chaining: once diverged, keys never re-converge even though
    // the block-3 tokens are identical again.
    EXPECT_NE(ka[3], kb[3]);
}

TEST(BlockKeyTest, NamespaceAndGeometrySeparateKeySpaces)
{
    const auto tokens = tokensFromSeed(3, 32);
    KeySpace base;
    const auto base_keys = chainBlockKeys(base, tokens);

    KeySpace other_ns = base;
    other_ns.namespace_id = 1;
    KeySpace other_bits = base;
    other_bits.bits_per_value = 8.0;
    KeySpace other_group = base;
    other_group.quant_group_tokens = 32;
    for (const auto &space : {other_ns, other_bits, other_group}) {
        const auto keys = chainBlockKeys(space, tokens);
        ASSERT_EQ(keys.size(), base_keys.size());
        for (size_t i = 0; i < keys.size(); ++i) {
            EXPECT_NE(keys[i], base_keys[i]) << "block " << i;
        }
    }
}

TEST(RadixIndexTest, MatchWalksChainAndStopsAtFirstMiss)
{
    RadixIndex index;
    KeySpace space;
    const auto tokens = tokensFromSeed(4, 64);
    const auto keys = chainBlockKeys(space, tokens);
    ASSERT_EQ(keys.size(), 4u);
    // Index only the first three blocks.
    for (int64_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(index.insert(0, keys[static_cast<size_t>(i)],
                                 i == 0 ? 0 : keys[static_cast<size_t>(i - 1)],
                                 i, 100 + i));
    }
    std::vector<int64_t> blocks;
    EXPECT_EQ(index.match(0, keys, 8, &blocks), 3);
    EXPECT_EQ(blocks, (std::vector<int64_t>{100, 101, 102}));

    blocks.clear();
    EXPECT_EQ(index.match(0, keys, 2, &blocks), 2); // cap respected
    EXPECT_EQ(blocks, (std::vector<int64_t>{100, 101}));

    blocks.clear();
    EXPECT_EQ(index.match(7, keys, 8, &blocks), 0); // wrong namespace
    EXPECT_TRUE(blocks.empty());
}

TEST(RadixIndexTest, InsertRejectsDuplicatesAndOrphans)
{
    RadixIndex index;
    EXPECT_FALSE(index.insert(0, 11, 10, 1, 0)); // parent 10 absent
    ASSERT_TRUE(index.insert(0, 10, 0, 0, 0));
    EXPECT_FALSE(index.insert(0, 10, 0, 0, 1)); // duplicate keeps first
    ASSERT_TRUE(index.insert(0, 11, 10, 1, 1));
    EXPECT_EQ(index.size(), 2);
    EXPECT_EQ(index.find(10)->block, 0);
}

TEST(RadixIndexTest, EvictionIsLeafFirstAndLruOrdered)
{
    RadixIndex index;
    // Two chains under one namespace: a->b->c and a->b->d.
    ASSERT_TRUE(index.insert(0, 1, 0, 0, 10));
    ASSERT_TRUE(index.insert(0, 2, 1, 1, 11));
    ASSERT_TRUE(index.insert(0, 3, 2, 2, 12));
    ASSERT_TRUE(index.insert(0, 4, 2, 2, 13));
    // Touch the c-leaf (key 3) so the d-leaf (key 4) is LRU.
    std::vector<int64_t> blocks;
    index.match(0, {1, 2, 3}, 8, &blocks);

    IndexNode victim;
    auto always = [](int64_t) { return true; };
    ASSERT_TRUE(index.evictLru(always, &victim));
    EXPECT_EQ(victim.block, 13); // LRU leaf, never the interior nodes
    ASSERT_TRUE(index.evictLru(always, &victim));
    EXPECT_EQ(victim.block, 12);
    ASSERT_TRUE(index.evictLru(always, &victim));
    EXPECT_EQ(victim.block, 11); // parents become leaves bottom-up
    ASSERT_TRUE(index.evictLru(always, &victim));
    EXPECT_EQ(victim.block, 10);
    EXPECT_FALSE(index.evictLru(always, &victim));
    EXPECT_EQ(index.size(), 0);
}

TEST(RadixIndexTest, EvictionSkipsPinnedBlocks)
{
    RadixIndex index;
    ASSERT_TRUE(index.insert(0, 1, 0, 0, 10));
    ASSERT_TRUE(index.insert(0, 2, 1, 1, 11));
    IndexNode victim;
    // The only leaf (block 11) is pinned: nothing evictable, even
    // though the root block 10 passes the predicate (it has a child).
    EXPECT_FALSE(index.evictLru(
        [](int64_t block) { return block != 11; }, &victim));
    ASSERT_TRUE(index.evictLru(
        [](int64_t) { return true; }, &victim));
    EXPECT_EQ(victim.block, 11);
}

TEST(PrefixCacheTest, InsertHoldsOneReferencePerPage)
{
    BlockAllocator allocator(8);
    PrefixCache cache(&allocator, 1024);
    const int64_t b0 = allocator.allocate().value();
    const int64_t b1 = allocator.allocate().value();
    EXPECT_EQ(cache.insert(0, {101, 102}, {b0, b1}), 2);
    EXPECT_EQ(allocator.refCount(b0), 2); // owner + cache
    EXPECT_EQ(allocator.refCount(b1), 2);
    // Re-offering the same chain indexes nothing and takes no refs.
    EXPECT_EQ(cache.insert(0, {101, 102}, {b0, b1}), 0);
    EXPECT_EQ(allocator.refCount(b0), 2);

    // The owner releases its refs; pages survive via the cache.
    allocator.release(b0);
    allocator.release(b1);
    EXPECT_EQ(allocator.usedBlocks(), 2);
    EXPECT_EQ(cache.evictableBlocks(), 2);

    cache.clear();
    EXPECT_EQ(allocator.usedBlocks(), 0);
    EXPECT_EQ(cache.ownedBlocks(), 0);
}

TEST(PrefixCacheTest, MatchDoesNotTakeReferences)
{
    BlockAllocator allocator(8);
    PrefixCache cache(&allocator, 1024);
    const int64_t b0 = allocator.allocate().value();
    ASSERT_EQ(cache.insert(0, {101}, {b0}), 1);
    std::vector<int64_t> blocks;
    EXPECT_EQ(cache.match(0, {101, 999}, 8, &blocks), 1);
    EXPECT_EQ(blocks, (std::vector<int64_t>{b0}));
    EXPECT_EQ(allocator.refCount(b0), 2); // unchanged: caller grafts
    EXPECT_EQ(cache.stats().hits, 1);
    EXPECT_EQ(cache.stats().blocks_matched, 1);
    EXPECT_EQ(cache.stats().bytes_saved, 1024);

    blocks.clear();
    EXPECT_EQ(cache.match(1, {101}, 8, &blocks), 0); // namespace miss
    EXPECT_EQ(cache.stats().misses, 1);
}

TEST(PrefixCacheTest, EvictionReleasesOnlyIndexOnlyLeaves)
{
    BlockAllocator allocator(8);
    PrefixCache cache(&allocator, 1024);
    const int64_t b0 = allocator.allocate().value();
    const int64_t b1 = allocator.allocate().value();
    ASSERT_EQ(cache.insert(0, {101, 102}, {b0, b1}), 2);
    // b1 still owned by a live sequence (refcount 3 after insert's
    // +1 and the owner's) -> not evictable; b0 is interior.
    allocator.addRef(b1);
    allocator.release(b0); // owner drops b0: refcount 1, but interior
    EXPECT_EQ(cache.evictableBlocks(), 1);
    EXPECT_FALSE(cache.evictOne());

    allocator.release(b1); // owner's original ref
    allocator.release(b1); // the "live sequence" ref
    EXPECT_EQ(cache.evictableBlocks(), 2);
    EXPECT_TRUE(cache.evictOne()); // leaf b1 first
    EXPECT_TRUE(cache.evictOne()); // then b0, now a leaf
    EXPECT_FALSE(cache.evictOne());
    EXPECT_EQ(allocator.usedBlocks(), 0);
    EXPECT_EQ(cache.stats().blocks_evicted, 2);
}

TEST(PrefixCacheTest, GraftFailpointForcesRecoverableMiss)
{
    BlockAllocator allocator(8);
    PrefixCache cache(&allocator, 1024);
    const int64_t b0 = allocator.allocate().value();
    ASSERT_EQ(cache.insert(0, {101}, {b0}), 1);

    chaos::FailPointRegistry::global().arm(
        "prefix.graft", chaos::FailPointSpec::everyNth(2));
    std::vector<int64_t> blocks;
    EXPECT_EQ(cache.match(0, {101}, 8, &blocks), 1); // hit 1: no fire
    EXPECT_EQ(cache.match(0, {101}, 8, &blocks), 0); // hit 2: fires
    EXPECT_EQ(cache.stats().forced_misses, 1);
    EXPECT_EQ(cache.match(0, {101}, 8, &blocks), 1); // recovered
    chaos::FailPointRegistry::global().disarmAll();
}

} // namespace
} // namespace prefix
} // namespace comet
