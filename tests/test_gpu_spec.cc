/**
 * @file
 * Unit tests for the GPU spec (paper Section 2.3 numbers).
 */
#include <gtest/gtest.h>

#include "comet/gpusim/gpu_spec.h"

namespace comet {
namespace {

TEST(GpuSpec, A100NumbersMatchPaper)
{
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    EXPECT_EQ(spec.num_sms, 108);
    EXPECT_DOUBLE_EQ(spec.hbm_capacity_bytes, 80.0e9);
    EXPECT_DOUBLE_EQ(spec.hbm_bandwidth, 2.0e12);
    EXPECT_DOUBLE_EQ(spec.fp16_tensor_ops, 312.0e12);
    EXPECT_DOUBLE_EQ(spec.int8_tensor_ops, 624.0e12);
    EXPECT_DOUBLE_EQ(spec.int4_tensor_ops, 1248.0e12);
}

TEST(GpuSpec, PrecisionDoublingLadder)
{
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    EXPECT_DOUBLE_EQ(spec.int8_tensor_ops, 2.0 * spec.fp16_tensor_ops);
    EXPECT_DOUBLE_EQ(spec.int4_tensor_ops, 2.0 * spec.int8_tensor_ops);
}

TEST(GpuSpec, CudaCoresThirtyTwoTimesSlowerThanInt8)
{
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    EXPECT_NEAR(spec.int8_tensor_ops / spec.cuda_core_ops, 32.0, 1e-9);
}

TEST(GpuSpec, TensorOpsDispatch)
{
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    EXPECT_DOUBLE_EQ(spec.tensorOps(4), spec.int4_tensor_ops);
    EXPECT_DOUBLE_EQ(spec.tensorOps(8), spec.int8_tensor_ops);
    EXPECT_DOUBLE_EQ(spec.tensorOps(16), spec.fp16_tensor_ops);
}

TEST(GpuSpecDeathTest, UnsupportedPrecision)
{
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    EXPECT_DEATH(spec.tensorOps(2), "unsupported");
}

} // namespace
} // namespace comet
