/**
 * @file
 * Unit tests for the deterministic RNG.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comet/common/rng.h"

namespace comet {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(9);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 10000; ++i)
        ++counts[static_cast<size_t>(rng.uniformInt(10))];
    for (int count : counts) {
        EXPECT_GT(count, 800);
        EXPECT_LT(count, 1200);
    }
}

TEST(Rng, GaussianMomentsAreSane)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / kSamples, 0.0, 0.03);
    EXPECT_NEAR(sq / kSamples, 1.0, 0.05);
}

TEST(Rng, GaussianShiftAndScale)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / 10000.0, 5.0, 0.1);
}

TEST(Rng, LogNormalIsPositiveAndHeavyTailed)
{
    Rng rng(17);
    double max_val = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.logNormal(0.0, 1.0);
        ASSERT_GT(v, 0.0);
        max_val = std::max(max_val, v);
    }
    EXPECT_GT(max_val, 10.0); // heavy tail reaches far
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng rng(19);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(23);
    Rng child = parent.split();
    // The child stream must not replay the parent's.
    Rng parent_replay(23);
    parent_replay.nextU64(); // consume the split draw
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (child.nextU64() == parent_replay.nextU64())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, FillGaussianFillsEverything)
{
    Rng rng(29);
    std::vector<float> out(513, 0.0f);
    rng.fillGaussian(out, 10.0, 0.1);
    for (float v : out)
        EXPECT_GT(v, 5.0f);
}

} // namespace
} // namespace comet
