/**
 * @file
 * Unit tests for the deterministic RNG.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comet/common/rng.h"

namespace comet {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(9);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 10000; ++i)
        ++counts[static_cast<size_t>(rng.uniformInt(10))];
    for (int count : counts) {
        EXPECT_GT(count, 800);
        EXPECT_LT(count, 1200);
    }
}

TEST(Rng, GaussianMomentsAreSane)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / kSamples, 0.0, 0.03);
    EXPECT_NEAR(sq / kSamples, 1.0, 0.05);
}

TEST(Rng, GaussianShiftAndScale)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / 10000.0, 5.0, 0.1);
}

TEST(Rng, LogNormalIsPositiveAndHeavyTailed)
{
    Rng rng(17);
    double max_val = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.logNormal(0.0, 1.0);
        ASSERT_GT(v, 0.0);
        max_val = std::max(max_val, v);
    }
    EXPECT_GT(max_val, 10.0); // heavy tail reaches far
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng rng(19);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(23);
    Rng child = parent.split();
    // The child stream must not replay the parent's.
    Rng parent_replay(23);
    parent_replay.nextU64(); // consume the split draw
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (child.nextU64() == parent_replay.nextU64())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, GoldenSeedsPinTheRawStream)
{
    // Frozen first draws for fixed seeds. Any change here silently
    // reshuffles every seeded experiment, chaos script, and fault
    // schedule in the repo — if this test fails, the generator
    // changed, and every recorded seed is invalidated.
    Rng one(1);
    EXPECT_EQ(one.nextU64(), 12966619160104079557ull);
    EXPECT_EQ(one.nextU64(), 9600361134598540522ull);
    EXPECT_EQ(one.nextU64(), 10590380919521690900ull);
    EXPECT_EQ(one.nextU64(), 7218738570589545383ull);
    Rng fortytwo(42);
    EXPECT_EQ(fortytwo.nextU64(), 1546998764402558742ull);
    EXPECT_EQ(fortytwo.nextU64(), 6990951692964543102ull);
    EXPECT_EQ(fortytwo.nextU64(), 12544586762248559009ull);
    EXPECT_EQ(fortytwo.nextU64(), 17057574109182124193ull);
}

TEST(Rng, GoldenSeedsPinTheDerivedDraws)
{
    // uniform() is an exact bit-manipulation of nextU64, so the
    // doubles are pinned exactly.
    Rng seven(7);
    EXPECT_EQ(seven.uniform(), 0.7005764821796896);
    EXPECT_EQ(seven.uniform(), 0.27875122947378428);
    EXPECT_EQ(seven.uniform(), 0.83962746187641979);
    Rng bounded(123);
    const uint64_t expected[6] = {97, 98, 67, 30, 94, 54};
    for (uint64_t value : expected)
        EXPECT_EQ(bounded.uniformInt(100), value);
    // gaussian() routes through libm (log/sqrt/cos), so pin it to a
    // tolerance instead of exact bits.
    Rng nine(9);
    EXPECT_NEAR(nine.gaussian(), -0.032304659861016924, 1e-12);
    EXPECT_NEAR(nine.gaussian(), 3.4519883432435554, 1e-12);
    EXPECT_NEAR(nine.gaussian(), -0.21820117446473322, 1e-12);
}

TEST(Rng, FillGaussianFillsEverything)
{
    Rng rng(29);
    std::vector<float> out(513, 0.0f);
    rng.fillGaussian(out, 10.0, 0.1);
    for (float v : out)
        EXPECT_GT(v, 5.0f);
}

} // namespace
} // namespace comet
