/**
 * @file
 * Reproduces Table 2: zero-shot accuracy on five multiple-choice
 * tasks for two model sizes, across the quantization configurations.
 *
 * Substitution: synthetic tasks generated from the teacher model (see
 * zeroshot.h) replace PIQA/ARC/HellaSwag/WinoGrande; the "8B" and
 * "70B" rows are two teachers with different outlier strength. The
 * reproduced shape: quantized configurations lose a few points at
 * most, with FMPQ ~ QoQ ~ W4A16 and everything far above chance.
 */
#include <cstdio>

#include "bench_flags.h"
#include <vector>

#include "comet/common/table.h"
#include "comet/model/perplexity.h"
#include "comet/model/zeroshot.h"

using namespace comet;

namespace {

const std::vector<QuantScheme> kTable2Schemes = {
    QuantScheme::kFp16, QuantScheme::kSmoothQuantW8A8,
    QuantScheme::kOmniquantW4A16, QuantScheme::kQoqW4A8Kv4,
    QuantScheme::kFmpqW4AxKv4};

} // namespace

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Table 2: zero-shot accuracy across quantization configurations (synthetic substitution)");
    std::printf("=== Table 2: zero-shot accuracy (synthetic task "
                "substitution; higher is better) ===\n\n");

    struct SizeEntry {
        const char *label;
        uint64_t seed;
        double outlier_scale;
    };
    const SizeEntry sizes[] = {{"8B-t", 301, 18.0},
                               {"70B-t", 302, 24.0}};

    for (const SizeEntry &size : sizes) {
        TinyTransformerConfig config;
        config.vocab_size = 96;
        config.hidden_size = 64;
        config.num_heads = 4;
        config.num_kv_heads = 4;
        config.num_layers = 2;
        config.intermediate_size = 128;
        config.outlier_fraction = 0.06;
        config.outlier_scale = size.outlier_scale;
        config.seed = size.seed;
        const auto teacher = TinyTransformer::random(config);

        Rng rng(size.seed + 7);
        const Dataset calib = sampleDataset(teacher, 3, 24, rng);
        const CalibrationData calibration =
            CalibrationData::collect(teacher, calib);
        const auto suite = buildZeroshotSuite(teacher, size.seed);

        std::vector<std::string> headers{"Configuration", "Method"};
        for (const ZeroshotTask &task : suite)
            headers.push_back(task.name);
        headers.push_back("Avg.");
        Table table(headers);

        std::printf("--- Size %s ---\n", size.label);
        for (QuantScheme scheme : kTable2Schemes) {
            const QuantizedModel quantized =
                buildQuantizedModel(teacher, scheme, calibration);
            std::vector<std::string> row{
                quantSchemePrecision(scheme),
                quantSchemeName(scheme)};
            double sum = 0.0;
            for (const ZeroshotTask &task : suite) {
                const double accuracy = evaluateZeroshotAccuracy(
                    quantized.model, quantized.sim(), task);
                sum += accuracy;
                row.push_back(formatDouble(100.0 * accuracy, 1));
            }
            row.push_back(formatDouble(
                100.0 * sum / static_cast<double>(suite.size()), 1));
            table.addRow(std::move(row));
        }
        table.print();
        std::printf("\n");
    }
    std::printf("Paper-shape checks: quantized rows within a few "
                "points of FP16; FMPQ comparable to QoQ and W4A16; "
                "all far above chance (50%% binary / 25%% "
                "4-way).\n");
    return 0;
}
