/**
 * @file
 * Reproduces Figure 13: ablation of the W4Ax kernel optimizations —
 * SIMT-enhanced software pipeline, weight interleaving, and fast
 * INT4->INT8 conversion — on LLaMA-3 GEMM shapes across batch sizes
 * 16-256. Reported as latency normalized to the fully optimized
 * kernel (lower is better; the paper measures 1.69x / 1.27x / 1.53x
 * degradations).
 */
#include <cstdio>

#include "bench_flags.h"
#include <vector>

#include "comet/common/table.h"
#include "comet/gpusim/kernel_sim.h"
#include "comet/model/layer_shapes.h"

using namespace comet;

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Figure 13: W4Ax kernel optimization ablation (pipeline/interleave/fast-convert)");
    const KernelSimulator sim;
    std::printf("=== Figure 13: W4Ax kernel optimization ablation "
                "(normalized latency, lower is better) ===\n\n");

    const auto variants = figure13Variants();
    std::vector<std::string> headers{"model", "batch"};
    for (const W4AxVariant &variant : variants)
        headers.push_back(variant.name);
    Table table(headers);

    const LlmConfig models[] = {LlmConfig::llama3_8b(),
                                LlmConfig::llama3_70b()};

    std::vector<double> sums(variants.size(), 0.0);
    for (const LlmConfig &model : models) {
        for (int64_t batch : {16, 64, 256}) {
            // Aggregate over the model's decoder GEMMs, as the paper
            // profiles whole linear layers.
            std::vector<double> latency(variants.size(), 0.0);
            for (const LayerGemm &gemm :
                 decoderLayerGemms(model, batch)) {
                for (size_t vi = 0; vi < variants.size(); ++vi) {
                    latency[vi] += sim.variantLatencyUs(
                        gemm.shape, variants[vi]);
                }
            }
            std::vector<std::string> row{model.name,
                                         std::to_string(batch)};
            for (size_t vi = 0; vi < variants.size(); ++vi) {
                row.push_back(
                    formatDouble(latency[vi] / latency[0], 2));
                sums[vi] += latency[vi] / latency[0];
            }
            table.addRow(std::move(row));
        }
        table.addSeparator();
    }
    table.print();

    const double count = 6.0;
    std::printf("\nAverage degradation when removing each "
                "optimization:\n");
    std::printf("  w/o software pipeline:   %s (paper: 1.69x)\n",
                formatSpeedup(sums[1] / count).c_str());
    std::printf("  w/o weight interleaving: %s (paper: 1.27x)\n",
                formatSpeedup(sums[2] / count).c_str());
    std::printf("  w/o fast conversion:     %s (paper: 1.53x)\n",
                formatSpeedup(sums[3] / count).c_str());
    return 0;
}
