/**
 * @file
 * Microbenchmarks (google-benchmark) of the bit-exact kernel
 * emulation paths, plus the Section 4.3 instruction-count claims.
 *
 * Unlike the figure benches (which report *simulated* GPU time),
 * these numbers are real measured CPU time of the packed-data
 * routines — useful for keeping the emulation itself fast and for
 * validating the relative instruction costs (fast conversion is an
 * order of magnitude cheaper than naive, interleaving is free at run
 * time because it happens offline).
 */
#include <benchmark/benchmark.h>

#include "bench_flags.h"

#include <atomic>

#include "comet/common/rng.h"
#include "comet/kernel/convert.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/kernel/int4_pack.h"
#include "comet/kernel/interleave.h"
#include "comet/kernel/mma.h"
#include "comet/model/synthetic.h"
#include "comet/runtime/thread_pool.h"

namespace comet {
namespace {

void
BM_PackInt4x8(benchmark::State &state)
{
    Rng rng(1);
    std::array<int8_t, 8> values{};
    for (auto &v : values) {
        v = static_cast<int8_t>(
            static_cast<int>(rng.uniformInt(16)) - 8);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(packInt4x8(values));
    }
}
BENCHMARK(BM_PackInt4x8);

void
BM_NaiveConversion(benchmark::State &state)
{
    uint32_t word = 0x9abcdef1u;
    for (auto _ : state) {
        benchmark::DoNotOptimize(naiveInt4ToInt8(word));
        word += 0x01010101u;
    }
}
BENCHMARK(BM_NaiveConversion);

void
BM_FastConversion(benchmark::State &state)
{
    uint32_t word = 0x9abcdef1u;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fastInt4ToInt8(word));
        word += 0x01010101u;
    }
}
BENCHMARK(BM_FastConversion);

void
BM_LocationSwitch(benchmark::State &state)
{
    uint32_t word = 0x13572468u;
    for (auto _ : state) {
        benchmark::DoNotOptimize(locationSwitch(word));
        word += 7;
    }
}
BENCHMARK(BM_LocationSwitch);

void
BM_Dp4a(benchmark::State &state)
{
    int32_t acc = 0;
    uint32_t a = 0x01020304u, b = 0x05060708u;
    for (auto _ : state) {
        acc = dp4a(a, b, acc);
        benchmark::DoNotOptimize(acc);
        a ^= 0x10101010u;
    }
}
BENCHMARK(BM_Dp4a);

void
BM_InterleaveWeights(benchmark::State &state)
{
    const int64_t cols = state.range(0);
    Rng rng(2);
    Int4Tensor w(8, cols);
    for (int64_t r = 0; r < 8; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            w.set(r, c,
                  static_cast<int8_t>(
                      static_cast<int>(rng.uniformInt(16)) - 8));
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(prepareWeightsForW4A8(w));
    }
    state.SetItemsProcessed(state.iterations() * 8 * cols);
}
BENCHMARK(BM_InterleaveWeights)->Arg(128)->Arg(1024);

void
BM_W4AxGemmEmulation(benchmark::State &state)
{
    const int64_t tokens = state.range(0);
    Rng rng(3);
    SyntheticActivationConfig act_config;
    act_config.channels = 256;
    act_config.outlier_fraction = 0.02;
    const SyntheticActivationModel model(act_config);

    FmpqConfig fmpq_config;
    fmpq_config.block_size = 64;
    const auto quantizer = FmpqActivationQuantizer::calibrate(
        model.sample(64, rng), fmpq_config);
    const auto activation =
        quantizer.quantize(model.sample(tokens, rng));
    const auto weight =
        quantizer.quantizeWeight(sampleWeights(64, 256, rng));
    W4AxGemmConfig config;
    config.tile_m = 16;
    config.tile_n = 16;
    config.tile_k = 64;
    const W4AxGemm gemm(weight, quantizer.blockPrecisions(), config);

    for (auto _ : state) {
        benchmark::DoNotOptimize(gemm.run(activation));
    }
    state.SetItemsProcessed(state.iterations() * tokens * 64 * 256);
}
BENCHMARK(BM_W4AxGemmEmulation)->Arg(8)->Arg(32);

void
BM_W4AxGemmEmulationThreaded(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    Rng rng(4);
    SyntheticActivationConfig act_config;
    act_config.channels = 256;
    act_config.outlier_fraction = 0.02;
    const SyntheticActivationModel model(act_config);
    FmpqConfig fmpq_config;
    fmpq_config.block_size = 64;
    const auto quantizer = FmpqActivationQuantizer::calibrate(
        model.sample(64, rng), fmpq_config);
    const auto activation =
        quantizer.quantize(model.sample(64, rng));
    const auto weight =
        quantizer.quantizeWeight(sampleWeights(256, 256, rng));
    W4AxGemmConfig config;
    config.tile_m = 16;
    config.tile_n = 16;
    config.tile_k = 64;
    config.threads = threads;
    const W4AxGemm gemm(weight, quantizer.blockPrecisions(), config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gemm.run(activation));
    }
    state.SetItemsProcessed(state.iterations() * 64 * 256 * 256);
}
BENCHMARK(BM_W4AxGemmEmulationThreaded)->Arg(1)->Arg(2)->Arg(4);

void
BM_ParallelForDispatch(benchmark::State &state)
{
    // Fixed-size pool, empty chunk bodies: measures the pure cost of
    // posting a region, waking workers, and waiting for completion —
    // the overhead floor every ported hot path pays per call.
    const int threads = static_cast<int>(state.range(0));
    ThreadPool pool(threads);
    std::atomic<int64_t> sink{0};
    for (auto _ : state) {
        pool.parallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
            sink.fetch_add(e - b, std::memory_order_relaxed);
        });
    }
    benchmark::DoNotOptimize(sink.load());
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4);

} // namespace
} // namespace comet

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(
        argc, argv,
        "google-benchmark timings of the bit-exact kernel emulation "
        "paths",
        {}, /*passthrough_prefix=*/"--benchmark_");
    // Print the Section 4.3 instruction-count claims alongside the
    // timing numbers.
    comet::InstructionCounter naive, fast;
    comet::naiveInt4ToInt8(0x12345678u, &naive);
    comet::fastInt4ToInt8(0x12345678u, &fast);
    std::printf("Section 4.3 instruction counts per 8-value register: "
                "naive=%lld (%.1f/value), fast=%lld (paper: ~10/value "
                "vs 2 per conversion)\n",
                static_cast<long long>(naive.count()),
                static_cast<double>(naive.count()) / 8.0,
                static_cast<long long>(fast.count()));

    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
