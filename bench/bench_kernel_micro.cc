/**
 * @file
 * Microbenchmarks (google-benchmark) of the bit-exact kernel
 * emulation paths, plus the Section 4.3 instruction-count claims.
 *
 * Unlike the figure benches (which report *simulated* GPU time),
 * these numbers are real measured CPU time of the packed-data
 * routines — useful for keeping the emulation itself fast and for
 * validating the relative instruction costs (fast conversion is an
 * order of magnitude cheaper than naive, interleaving is free at run
 * time because it happens offline).
 */
#include <benchmark/benchmark.h>

#include "bench_flags.h"
#include "bench_report.h"

#include <atomic>
#include <chrono>
#include <vector>

#include "comet/common/rng.h"
#include "comet/kernel/convert.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/kernel/int4_pack.h"
#include "comet/kernel/interleave.h"
#include "comet/kernel/mma.h"
#include "comet/model/synthetic.h"
#include "comet/runtime/thread_pool.h"
#include "comet/simd/simd.h"

namespace comet {
namespace {

void
BM_PackInt4x8(benchmark::State &state)
{
    Rng rng(1);
    std::array<int8_t, 8> values{};
    for (auto &v : values) {
        v = static_cast<int8_t>(
            static_cast<int>(rng.uniformInt(16)) - 8);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(packInt4x8(values));
    }
}
BENCHMARK(BM_PackInt4x8);

void
BM_NaiveConversion(benchmark::State &state)
{
    uint32_t word = 0x9abcdef1u;
    for (auto _ : state) {
        benchmark::DoNotOptimize(naiveInt4ToInt8(word));
        word += 0x01010101u;
    }
}
BENCHMARK(BM_NaiveConversion);

void
BM_FastConversion(benchmark::State &state)
{
    uint32_t word = 0x9abcdef1u;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fastInt4ToInt8(word));
        word += 0x01010101u;
    }
}
BENCHMARK(BM_FastConversion);

void
BM_LocationSwitch(benchmark::State &state)
{
    uint32_t word = 0x13572468u;
    for (auto _ : state) {
        benchmark::DoNotOptimize(locationSwitch(word));
        word += 7;
    }
}
BENCHMARK(BM_LocationSwitch);

void
BM_Dp4a(benchmark::State &state)
{
    int32_t acc = 0;
    uint32_t a = 0x01020304u, b = 0x05060708u;
    for (auto _ : state) {
        acc = dp4a(a, b, acc);
        benchmark::DoNotOptimize(acc);
        a ^= 0x10101010u;
    }
}
BENCHMARK(BM_Dp4a);

void
BM_InterleaveWeights(benchmark::State &state)
{
    const int64_t cols = state.range(0);
    Rng rng(2);
    Int4Tensor w(8, cols);
    for (int64_t r = 0; r < 8; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            w.set(r, c,
                  static_cast<int8_t>(
                      static_cast<int>(rng.uniformInt(16)) - 8));
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(prepareWeightsForW4A8(w));
    }
    state.SetItemsProcessed(state.iterations() * 8 * cols);
}
BENCHMARK(BM_InterleaveWeights)->Arg(128)->Arg(1024);

void
BM_W4AxGemmEmulation(benchmark::State &state)
{
    const int64_t tokens = state.range(0);
    Rng rng(3);
    SyntheticActivationConfig act_config;
    act_config.channels = 256;
    act_config.outlier_fraction = 0.02;
    const SyntheticActivationModel model(act_config);

    FmpqConfig fmpq_config;
    fmpq_config.block_size = 64;
    const auto quantizer = FmpqActivationQuantizer::calibrate(
        model.sample(64, rng), fmpq_config);
    const auto activation =
        quantizer.quantize(model.sample(tokens, rng));
    const auto weight =
        quantizer.quantizeWeight(sampleWeights(64, 256, rng));
    W4AxGemmConfig config;
    config.tile_m = 16;
    config.tile_n = 16;
    config.tile_k = 64;
    const W4AxGemm gemm(weight, quantizer.blockPrecisions(), config);

    for (auto _ : state) {
        benchmark::DoNotOptimize(gemm.run(activation));
    }
    state.SetItemsProcessed(state.iterations() * tokens * 64 * 256);
}
BENCHMARK(BM_W4AxGemmEmulation)->Arg(8)->Arg(32);

void
BM_W4AxGemmEmulationThreaded(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    Rng rng(4);
    SyntheticActivationConfig act_config;
    act_config.channels = 256;
    act_config.outlier_fraction = 0.02;
    const SyntheticActivationModel model(act_config);
    FmpqConfig fmpq_config;
    fmpq_config.block_size = 64;
    const auto quantizer = FmpqActivationQuantizer::calibrate(
        model.sample(64, rng), fmpq_config);
    const auto activation =
        quantizer.quantize(model.sample(64, rng));
    const auto weight =
        quantizer.quantizeWeight(sampleWeights(256, 256, rng));
    W4AxGemmConfig config;
    config.tile_m = 16;
    config.tile_n = 16;
    config.tile_k = 64;
    config.threads = threads;
    const W4AxGemm gemm(weight, quantizer.blockPrecisions(), config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gemm.run(activation));
    }
    state.SetItemsProcessed(state.iterations() * 64 * 256 * 256);
}
BENCHMARK(BM_W4AxGemmEmulationThreaded)->Arg(1)->Arg(2)->Arg(4);

void
BM_SimdUnpackInt4Span(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(5);
    std::vector<uint8_t> packed(static_cast<size_t>(n / 2));
    for (auto &b : packed)
        b = static_cast<uint8_t>(rng.uniformInt(256));
    std::vector<int8_t> out(static_cast<size_t>(n));
    for (auto _ : state) {
        simd::unpackInt4(packed.data(), n, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.SetLabel(simd::modeName(simd::activeMode()));
}
BENCHMARK(BM_SimdUnpackInt4Span)->Arg(1 << 16);

void
BM_SimdDotInt8Span(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(6);
    std::vector<int8_t> a(static_cast<size_t>(n)),
        b(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
        a[static_cast<size_t>(i)] = static_cast<int8_t>(
            static_cast<int>(rng.uniformInt(256)) - 128);
        b[static_cast<size_t>(i)] = static_cast<int8_t>(
            static_cast<int>(rng.uniformInt(256)) - 128);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simd::dotInt8(a.data(), b.data(), n));
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.SetLabel(simd::modeName(simd::activeMode()));
}
BENCHMARK(BM_SimdDotInt8Span)->Arg(1 << 16);

void
BM_ParallelForDispatch(benchmark::State &state)
{
    // Fixed-size pool, empty chunk bodies: measures the pure cost of
    // posting a region, waking workers, and waiting for completion —
    // the overhead floor every ported hot path pays per call.
    const int threads = static_cast<int>(state.range(0));
    ThreadPool pool(threads);
    std::atomic<int64_t> sink{0};
    for (auto _ : state) {
        pool.parallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
            sink.fetch_add(e - b, std::memory_order_relaxed);
        });
    }
    benchmark::DoNotOptimize(sink.load());
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4);

/**
 * Best-of-@p reps seconds for @p body over @p inner calls (median
 * would need storage; min is the standard choice for throughput
 * micro-timing since noise is strictly additive).
 */
template <typename Body>
double
bestSeconds(int reps, int inner, Body &&body)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < inner; ++i)
            body();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        best = std::min(best, elapsed.count() /
                                  static_cast<double>(inner));
    }
    return best;
}

/**
 * Times the pack/convert span routines under @p mode: one pass of
 * unpackInt4 + packInt4 + fastWidenW4A8 + dotInt8 over an @p n-value
 * working set. Returns values/second.
 */
double
packConvertThroughput(comet::simd::Mode mode, int64_t n)
{
    using namespace comet;
    const simd::Mode saved = simd::activeMode();
    simd::setMode(mode);
    Rng rng(7);
    std::vector<int8_t> values(static_cast<size_t>(n));
    for (auto &v : values) {
        v = static_cast<int8_t>(static_cast<int>(rng.uniformInt(16)) -
                                8);
    }
    std::vector<uint8_t> packed(static_cast<size_t>(n / 2));
    std::vector<int8_t> unpacked(static_cast<size_t>(n));
    std::vector<int8_t> widened(static_cast<size_t>(n));
    int64_t sink = 0;
    const double secs = bestSeconds(5, 4, [&] {
        simd::packInt4(values.data(), n, packed.data());
        simd::unpackInt4(packed.data(), n, unpacked.data());
        simd::fastWidenW4A8(packed.data(), n, widened.data());
        sink += simd::dotInt8(unpacked.data(), widened.data(), n);
    });
    benchmark::DoNotOptimize(sink);
    simd::setMode(saved);
    return static_cast<double>(n) / secs;
}

} // namespace
} // namespace comet

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(
        argc, argv,
        "google-benchmark timings of the bit-exact kernel emulation "
        "paths",
        {{comet::bench::BenchReport::kJsonFlag,
          comet::bench::BenchReport::kJsonFlagHelp}},
        /*passthrough_prefix=*/"--benchmark_");
    // Print the Section 4.3 instruction-count claims alongside the
    // timing numbers.
    comet::InstructionCounter naive, fast;
    comet::naiveInt4ToInt8(0x12345678u, &naive);
    comet::fastInt4ToInt8(0x12345678u, &fast);
    std::printf("Section 4.3 instruction counts per 8-value register: "
                "naive=%lld (%.1f/value), fast=%lld (paper: ~10/value "
                "vs 2 per conversion)\n",
                static_cast<long long>(naive.count()),
                static_cast<double>(naive.count()) / 8.0,
                static_cast<long long>(fast.count()));

    // Scalar-vs-SIMD span throughput of the pack/convert substrate
    // (the tentpole claim: >= 4x on AVX2 hardware).
    const comet::simd::Mode active = comet::simd::activeMode();
    constexpr int64_t kSpanValues = 1 << 20;
    const double scalar_vps = comet::packConvertThroughput(
        comet::simd::Mode::kScalar, kSpanValues);
    const double active_vps =
        active == comet::simd::Mode::kScalar
            ? scalar_vps
            : comet::packConvertThroughput(active, kSpanValues);
    const double speedup = active_vps / scalar_vps;
    std::printf("Pack/convert span throughput (%lld values): "
                "scalar=%.0f Mvals/s, %s=%.0f Mvals/s (%.2fx)\n",
                static_cast<long long>(kSpanValues), scalar_vps / 1e6,
                comet::simd::modeName(active), active_vps / 1e6,
                speedup);

    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    // Machine-readable report: deterministic instruction counts are
    // gated; raw CPU throughput is recorded ungated (machine-varying)
    // so trends stay visible without flaking CI.
    comet::bench::BenchReport report("bench_kernel_micro");
    report.setConfig("span_values", kSpanValues);
    report.addMetric("naive_conv_instructions_per_word",
                     static_cast<double>(naive.count()),
                     "instructions", /*gate=*/true,
                     /*higher_is_better=*/false);
    report.addMetric("fast_conv_instructions_per_word",
                     static_cast<double>(fast.count()),
                     "instructions", /*gate=*/true,
                     /*higher_is_better=*/false);
    report.addMetric("pack_convert_scalar_vals_per_s", scalar_vps,
                     "values/s", /*gate=*/false,
                     /*higher_is_better=*/true);
    report.addMetric("pack_convert_simd_vals_per_s", active_vps,
                     "values/s", /*gate=*/false,
                     /*higher_is_better=*/true);
    report.addMetric("pack_convert_simd_speedup", speedup, "x",
                     /*gate=*/false, /*higher_is_better=*/true);
    report.writeIfRequested(argc, argv);
    return 0;
}
