/**
 * @file
 * Reproduces Figure 3: activation distributions of several LLMs, with
 * a small set of channels carrying order-of-magnitude outliers.
 *
 * Using the synthetic activation profiles (the substitution for real
 * checkpoints), the bench reports, per model: channel count, detected
 * outlier channels, their share, and the magnitude ratio between
 * outlier and median channels — the quantities Figure 3 visualizes.
 */
#include <algorithm>

#include "bench_flags.h"
#include <cstdio>

#include "comet/common/rng.h"
#include "comet/common/table.h"
#include "comet/model/synthetic.h"
#include "comet/quant/outlier.h"

using namespace comet;

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Figure 3: activation outlier-channel distributions across the model zoo");
    std::printf("=== Figure 3: activation outlier structure ===\n\n");

    struct Profile {
        const char *model;
        SyntheticActivationConfig config;
    };
    const Profile profiles[] = {
        {"LLaMA-7B (a,b)", llama7bActivationProfile()},
        {"OPT-13B (c)", opt13bActivationProfile()},
        {"Qwen2-72B (d)", qwen72bActivationProfile()},
    };

    Table table({"model", "channels", "outlier channels", "share",
                 "max|x| outlier", "median channel |x|", "ratio"});
    for (const Profile &profile : profiles) {
        const SyntheticActivationModel model(profile.config);
        Rng rng(7);
        const Tensor acts = model.sample(256, rng);
        const ChannelStats stats = computeChannelStats(acts);
        const OutlierReport report = detectOutliers(stats);

        float outlier_max = 0.0f;
        for (int64_t c : report.outlier_channels) {
            outlier_max = std::max(
                outlier_max, stats.abs_max[static_cast<size_t>(c)]);
        }
        table.addRow(
            {profile.model, std::to_string(profile.config.channels),
             std::to_string(report.outlier_channels.size()),
             formatPercent(
                 static_cast<double>(report.outlier_channels.size()) /
                 static_cast<double>(profile.config.channels)),
             formatDouble(outlier_max, 1),
             formatDouble(stats.median_abs_max, 2),
             formatSpeedup(outlier_max /
                           std::max(stats.median_abs_max, 1e-6f))});
    }
    table.print();

    // A compact per-channel magnitude sketch for one model (the
    // "spikes over a flat floor" picture of Figure 3).
    std::printf("\nLLaMA-7B channel |x|_max sketch (every 64th "
                "channel; * marks detected outliers):\n");
    const SyntheticActivationModel model(llama7bActivationProfile());
    Rng rng(7);
    const ChannelStats stats =
        computeChannelStats(model.sample(256, rng));
    const OutlierReport report = detectOutliers(stats);
    for (size_t c = 0; c < stats.abs_max.size(); c += 64) {
        const int bar = std::min(
            60, static_cast<int>(stats.abs_max[c] /
                                 stats.median_abs_max));
        std::printf("  ch %5zu |%-60s| %7.2f%s\n", c,
                    std::string(static_cast<size_t>(bar), '#')
                        .c_str(),
                    stats.abs_max[c], report.is_outlier[c] ? " *" : "");
    }
    std::printf("\nPaper-shape checks: <1%% of channels are outliers; "
                "outlier magnitudes are 10-100x the median channel.\n");
    return 0;
}
