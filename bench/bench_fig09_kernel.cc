/**
 * @file
 * Reproduces Figure 9: kernel-level latency of COMET-W4Ax against
 * cuBLAS-W16A16, TRT-LLM-W4A16 and TRT-LLM-W8A8 across GEMM shapes
 * and batch sizes — (a) small batches 2/4/8, (b) large batches
 * 16/64/256. Latencies are normalized to cuBLAS (= 1.00), exactly as
 * the paper plots them. The W4A4 tile fraction is pinned to 75%, the
 * paper's stated lower bound for the kernel study.
 */
#include <cstdio>

#include "bench_flags.h"
#include <vector>

#include "comet/common/table.h"
#include "comet/gpusim/kernel_sim.h"
#include "comet/model/layer_shapes.h"

using namespace comet;

namespace {

const GemmKernelKind kKernels[] = {
    GemmKernelKind::kCublasW16A16,
    GemmKernelKind::kTrtLlmW4A16,
    GemmKernelKind::kTrtLlmW8A8,
    GemmKernelKind::kCometW4Ax,
};

void
runBatchSet(const KernelSimulator &sim, const char *title,
            const std::vector<int64_t> &batches)
{
    std::printf("--- %s ---\n", title);
    CometKernelFeatures features;
    features.w4a4_fraction = 0.75;

    // speedup of COMET over each baseline, averaged across the set.
    double sums[4] = {0, 0, 0, 0};
    int count = 0;

    for (int64_t batch : batches) {
        Table table({"GEMM (NxK)", "cuBLAS-W16A16", "TRT-LLM-W4A16",
                     "TRT-LLM-W8A8", "COMET-W4Ax",
                     "COMET speedup"});
        std::printf("batch size %lld (normalized latency, lower is "
                    "better):\n",
                    static_cast<long long>(batch));
        for (const LayerGemm &gemm : figure9Shapes(batch)) {
            const double cublas = sim.latencyUs(
                gemm.shape, GemmKernelKind::kCublasW16A16);
            std::vector<std::string> row{gemm.name};
            double comet_latency = 0.0;
            for (size_t ki = 0; ki < 4; ++ki) {
                const double latency = sim.latencyUs(
                    gemm.shape, kKernels[ki], features);
                row.push_back(formatDouble(latency / cublas, 2));
                sums[ki] += latency;
                if (kKernels[ki] == GemmKernelKind::kCometW4Ax)
                    comet_latency = latency;
            }
            row.push_back(formatSpeedup(cublas / comet_latency));
            table.addRow(std::move(row));
            ++count;
        }
        table.print();
        std::printf("\n");
    }

    std::printf("Average COMET-W4Ax speedups over the set:\n");
    const char *names[] = {"cuBLAS-W16A16", "TRT-LLM-W4A16",
                           "TRT-LLM-W8A8"};
    for (int i = 0; i < 3; ++i) {
        std::printf("  vs %-14s %s\n", names[i],
                    formatSpeedup(sums[i] / sums[3]).c_str());
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Figure 9: W4Ax kernel latency vs cuBLAS/TRT-LLM baselines across shapes and batches");
    const KernelSimulator sim;
    std::printf("=== Figure 9: kernel performance (W4A4 ratio 75%%) "
                "===\n\n");
    runBatchSet(sim, "Figure 9(a): small batch sizes", {2, 4, 8});
    runBatchSet(sim, "Figure 9(b): large batch sizes", {16, 64, 256});
    std::printf("Paper-shape checks: small-batch averages ~1.48x / "
                "1.25x / 1.37x; large-batch averages ~2.88x / 1.77x / "
                "1.33x over cuBLAS / W4A16 / W8A8.\n");
    return 0;
}
