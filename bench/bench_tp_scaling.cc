/**
 * @file
 * Tensor-parallel scaling bench: decode-step latency at TP=1/2/4 on
 * LLaMA-3-70B against the modeled all-reduce cost curve (DESIGN.md
 * §16). Every metric is a deterministic cost-model evaluation, so the
 * interesting ones are gated via `--json` + scripts/check_bench.py.
 *
 * Before reporting, the binary re-proves the bitwise differential
 * contract in situ (column and row GEMM shards and head-sharded
 * decode attention against their TP=1 counterparts): scaling numbers
 * from a sharding that changed the math would be meaningless.
 */
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_flags.h"
#include "bench_report.h"

#include "comet/attention/decode_attention.h"
#include "comet/common/rng.h"
#include "comet/common/table.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/model/synthetic.h"
#include "comet/quant/kv_quant.h"
#include "comet/serve/engine.h"
#include "comet/tp/interconnect.h"
#include "comet/tp/shard.h"

namespace {

using namespace comet;

/** Bitwise equality or abort: the bench's own differential layer. */
void
requireBitIdentical(const float *a, const float *b, size_t count,
                    const char *what)
{
    COMET_CHECK_MSG(std::memcmp(a, b, count * sizeof(float)) == 0,
                    what);
}

/** Re-proves that sharded operators are bit-identical to TP=1 before
 * any scaling number is printed. */
void
proveShardingExact()
{
    Rng rng(5);
    SyntheticActivationConfig act_config;
    act_config.channels = 256;
    act_config.outlier_fraction = 0.03;
    act_config.outlier_scale = 30.0;
    act_config.seed = 6;
    const SyntheticActivationModel model(act_config);
    FmpqConfig fmpq_config;
    fmpq_config.block_size = 32;
    auto quantizer = FmpqActivationQuantizer::calibrate(
        model.sample(64, rng), fmpq_config);
    const auto activation =
        quantizer.quantize(model.sample(16, rng));
    const auto weight =
        quantizer.quantizeWeight(sampleWeights(32, 256, rng));
    W4AxGemmConfig tiles;
    tiles.tile_m = 8;
    tiles.tile_n = 8;
    tiles.tile_k = 32;
    const W4AxGemm reference(weight, quantizer.blockPrecisions(),
                             tiles);
    const Tensor expected = reference.run(activation);
    for (tp::TpPartition partition :
         {tp::TpPartition::kColumn, tp::TpPartition::kRow}) {
        auto sharded = tp::ShardedW4AxGemm::create(
            weight, quantizer.blockPrecisions(), partition, 4,
            tiles);
        COMET_CHECK_MSG(sharded.isOk(),
                        "sharded gemm construction failed");
        const Tensor got = sharded.value().run(activation);
        COMET_CHECK(got.numel() == expected.numel());
        requireBitIdentical(
            expected.data(), got.data(),
            static_cast<size_t>(expected.numel()),
            "sharded W4Ax gemm diverged from TP=1");
    }

    AttentionConfig attn;
    attn.num_heads = 8;
    attn.num_kv_heads = 4;
    attn.head_dim = 16;
    std::vector<float> q(static_cast<size_t>(attn.qDim()));
    for (float &v : q)
        v = static_cast<float>(rng.gaussian());
    Tensor k(96, attn.kvDim());
    Tensor v(96, attn.kvDim());
    for (int64_t t = 0; t < 96; ++t) {
        for (int64_t c = 0; c < attn.kvDim(); ++c) {
            k.at(t, c) = static_cast<float>(rng.gaussian());
            v.at(t, c) = static_cast<float>(rng.gaussian());
        }
    }
    const std::vector<float> expected_attn =
        decodeAttentionOnline(attn, q, k, v);
    const KvCacheQuantizer kv_quantizer;
    const QuantizedKv qk = kv_quantizer.quantize(k);
    const QuantizedKv qv = kv_quantizer.quantize(v);
    const std::vector<float> expected_quant =
        decodeAttentionQuantized(attn, q, qk, qv, kv_quantizer);
    for (int degree : {2, 4}) {
        auto sharded = tp::ShardedDecodeAttention::create(attn, degree);
        COMET_CHECK_MSG(sharded.isOk(),
                        "sharded attention construction failed");
        const std::vector<float> got = sharded.value().run(q, k, v);
        requireBitIdentical(
            expected_attn.data(), got.data(), got.size(),
            "sharded decode attention diverged from TP=1");
        const std::vector<float> got_quant =
            sharded.value().runQuantized(q, qk, qv, kv_quantizer);
        requireBitIdentical(
            expected_quant.data(), got_quant.data(),
            got_quant.size(),
            "sharded quantized attention diverged from TP=1");
    }
}

/** Decode-step latency for one model at one degree. */
double
stepUs(const LlmConfig &model, int tp, int64_t batch,
       int64_t context)
{
    EngineConfig config;
    config.model = model;
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 1024;
    config.output_tokens = 512;
    config.tensor_parallel = tp;
    return ServingEngine(config).decodeStepLatencyUs(batch, context);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::handleArgs(
        argc, argv,
        "tensor-parallel decode scaling vs the all-reduce cost curve "
        "(bitwise differential asserts run first)",
        {{"--smoke", "reduced shapes for CI"},
         {bench::BenchReport::kJsonFlag,
          bench::BenchReport::kJsonFlagHelp}});
    const bool smoke = bench::smokeRequested(argc, argv);
    proveShardingExact();
    std::printf("sharded operators: bit-identical to TP=1\n\n");

    const int64_t batch = smoke ? 32 : 64;
    const int64_t context = 1280;
    const LlmConfig large = LlmConfig::llama3_70b();
    const LlmConfig small = LlmConfig::llama3_8b();

    bench::BenchReport report("bench_tp_scaling");
    report.setConfig("smoke", smoke ? "true" : "false");
    report.setConfig("batch", batch);
    report.setConfig("context", context);
    report.setConfig("model", "llama3_70b");

    const double tp1 = stepUs(large, 1, batch, context);
    const double tp2 = stepUs(large, 2, batch, context);
    const double tp4 = stepUs(large, 4, batch, context);
    const double speedup2 = tp1 / tp2;
    const double speedup4 = tp1 / tp4;

    EngineConfig ar_config;
    ar_config.model = large;
    ar_config.mode = ServingMode::kCometW4AxKv4;
    ar_config.tensor_parallel = 4;
    const double allreduce4 =
        ServingEngine(ar_config).allReduceLatencyUs(batch);
    const tp::InterconnectModel link(ar_config.gpu);
    const double crossover4 = link.ringDirectCrossoverBytes(4);

    const double small1 = stepUs(small, 1, batch, context);
    const double small4 = stepUs(small, 4, batch, context);
    const double small_speedup4 = small1 / small4;

    // The crossover claim in one assert: a 70B layer amortizes its
    // all-reduce tax far better than an 8B layer, so scaling must
    // favor the large model at equal degree.
    COMET_CHECK_MSG(speedup4 > small_speedup4,
                    "TP=4 speedup did not grow with model scale");
    COMET_CHECK_MSG(speedup2 > 1.0,
                    "TP=2 slowed the 70B decode step down");

    Table table({"model", "TP", "step us", "speedup",
                 "all-reduce us/step"});
    table.addRow({"llama3_70b", "1", formatDouble(tp1, 1), "1.00",
                  "0.0"});
    table.addRow({"llama3_70b", "2", formatDouble(tp2, 1),
                  formatDouble(speedup2, 2), "-"});
    table.addRow({"llama3_70b", "4", formatDouble(tp4, 1),
                  formatDouble(speedup4, 2),
                  formatDouble(allreduce4, 1)});
    table.addRow({"llama3_8b", "4", formatDouble(small4, 1),
                  formatDouble(small_speedup4, 2), "-"});
    table.print();
    std::printf("\nring/direct crossover at TP=4: %.0f bytes\n",
                crossover4);

    report.addMetric("decode_step_us_tp1", tp1, "us", true, false);
    report.addMetric("decode_step_us_tp2", tp2, "us", true, false);
    report.addMetric("decode_step_us_tp4", tp4, "us", true, false);
    report.addMetric("speedup_tp2", speedup2, "x", true, true);
    report.addMetric("speedup_tp4", speedup4, "x", true, true);
    report.addMetric("allreduce_us_tp4", allreduce4, "us", true,
                     false);
    report.addMetric("ring_direct_crossover_bytes_tp4", crossover4,
                     "bytes", true, false);
    report.addMetric("small_model_speedup_tp4", small_speedup4, "x",
                     false, true);
    report.writeIfRequested(argc, argv);
    return 0;
}
