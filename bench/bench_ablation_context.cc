/**
 * @file
 * Extension bench: the Section 2.1 motivation quantified — as context
 * grows, the KV cache overtakes the weights as the storage bottleneck
 * (paper: 72% of LLaMA-7B's storage at 128K tokens), and KV4 pushes
 * the achievable batch/context envelope out by ~4x.
 */
#include <cstdio>

#include "bench_flags.h"

#include "comet/common/table.h"
#include "comet/serve/engine.h"

using namespace comet;

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Extension: KV cache vs weights as the storage bottleneck at long context");
    std::printf("=== Context-length scaling: KV cache vs weights "
                "(Section 2.1) ===\n\n");

    const LlmConfig model = LlmConfig::llama2_7b();
    std::printf("--- %s, FP16 weights + FP16 KV, single sequence "
                "---\n",
                model.name.c_str());
    Table share_table({"context", "weights (GB)", "KV cache (GB)",
                       "KV share"});
    const double weights = model.weightBytes(16.0);
    for (int64_t context :
         {1024, 8192, 32768, 131072, 524288}) {
        const double kv = model.kvBytesPerSequence(context, 16.0);
        share_table.addRow({std::to_string(context),
                            formatDouble(weights / 1e9, 1),
                            formatDouble(kv / 1e9, 1),
                            formatPercent(kv / (kv + weights))});
    }
    share_table.print();
    std::printf("(paper: 72%% at 128K context for LLaMA-7B, counting "
                "runtime buffers too)\n\n");

    std::printf("--- max batch on one A100-80G vs context length "
                "(LLaMA-3-8B, output 128) ---\n");
    Table batch_table({"context", "TRT-FP16", "TRT-W4A16", "QServe",
                       "COMET"});
    for (int64_t context : {1024, 4096, 16384, 65536}) {
        std::vector<std::string> row{std::to_string(context)};
        for (ServingMode mode :
             {ServingMode::kTrtFp16, ServingMode::kTrtW4A16,
              ServingMode::kQserveW4A8Kv4,
              ServingMode::kCometW4AxKv4}) {
            EngineConfig config;
            config.model = LlmConfig::llama3_8b();
            config.mode = mode;
            config.input_tokens = context;
            config.output_tokens = 128;
            config.max_batch = 4096; // uncapped view
            const int64_t batch =
                ServingEngine(config).maxBatchSize();
            row.push_back(batch > 0 ? std::to_string(batch)
                                    : std::string("OOM"));
        }
        batch_table.addRow(std::move(row));
    }
    batch_table.print();
    std::printf("\nReading: the KV term grows linearly with context "
                "while weights are constant; the 4-bit cache keeps "
                "~4x the sequences resident at every length — the "
                "enabler of the paper's large-batch serving "
                "gains.\n");
    return 0;
}
