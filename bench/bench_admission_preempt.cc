/**
 * @file
 * KV admission policy comparison: pessimistic full-output
 * reservation vs optimistic prompt-only admission with
 * preemption-based recovery (the vLLM/QServe-style scheduler the
 * paper's serving evaluation builds on).
 *
 * Both policies run the same oversubscribed workload against the
 * same KV budget. Full reservation never preempts but idles KV
 * capacity on output tokens that have not been generated yet;
 * optimistic admission packs more concurrent requests into the same
 * pool and pays for it with occasional recompute-style preemptions.
 * The interesting question is whether the extra steady-state batch
 * outweighs the wasted re-prefill work.
 */
#include <cstdio>

#include "bench_flags.h"
#include <vector>

#include "comet/common/table.h"
#include "comet/kvcache/kv_cache.h"
#include "comet/serve/engine.h"

using namespace comet;

namespace {

std::vector<std::string>
policyRow(const EngineConfig &config, int64_t offered_batch)
{
    const ServingEngine engine(config);
    const ThroughputResult result =
        engine.measureThroughputAtBatch(offered_batch);
    return {
        admissionPolicyName(config.admission),
        std::to_string(config.kv_watermark_blocks),
        std::to_string(offered_batch),
        formatDouble(result.mean_batch, 1),
        std::to_string(result.peak_batch),
        std::to_string(result.preemptions),
        std::to_string(result.reprefill_tokens),
        formatPercent(result.mean_kv_utilization),
        formatPercent(result.peak_kv_utilization),
        formatDouble(result.tokens_per_second, 0),
    };
}

} // namespace

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "KV admission policies: full-output reservation vs optimistic preemption");
    std::printf("=== KV admission: full reservation vs optimistic "
                "preemption (LLaMA-3-8B, COMET W4A4KV4) ===\n\n");

    EngineConfig base;
    base.model = LlmConfig::llama3_8b();
    base.mode = ServingMode::kCometW4AxKv4;
    base.input_tokens = 1024;
    base.output_tokens = 512;
    // The declared/actual gap of real serving: clients ask for up to
    // 2048 tokens, generation hits EOS at 512. Full reservation must
    // budget the declared bound; only the actual tokens ever occupy
    // KV.
    base.declared_output_tokens = 2048;
    // A pool of 6144 KV4 pages = 96 Ki tokens: a KV-limited regime
    // (~64 actually-full-length sequences) oversubscribed 2x.
    base = engineConfigWithKvBlocks(base, 6144);
    const int64_t kv_limited = ServingEngine(base).maxBatchSize();
    const int64_t offered = 2 * kv_limited;
    std::printf("Sequences the pool fits at actual full context: "
                "%lld; offered load: %lld concurrent requests "
                "(declared max_tokens %lld, EOS at %lld)\n\n",
                static_cast<long long>(kv_limited),
                static_cast<long long>(offered),
                static_cast<long long>(base.declared_output_tokens),
                static_cast<long long>(base.output_tokens));

    Table table({"policy", "watermark", "offered", "mean batch",
                 "peak batch", "preempt", "re-prefill tok",
                 "mean KV", "peak KV", "tok/s"});
    base.admission = AdmissionPolicy::kReserveFullOutput;
    table.addRow(policyRow(base, offered));
    base.admission = AdmissionPolicy::kOptimisticPreempt;
    for (const int64_t watermark : {0, 256, 1024}) {
        base.kv_watermark_blocks = watermark;
        table.addRow(policyRow(base, offered));
    }
    table.print();

    std::printf(
        "\nReading the table: full reservation caps the concurrent "
        "batch at the pessimistic bound and never preempts; "
        "optimistic admission sustains a strictly larger mean batch "
        "from the same pool, at the price of preemptions and their "
        "re-prefill recompute. A larger watermark keeps more decode "
        "headroom free, trading admitted batch for fewer "
        "preemptions.\n");
    return 0;
}
