/**
 * @file
 * Online-serving load generator: multi-tenant streaming latency under
 * an open-loop Poisson workload, driven through comet::server.
 *
 * Three checks ride on top of the report:
 *
 *  1. Determinism — the same seed must produce a bit-identical
 *     per-tenant p50/p99 TTFT/TPOT report across back-to-back runs
 *     (fresh server + metrics reset between them) and across the two
 *     delivery modes (pull-iterators vs callbacks), despite the
 *     genuinely concurrent client threads.
 *  2. Backpressure accounting — the `server.rejected` registry
 *     counter must equal the rejects the load generator observed on
 *     its streams; overload rejects, it never aborts.
 *  3. Overload behaviour — a deliberately oversubscribed scenario
 *     (tiny KV pool, bounded queues, rate limits) must finish with
 *     rejections > 0 and all accepted requests completed.
 *
 * Any violated check exits 1 (the TSan CI leg runs `--smoke`).
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_flags.h"

#include "comet/obs/metrics.h"
#include "comet/serve/engine.h"
#include "comet/server/loadgen.h"
#include "comet/server/server.h"

using namespace comet;
using namespace comet::server;

namespace {

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "CHECK FAILED: %s\n", what);
        ++failures;
    }
}

/** The engine every scenario serves: LLaMA-3-8B at COMET W4A4KV4,
 * with the KV pool shrunk to @p kv_blocks pages so memory (not the
 * batch cap) is the contended resource. */
EngineConfig
servedEngine(int64_t kv_blocks)
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 256;
    config.output_tokens = 64;
    return engineConfigWithKvBlocks(config, kv_blocks);
}

/** Two-tenant mix: a weighted, SLO-tagged interactive tenant and a
 * heavier batch tenant. */
LoadgenConfig
steadyWorkload(uint64_t seed, bool smoke)
{
    LoadgenConfig config;
    config.seed = seed;
    config.clients = 4;

    LoadgenTenant gold;
    gold.admission.name = "gold";
    gold.admission.weight = 4.0;
    gold.admission.ttft_slo_us = 4e6;
    gold.arrival_rate_per_s = 30.0;
    gold.requests = smoke ? 24 : 96;
    gold.prompt_min = 64;
    gold.prompt_max = 256;
    gold.output_min = 4;
    gold.output_max = 32;

    LoadgenTenant bronze;
    bronze.admission.name = "bronze";
    bronze.admission.weight = 1.0;
    bronze.arrival_rate_per_s = 20.0;
    bronze.requests = smoke ? 16 : 64;
    bronze.prompt_min = 128;
    bronze.prompt_max = 512;
    bronze.output_min = 8;
    bronze.output_max = 48;

    config.tenants = {gold, bronze};
    return config;
}

/** The steady workload pushed past capacity: higher rates, bounded
 * queues, a rate-limited bronze tenant, a smaller KV pool. */
LoadgenConfig
overloadWorkload(uint64_t seed, bool smoke)
{
    LoadgenConfig config = steadyWorkload(seed, smoke);
    for (LoadgenTenant &tenant : config.tenants) {
        tenant.arrival_rate_per_s *= 40.0;
        tenant.admission.max_queued = 6;
    }
    config.tenants[1].admission.rate_limit_per_s = 200.0;
    config.tenants[1].admission.rate_burst = 4.0;
    return config;
}

ServerConfig
serverConfigFor(const LoadgenConfig &workload, int64_t max_batch)
{
    ServerConfig config;
    config.tenants = loadgenTenants(workload);
    config.max_batch = max_batch;
    config.admission = AdmissionPolicy::kOptimisticPreempt;
    config.kv_watermark_blocks = 16;
    return config;
}

/** One full session: fresh metrics, fresh server, run, verify the
 * reject accounting, return the report. */
LoadgenReport
runSession(const ServingEngine &engine,
           const LoadgenConfig &workload, int64_t max_batch)
{
    obs::MetricsRegistry &registry = obs::MetricsRegistry::global();
    registry.reset();
    Server server(&engine, serverConfigFor(workload, max_batch));
    const LoadgenReport report = runLoadgen(&server, workload);
    const ServerStats stats = server.stats();
    check(stats.rejected == report.rejected,
          "server stats rejects == loadgen-observed rejects");
    check(registry.counterValue("server.rejected") ==
              report.rejected,
          "server.rejected metric == loadgen-observed rejects");
    check(registry.counterValue("server.streamed_tokens") ==
              report.tokens,
          "server.streamed_tokens metric == streamed tokens");
    check(stats.completed + stats.rejected + stats.cancelled ==
              report.submitted,
          "every submitted request reached a terminal event");
    server.stop();
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(
        argc, argv,
        "online serving: multi-tenant streaming latency under "
        "open-loop Poisson load",
        {{"--smoke", "reduced request counts for CI"},
         {"--seed=", "workload seed (default 42)"}});
    const bool smoke = comet::bench::smokeRequested(argc, argv);
    const auto seed = static_cast<uint64_t>(
        comet::bench::flagValue(argc, argv, "--seed=", 42));

    std::printf("=== Online serving under open-loop Poisson load "
                "(LLaMA-3-8B, COMET W4A4KV4, %d client threads) "
                "===\n\n",
                steadyWorkload(seed, smoke).clients);

    // --- Steady scenario: determinism across runs and modes -------
    const ServingEngine engine(servedEngine(4096));
    const int64_t max_batch = 64;
    LoadgenConfig steady = steadyWorkload(seed, smoke);
    const LoadgenReport first =
        runSession(engine, steady, max_batch);
    const LoadgenReport second =
        runSession(engine, steady, max_batch);
    steady.callbacks = true;
    const LoadgenReport callbacks =
        runSession(engine, steady, max_batch);

    const std::string steady_table = renderLoadgenReport(first);
    check(steady_table == renderLoadgenReport(second),
          "back-to-back runs render identical reports");
    check(steady_table == renderLoadgenReport(callbacks),
          "pull-mode and callback-mode reports are identical");
    check(first.rejected == 0,
          "the steady scenario is served without rejections");
    check(first.completed == first.submitted,
          "the steady scenario completes every request");

    std::printf("Steady load (seed %llu, %lld requests, makespan "
                "%.1f ms, run twice + callback mode: reports "
                "identical):\n%s\n",
                static_cast<unsigned long long>(seed),
                static_cast<long long>(first.submitted),
                first.makespan_us * 1e-3, steady_table.c_str());

    // --- Overload scenario: reject-with-reason, never abort -------
    const ServingEngine small_engine(servedEngine(1024));
    const LoadgenConfig overload = overloadWorkload(seed, smoke);
    const LoadgenReport pressed =
        runSession(small_engine, overload, 32);
    check(pressed.rejected > 0,
          "the overload scenario must reject some requests");
    check(pressed.completed + pressed.rejected ==
              pressed.submitted,
          "overload: every request completes or is rejected");
    check(pressed.completed > 0,
          "overload: accepted requests still complete");

    std::printf("Overload (4x the arrival rate, 1/4 the KV pool, "
                "bounded queues, bronze rate-limited — backpressure "
                "rejects explicitly, nothing aborts):\n%s\n",
                renderLoadgenReport(pressed).c_str());

    if (failures > 0) {
        std::fprintf(stderr, "\n%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("All determinism and backpressure checks passed.\n");
    return 0;
}
