/**
 * @file
 * Extension ablation: FMPQ's mixed precision vs Hadamard-rotation
 * W4A4 (QuaRot/SpinQuant-lite, the paper's Section 2.2 references
 * [4]/[32]) vs naive W4A4.
 *
 * Two views:
 *  1. layer-level GEMM reconstruction error on outlier-ridden
 *     synthetic activations, and
 *  2. end-model perplexity on the tiny-transformer harness.
 *
 * The expected picture: both FMPQ and rotation rescue 4-bit
 * activations from the naive collapse. The trade-off the paper's
 * design targets: FMPQ keeps >84% of compute on INT4 tensor cores at
 * INT8 cost for the rest, while the rotation approach pays a Hadamard
 * transform on every activation *and is uniformly W4A4*, i.e. it
 * needs no INT8 path but adds O(n log n) CUDA-core work per token.
 */
#include <cstdio>

#include "bench_flags.h"

#include "comet/common/rng.h"
#include "comet/common/table.h"
#include "comet/kernel/gemm_ref.h"
#include "comet/model/perplexity.h"
#include "comet/model/synthetic.h"
#include "comet/quant/fmpq.h"
#include "comet/quant/quantizer.h"
#include "comet/quant/rotation.h"

using namespace comet;

namespace {

void
layerLevel()
{
    std::printf("--- layer-level GEMM relative error (4096-channel "
                "synthetic activations, planted outliers) ---\n");
    Rng rng(9);
    SyntheticActivationConfig act_config = llama7bActivationProfile();
    const SyntheticActivationModel model(act_config);
    const Tensor calib = model.sample(96, rng);
    const Tensor x = model.sample(16, rng);
    const Tensor w = sampleWeights(128, act_config.channels, rng);
    const Tensor reference = gemmFloat(x, w);

    const auto fmpq =
        FmpqActivationQuantizer::calibrate(calib, FmpqConfig{});
    RotatedQuantConfig rot_config;
    rot_config.weight_group_size = 128;

    Table table({"scheme", "act precision", "rel. output error"});
    table.addRow({"naive W4A4", "per-token INT4",
                  formatDouble(
                      relativeError(
                          reference,
                          gemmFloat(fakeQuantPerRow(x, 4),
                                    fakeQuantPerGroup(w, 4, 128))),
                      4)});
    table.addRow(
        {"FMPQ W4Ax", formatPercent(fmpq.w4a4ComputeFraction()) +
                          " INT4 blocks",
         formatDouble(relativeError(
                          reference,
                          gemmFloat(fmpq.fakeQuantize(x),
                                    fakeQuantPerGroup(w, 4, 128))),
                      4)});
    table.addRow(
        {"QuaRot-lite W4A4", "rotated per-token INT4",
         formatDouble(
             relativeError(
                 reference,
                 gemmFloat(rotatedFakeQuantActivations(x, rot_config),
                           rotatedQuantizeWeight(w, rot_config))),
             4)});
    table.print();
    std::printf("\n");
}

void
modelLevel()
{
    std::printf("--- end-model perplexity (tiny-transformer harness) "
                "---\n");
    TinyTransformerConfig config;
    config.vocab_size = 96;
    config.hidden_size = 64;
    config.num_heads = 4;
    config.num_kv_heads = 4;
    config.num_layers = 2;
    config.intermediate_size = 128;
    config.outlier_fraction = 0.06;
    config.outlier_scale = 20.0;
    config.seed = 505;
    const auto teacher = TinyTransformer::random(config);
    Rng rng(61);
    const Dataset eval = sampleDataset(teacher, 4, 28, rng);
    const Dataset calib = sampleDataset(teacher, 3, 28, rng);
    const CalibrationData calibration =
        CalibrationData::collect(teacher, calib);

    Table table({"scheme", "precision", "perplexity"});
    for (QuantScheme scheme :
         {QuantScheme::kFp16, QuantScheme::kFmpqW4AxKv4,
          QuantScheme::kQuarotW4A4, QuantScheme::kOmniquantW4A4}) {
        const QuantizedModel quantized =
            buildQuantizedModel(teacher, scheme, calibration);
        table.addRow({quantSchemeName(scheme),
                      quantSchemePrecision(scheme),
                      formatDouble(
                          evaluatePerplexity(quantized.model,
                                             quantized.sim(), eval),
                          2)});
    }
    table.print();
    std::printf("\nReading: both outlier treatments avoid the naive "
                "W4A4 collapse; FMPQ does it while staying on the "
                "GPU's native integer paths (no per-token Hadamard "
                "transform on the critical path).\n");
}

} // namespace

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Extension: FMPQ vs Hadamard-rotation W4A4 vs naive W4A4");
    std::printf("=== Extension ablation: FMPQ vs rotation-based "
                "W4A4 ===\n\n");
    layerLevel();
    modelLevel();
    return 0;
}
