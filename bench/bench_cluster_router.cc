/**
 * @file
 * Cluster-router bench (DESIGN.md §15): drives the canonical mixed
 * long-context + chat workload through 1- and 4-replica clusters
 * under each routing policy (consistent-hash, least-loaded, weighted
 * round-robin) and reports per-policy throughput and chat TTFT/TPOT
 * tails. Gated in CI (bench/baselines/BENCH_cluster_router.json).
 *
 * Everything reported is virtual-time and therefore deterministic for
 * a fixed seed at any COMET_THREADS, so the scale-out throughput win
 * can be gated without flaking across machines.
 *
 * Correctness checks ride along (any failure exits 1):
 *  1. a 1-replica cluster streams token-identical outcomes to a bare
 *     Server on the same workload and renders a byte-identical
 *     per-tenant report (the router adds placement, not behavior);
 *  2. scale-out preserves every request's terminal verdict and token
 *     count under every policy (placement only reshapes time);
 *  3. back-to-back 4-replica runs render bit-identical reports;
 *  4. the load-spreading policies (least, wrr) use all four replicas
 *     and beat the single replica on the chat tenants' TTFT p99 —
 *     the reason scale-out exists on an open-loop workload (the
 *     makespan is arrival-dominated, so the win shows up as tail
 *     latency, not throughput);
 *  5. consistent hash spreads the workload's placement keys over
 *     more than one replica while keeping each key's traffic
 *     replica-local (prefix affinity).
 *
 * A sharded trace-replay rollup rides along: four per-replica traces
 * (seeds from deriveReplicaSeed) replay through the engine's step
 * model and merge via mergeTraceMetrics into the cluster-level
 * throughput/utilization view the rollup exists for.
 *
 * Environment: COMET_CLUSTER_POLICY=hash|least|wrr|all restricts the
 * policy sweep (default all; see docs/OPERATIONS.md).
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_flags.h"
#include "bench_report.h"

#include "comet/cluster/cluster_loadgen.h"
#include "comet/cluster/router.h"
#include "comet/common/table.h"
#include "comet/obs/metrics.h"
#include "comet/serve/engine.h"
#include "comet/serve/trace.h"
#include "comet/server/loadgen.h"
#include "comet/server/server.h"

using namespace comet;
using namespace comet::cluster;
using namespace comet::server;

namespace {

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "CHECK FAILED: %s\n", what);
        ++failures;
    }
}

/** LLaMA-3-8B at COMET W4A4KV4 with a per-replica pool large enough
 * that the long-context prompts admit without thrashing — the bench
 * isolates placement, not KV pressure. */
EngineConfig
servedEngine()
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 256;
    config.output_tokens = 64;
    return engineConfigWithKvBlocks(config, 4096);
}

/** One cluster session: @p replicas replicas of the shared engine
 * under @p policy, the workload routed through runClusterLoadgen. */
LoadgenReport
runClusterSession(const ServingEngine &engine,
                  const LoadgenConfig &workload, int replicas,
                  RoutingPolicy policy, ClusterStats *stats)
{
    obs::MetricsRegistry::global().reset();
    ClusterConfig config;
    for (int r = 0; r < replicas; ++r)
        config.replicas.push_back({&engine, 1.0});
    config.server.tenants = loadgenTenants(workload);
    config.server.max_batch = 16;
    config.server.chunked_prefill_tokens = 256;
    config.policy = policy;
    ClusterRouter router(config);
    const LoadgenReport report =
        runClusterLoadgen(&router, workload);
    *stats = router.stats();
    router.stop(false);
    return report;
}

/** The bare-Server baseline the 1-replica cluster must match. */
LoadgenReport
runBareSession(const ServingEngine &engine,
               const LoadgenConfig &workload)
{
    obs::MetricsRegistry::global().reset();
    ServerConfig config;
    config.tenants = loadgenTenants(workload);
    config.max_batch = 16;
    config.chunked_prefill_tokens = 256;
    Server server(&engine, config);
    const LoadgenReport report = runLoadgen(&server, workload);
    server.stop();
    return report;
}

/** Streamed tokens per virtual second. */
double
throughputTokensPerS(const LoadgenReport &report)
{
    return report.makespan_us > 0.0
               ? static_cast<double>(report.tokens) /
                     (report.makespan_us * 1e-6)
               : 0.0;
}

/** Worst TTFT p99 across the chat tenants (rows 1 and 2). */
double
chatTtftP99(const LoadgenReport &report)
{
    return std::max(report.tenants[1].ttft_p99_us,
                    report.tenants[2].ttft_p99_us);
}

/** Worst TPOT p99 across the chat tenants. */
double
chatTpotP99(const LoadgenReport &report)
{
    return std::max(report.tenants[1].tpot_p99_us,
                    report.tenants[2].tpot_p99_us);
}

/** Per-request terminal/token identity between two runs of the same
 * workload (placement and chunking only reshape virtual time). */
bool
sameTokenStreams(const LoadgenReport &a, const LoadgenReport &b)
{
    if (a.outcomes.size() != b.outcomes.size())
        return false;
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        if (a.outcomes[i].terminal != b.outcomes[i].terminal ||
            a.outcomes[i].tokens != b.outcomes[i].tokens)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::handleArgs(
        argc, argv,
        "multi-replica cluster router: per-policy throughput and "
        "chat latency tails, 1 vs 4 replicas, plus the sharded "
        "trace-replay rollup (COMET_CLUSTER_POLICY=hash|least|wrr|"
        "all restricts the sweep)",
        {{"--smoke", "reduced request counts for CI"},
         {"--seed=", "workload seed (default 42)"},
         {bench::BenchReport::kJsonFlag,
          bench::BenchReport::kJsonFlagHelp}});
    const bool smoke = bench::smokeRequested(argc, argv);
    const auto seed = static_cast<uint64_t>(
        bench::flagValue(argc, argv, "--seed=", 42));

    const char *policy_env = std::getenv("COMET_CLUSTER_POLICY");
    const std::string policy_sel =
        policy_env != nullptr && *policy_env != '\0' ? policy_env
                                                     : "all";
    std::vector<RoutingPolicy> policies;
    if (policy_sel == "all") {
        policies = {RoutingPolicy::kConsistentHash,
                    RoutingPolicy::kLeastLoaded,
                    RoutingPolicy::kWeightedRoundRobin};
    } else {
        RoutingPolicy one;
        if (!parseRoutingPolicy(policy_sel, &one)) {
            std::fprintf(stderr,
                         "bad COMET_CLUSTER_POLICY '%s' (want "
                         "hash|least|wrr|all)\n",
                         policy_sel.c_str());
            return 2;
        }
        policies = {one};
    }

    constexpr int kReplicas = 4;
    const ServingEngine engine(servedEngine());
    LoadgenConfig workload = mixedSloWorkload(seed, smoke);
    // Real prompt content (3 shared pools per tenant) gives the
    // consistent-hash policy per-(tenant, pool) placement keys — the
    // system-prompt redundancy whose affinity it exists to keep
    // replica-local. Without content every tenant is a single key.
    for (LoadgenTenant &tenant : workload.tenants)
        tenant.shared_prompt_pools = 3;

    std::printf("=== cluster router, 1 vs %d replicas "
                "(LLaMA-3-8B, COMET W4A4KV4, seed %llu, policy %s"
                "%s) ===\n\n",
                kReplicas, static_cast<unsigned long long>(seed),
                policy_sel.c_str(), smoke ? ", smoke" : "");

    // Baselines: the bare server and the 1-replica cluster must be
    // indistinguishable (the router adds placement, not behavior).
    const LoadgenReport bare = runBareSession(engine, workload);
    ClusterStats one_stats;
    const LoadgenReport one =
        runClusterSession(engine, workload, 1, policies[0],
                          &one_stats);
    check(sameTokenStreams(bare, one),
          "1-replica cluster streams token-identical outcomes to a "
          "bare server");
    check(renderLoadgenReport(bare) == renderLoadgenReport(one),
          "1-replica cluster renders a byte-identical report");
    check(bare.rejected == 0 && bare.cancelled == 0,
          "the workload is equality-safe (no clock-dependent "
          "verdicts)");

    const double one_ttft = chatTtftP99(one);
    const std::vector<LoadgenRequest> requests =
        generateLoadgenWorkload(workload);

    Table table({"policy", "replicas", "tok/s", "ttft win",
                 "chat ttft p99 (ms)", "chat tpot p99 (ms)",
                 "rerouted", "spread"});
    table.addRow({"-", "1",
                  formatDouble(throughputTokensPerS(one), 1),
                  "1.00", formatDouble(one_ttft * 1e-3, 3),
                  formatDouble(chatTpotP99(one) * 1e-3, 3), "0",
                  std::to_string(one.submitted - one.rejected)});

    bench::BenchReport report("bench_cluster_router");
    report.setConfig("seed", static_cast<int64_t>(seed));
    report.setConfig("smoke", smoke ? "true" : "false");
    report.setConfig("replicas", kReplicas);
    report.setConfig("policy", policy_sel);
    report.setConfig("requests", one.submitted);

    std::string rendered_example;
    for (const RoutingPolicy policy : policies) {
        const char *name = routingPolicyName(policy);
        ClusterStats stats;
        const LoadgenReport scaled = runClusterSession(
            engine, workload, kReplicas, policy, &stats);
        check(sameTokenStreams(bare, scaled),
              "scale-out preserves every terminal and token count");
        int replicas_used = 0;
        std::string spread;
        for (int r = 0; r < kReplicas; ++r) {
            if (stats.routed_per_replica[r] > 0)
                ++replicas_used;
            if (r > 0)
                spread += "/";
            spread += std::to_string(stats.routed_per_replica[r]);
        }

        const double ttft = chatTtftP99(scaled);
        const double ttft_win = ttft > 0.0 ? one_ttft / ttft : 0.0;
        if (policy == RoutingPolicy::kConsistentHash) {
            // Affinity, not spreading, is what hash promises: every
            // (tenant, pool) placement-key group stays on one
            // replica, and the workload's distinct keys land on
            // more than one.
            std::map<std::pair<int, int32_t>, int> group_replica;
            bool affine = true;
            for (size_t i = 0; i < scaled.outcomes.size(); ++i) {
                if (scaled.outcomes[i].replica < 0)
                    continue;
                const std::pair<int, int32_t> group = {
                    requests[i].tenant,
                    requests[i].prompt_ids.empty()
                        ? -1
                        : requests[i].prompt_ids[0]};
                const auto [it, inserted] = group_replica.emplace(
                    group, scaled.outcomes[i].replica);
                affine = affine &&
                         it->second == scaled.outcomes[i].replica;
            }
            check(affine,
                  "hash keeps each placement key replica-local");
            check(replicas_used >= 2,
                  "hash spreads distinct keys over replicas");
        } else {
            check(replicas_used == kReplicas,
                  "the load-spreading policy uses every replica");
            check(ttft_win > 1.0,
                  "4 replicas beat 1 on chat TTFT p99 under this "
                  "policy");
        }
        table.addRow({name, std::to_string(kReplicas),
                      formatDouble(throughputTokensPerS(scaled), 1),
                      formatDouble(ttft_win, 2),
                      formatDouble(ttft * 1e-3, 3),
                      formatDouble(chatTpotP99(scaled) * 1e-3, 3),
                      std::to_string(stats.rerouted), spread});

        // All virtual-time deterministic: gate the load-spreading
        // policies' tail win so a placement regression that quietly
        // serializes replicas fails the perf leg. Hash optimizes
        // affinity, not tails — its win stays informational.
        report.addMetric(
            std::string(name) + "_chat_ttft_p99_win", ttft_win, "x",
            /*gate=*/policy != RoutingPolicy::kConsistentHash,
            /*higher_is_better=*/true);
        report.addMetric(std::string(name) +
                             "_throughput_tokens_per_s",
                         throughputTokensPerS(scaled), "tokens/s",
                         false, true);
        report.addMetric(std::string(name) + "_chat_tpot_p99_us",
                         chatTpotP99(scaled), "us", false, false);

        if (rendered_example.empty()) {
            rendered_example =
                renderClusterLoadgenReport(scaled, kReplicas);
            // Determinism of the cluster run itself.
            ClusterStats again_stats;
            const LoadgenReport again = runClusterSession(
                engine, workload, kReplicas, policy, &again_stats);
            check(renderClusterLoadgenReport(again, kReplicas) ==
                      rendered_example,
                  "back-to-back cluster runs render identical "
                  "reports");
        }
    }

    table.print();
    std::printf("\n%s policy, %d replicas:\n%s\n",
                routingPolicyName(policies[0]), kReplicas,
                rendered_example.c_str());

    // Sharded trace-replay rollup: four per-replica traces (seeds
    // derived per replica) through the engine's step model, merged
    // into the cluster-level view.
    std::vector<TraceMetrics> parts;
    size_t part_requests = 0;
    for (int r = 0; r < kReplicas; ++r) {
        TraceConfig trace_config;
        trace_config.seed = deriveReplicaSeed(seed, r);
        trace_config.num_requests = smoke ? 48 : 192;
        trace_config.request_rate_per_s = 8.0;
        const TraceMetrics part = replayTrace(
            engine, generateTrace(trace_config));
        part_requests += part.per_request.size();
        parts.push_back(part);
    }
    const TraceMetrics merged = mergeTraceMetrics(parts);
    check(merged.per_request.size() == part_requests,
          "the rollup keeps every per-replica latency record");
    std::printf("sharded trace rollup: %zu requests, "
                "%.1f tok/s merged, peak KV utilization %.3f\n",
                merged.per_request.size(),
                merged.throughput_tokens_per_s,
                merged.peak_kv_utilization);
    report.addMetric("merged_trace_throughput_tokens_per_s",
                     merged.throughput_tokens_per_s, "tokens/s",
                     /*gate=*/true, /*higher_is_better=*/true);
    report.addMetric("merged_trace_peak_kv_utilization",
                     merged.peak_kv_utilization, "fraction", false,
                     false);
    report.writeIfRequested(argc, argv);

    if (failures > 0) {
        std::fprintf(stderr, "\n%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("\nAll identity, determinism and scale-out checks "
                "passed.\n");
    return 0;
}
