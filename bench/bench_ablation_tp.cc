/**
 * @file
 * Extension bench: quantization vs tensor parallelism as competing
 * ways to serve big models — the serving-cost argument behind the
 * paper's single-GPU framing.
 *
 * For LLaMA-3-70B, compares COMET on one A100 against FP16 and W8A8
 * spread over 2/4/8 GPUs (Megatron-style TP with ring all-reduces),
 * reporting per-model-instance throughput and throughput *per GPU* —
 * the cost metric a serving fleet optimizes.
 */
#include <cstdio>

#include "bench_flags.h"

#include "comet/common/table.h"
#include "comet/serve/engine.h"

using namespace comet;

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Extension: single-GPU COMET vs multi-GPU FP16/W8A8 tensor parallelism");
    std::printf("=== Extension: COMET on 1 GPU vs FP16/W8A8 tensor "
                "parallelism (LLaMA-3-70B, 1024/512) ===\n\n");

    struct Setup {
        ServingMode mode;
        int tp;
    };
    const Setup setups[] = {
        {ServingMode::kTrtFp16, 2},     {ServingMode::kTrtFp16, 4},
        {ServingMode::kTrtFp16, 8},     {ServingMode::kTrtW8A8, 2},
        {ServingMode::kTrtW8A8, 4},     {ServingMode::kQserveW4A8Kv4, 1},
        {ServingMode::kCometW4AxKv4, 1}, {ServingMode::kCometW4AxKv4, 2},
    };

    Table table({"system", "GPUs", "batch", "tokens/s (instance)",
                 "tokens/s per GPU"});
    double comet_single_per_gpu = 0.0;
    for (const Setup &setup : setups) {
        EngineConfig config;
        config.model = LlmConfig::llama3_70b();
        config.mode = setup.mode;
        config.tensor_parallel = setup.tp;
        config.input_tokens = 1024;
        config.output_tokens = 512;
        const ThroughputResult result =
            ServingEngine(config).measureThroughput();
        const double per_gpu =
            result.tokens_per_second / setup.tp;
        if (setup.mode == ServingMode::kCometW4AxKv4 &&
            setup.tp == 1)
            comet_single_per_gpu = per_gpu;
        table.addRow(
            {servingModeName(setup.mode), std::to_string(setup.tp),
             result.batch > 0 ? std::to_string(result.batch)
                              : std::string("OOM"),
             result.batch > 0
                 ? formatDouble(result.tokens_per_second, 0)
                 : std::string("-"),
             result.batch > 0 ? formatDouble(per_gpu, 0)
                              : std::string("-")});
    }
    table.print();

    std::printf("\nReading: a 70B model that OOMs on one FP16 GPU "
                "serves from a single A100 under COMET at %.0f "
                "tokens/s/GPU — quantization substitutes for "
                "interconnect-taxed extra GPUs (all-reduce overhead "
                "makes TP throughput sub-linear).\n",
                comet_single_per_gpu);
    return 0;
}
