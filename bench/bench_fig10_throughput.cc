/**
 * @file
 * Reproduces Figure 10: maximum end-to-end serving throughput of
 * COMET vs TRT-LLM (FP16 / W4A16 / W8A8) and QServe, across the model
 * zoo, under two input/output settings (1024/512 and 128/128), all on
 * one A100-80G memory budget. Throughput is normalized to
 * TRT-LLM-W4A16 (= 1.00), matching the paper's presentation.
 */
#include <algorithm>

#include "bench_flags.h"
#include "bench_report.h"

#include <cstdio>
#include <string_view>
#include <vector>

#include "comet/common/table.h"
#include "comet/serve/engine.h"

using namespace comet;

namespace {

const ServingMode kModes[] = {
    ServingMode::kTrtFp16,    ServingMode::kTrtW4A16,
    ServingMode::kTrtW8A8,    ServingMode::kQserveW4A8Kv4,
    ServingMode::kCometW4AxKv4,
};

void
runSetting(int64_t input_tokens, int64_t output_tokens, bool smoke,
           bench::BenchReport *report)
{
    std::printf("--- input/output = %lld/%lld ---\n",
                static_cast<long long>(input_tokens),
                static_cast<long long>(output_tokens));
    Table table({"model", "TRT-LLM-FP16", "TRT-LLM-W4A16",
                 "TRT-LLM-W8A8", "QServe", "COMET", "COMET batch",
                 "COMET tok/s"});

    // Smoke mode (CI): two models spanning the fits/doesn't-fit-FP16
    // boundary instead of the full zoo.
    const std::vector<std::string> model_names =
        smoke ? std::vector<std::string>{"Mistral-7B", "LLaMA-2-70B"}
              : std::vector<std::string>{
                    "Mistral-7B",  "LLaMA-3-8B",  "LLaMA-2-13B",
                    "LLaMA-1-30B", "LLaMA-1-65B", "LLaMA-2-70B",
                    "LLaMA-3-70B", "Qwen2-72B"};

    double comet_sum = 0.0, qserve_sum = 0.0, baseline_sum = 0.0,
           best_base_comet_ratio_sum = 0.0;
    int counted = 0;

    for (const std::string &name : model_names) {
        EngineConfig config;
        config.model = LlmConfig::byName(name);
        config.input_tokens = input_tokens;
        config.output_tokens = output_tokens;

        double throughputs[5];
        ThroughputResult comet_result;
        for (size_t mi = 0; mi < 5; ++mi) {
            config.mode = kModes[mi];
            const ThroughputResult result =
                ServingEngine(config).measureThroughput();
            throughputs[mi] = result.tokens_per_second;
            if (kModes[mi] == ServingMode::kCometW4AxKv4)
                comet_result = result;
        }
        const double baseline = throughputs[1]; // TRT-LLM-W4A16
        std::vector<std::string> row{name};
        for (size_t mi = 0; mi < 5; ++mi) {
            row.push_back(
                baseline > 0.0 && throughputs[mi] > 0.0
                    ? formatDouble(throughputs[mi] / baseline, 2)
                    : std::string("OOM"));
        }
        row.push_back(std::to_string(comet_result.batch));
        row.push_back(formatDouble(comet_result.tokens_per_second, 0));
        table.addRow(std::move(row));

        if (baseline > 0.0) {
            comet_sum += throughputs[4] / baseline;
            qserve_sum += throughputs[3] / baseline;
            baseline_sum += 1.0;
            const double best_baseline =
                std::max({throughputs[0], throughputs[1],
                          throughputs[2]});
            best_base_comet_ratio_sum +=
                throughputs[4] / best_baseline;
            ++counted;
        }

        if (report != nullptr) {
            // Cost-model numbers are deterministic, so the absolute
            // COMET throughput per model is a gated metric.
            const std::string prefix =
                "io" + std::to_string(input_tokens) + "_" +
                std::to_string(output_tokens) + "." + name;
            report->addMetric(prefix + ".comet_tokens_per_s",
                              throughputs[4], "tokens/s",
                              /*gate=*/true,
                              /*higher_is_better=*/true);
            if (baseline > 0.0) {
                report->addMetric(prefix + ".comet_vs_w4a16",
                                  throughputs[4] / baseline, "x",
                                  /*gate=*/true,
                                  /*higher_is_better=*/true);
            }
        }
    }
    table.print();
    std::printf("\n  COMET vs TRT-LLM-W4A16 (avg):        %s\n",
                formatSpeedup(comet_sum / counted).c_str());
    std::printf("  COMET vs best TRT-LLM config (avg):  %s\n",
                formatSpeedup(best_base_comet_ratio_sum / counted)
                    .c_str());
    std::printf("  COMET vs QServe (avg):               %s\n\n",
                formatSpeedup(comet_sum / qserve_sum).c_str());

    if (report != nullptr) {
        const std::string prefix = "io" +
                                   std::to_string(input_tokens) + "_" +
                                   std::to_string(output_tokens);
        report->addMetric(prefix + ".comet_vs_w4a16_avg",
                          comet_sum / counted, "x", /*gate=*/true,
                          /*higher_is_better=*/true);
        report->addMetric(prefix + ".comet_vs_qserve_avg",
                          comet_sum / qserve_sum, "x", /*gate=*/true,
                          /*higher_is_better=*/true);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(
        argc, argv,
        "Figure 10: max end-to-end serving throughput vs TRT-LLM "
        "and QServe",
        {{"--smoke", "reduced shapes for CI (two models, one "
                     "setting)"},
         {comet::bench::BenchReport::kJsonFlag,
          comet::bench::BenchReport::kJsonFlagHelp}});
    const bool smoke = comet::bench::smokeRequested(argc, argv);
    std::printf("=== Figure 10: end-to-end max throughput on one "
                "A100-80G (normalized to TRT-LLM-W4A16)%s ===\n\n",
                smoke ? " [smoke]" : "");
    comet::bench::BenchReport report("bench_fig10_throughput");
    report.setConfig("smoke", smoke ? "true" : "false");
    if (smoke) {
        // Reduced shapes: one short setting, two models — exercises
        // the full engine stack in a few hundred milliseconds.
        runSetting(128, 64, /*smoke=*/true, &report);
        report.writeIfRequested(argc, argv);
        return 0;
    }
    runSetting(1024, 512, /*smoke=*/false, &report);
    runSetting(128, 128, /*smoke=*/false, &report);
    std::printf("Paper-shape checks: COMET ~2.02x TRT-W4A16 at "
                "1024/512 and ~1.63x at 128/128; ~1.17x over QServe; "
                "FP16 70B+ models do not fit (OOM).\n");
    report.writeIfRequested(argc, argv);
    return 0;
}
