/**
 * @file
 * Reproduces Table 1: language-modeling perplexity of every
 * quantization configuration, across a family of teacher models.
 *
 * Substitution (see DESIGN.md): real checkpoints and WikiText2 are
 * unavailable, so each paper model is represented by a tiny
 * transformer whose activation-outlier structure scales with the
 * original's (bigger models -> more pronounced outliers), evaluated on
 * sequences sampled from itself. Absolute perplexities differ from the
 * paper; the deliverable is the *row ordering and relative
 * degradation*: FP16 <= W8A8 ~ W4A16 ~ FMPQ-W4Ax << full W4A4, with
 * QoQ comparable to (slightly behind) FMPQ.
 *
 * The bench also reports the Section 6.2 deployment statistic: the
 * fraction of GEMM compute FMPQ runs as W4A4 (paper: >84%, and ~92%
 * for LLaMA-1-30B).
 */
#include <cstdio>

#include "bench_flags.h"
#include <map>
#include <vector>

#include "comet/common/table.h"
#include "comet/model/perplexity.h"

using namespace comet;

namespace {

/** A tiny stand-in transformer for one paper model. */
struct ModelEntry {
    const char *name;
    TinyTransformerConfig config;
};

std::vector<ModelEntry>
modelFamily()
{
    // Larger paper models get stronger outlier structure (the
    // empirical trend of Section 3.1) and a distinct seed; dimensions
    // stay tiny so the full table runs in seconds.
    auto base = [](uint64_t seed, double outlier_scale) {
        TinyTransformerConfig config;
        config.vocab_size = 96;
        config.hidden_size = 64;
        config.num_heads = 4;
        config.num_kv_heads = 4;
        config.num_layers = 2;
        config.intermediate_size = 128;
        config.outlier_fraction = 0.06;
        config.outlier_scale = outlier_scale;
        config.seed = seed;
        return config;
    };
    auto opt = base(104, 26.0);
    opt.gated_mlp = false; // OPT uses a plain ReLU MLP
    return {
        {"LLaMA-1-13B-t", base(101, 18.0)},
        {"LLaMA-2-7B-t", base(102, 16.0)},
        {"LLaMA-3-8B-t", base(103, 20.0)},
        {"OPT-13B-t", opt},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Table 1: perplexity of every quantization configuration (synthetic substitution)");
    std::printf("=== Table 1: perplexity of quantized models "
                "(synthetic-teacher substitution; lower is better) "
                "===\n\n");

    std::vector<std::string> headers{"Precision", "Method"};
    std::vector<ModelEntry> models = modelFamily();
    for (const ModelEntry &model : models)
        headers.push_back(model.name);
    Table table(headers);

    std::map<std::pair<int, size_t>, double> results;
    std::map<size_t, double> int4_fraction;

    for (size_t mi = 0; mi < models.size(); ++mi) {
        const auto teacher =
            TinyTransformer::random(models[mi].config);
        Rng rng(41);
        const Dataset eval = sampleDataset(teacher, 4, 28, rng);
        const Dataset calib = sampleDataset(teacher, 3, 28, rng);
        const CalibrationData calibration =
            CalibrationData::collect(teacher, calib);
        for (QuantScheme scheme : table1Schemes()) {
            FmpqModelStats stats;
            const QuantizedModel quantized = buildQuantizedModel(
                teacher, scheme, calibration, &stats);
            results[{static_cast<int>(scheme), mi}] =
                evaluatePerplexity(quantized.model, quantized.sim(),
                                   eval);
            if (scheme == QuantScheme::kFmpqW4AxKv4)
                int4_fraction[mi] = stats.w4a4_compute_fraction;
        }
    }

    for (QuantScheme scheme : table1Schemes()) {
        std::vector<std::string> row{quantSchemePrecision(scheme),
                                     quantSchemeName(scheme)};
        for (size_t mi = 0; mi < models.size(); ++mi) {
            row.push_back(formatDouble(
                results.at({static_cast<int>(scheme), mi}), 2));
        }
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\nFMPQ deployment statistics (Section 6.2):\n");
    for (size_t mi = 0; mi < models.size(); ++mi) {
        std::printf("  %-14s W4A4 compute fraction = %s (paper: "
                    ">84%% typical)\n",
                    models[mi].name,
                    formatPercent(int4_fraction.at(mi)).c_str());
    }
    std::printf("\nPaper-shape checks: FMPQ tracks the W8A8/W4A16 "
                "rows; full W4A4 collapses (paper: PPL > 9.9 vs "
                "~3.5); QoQ lands near FMPQ.\n");
    return 0;
}
