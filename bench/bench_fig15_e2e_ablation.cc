/**
 * @file
 * Reproduces Figure 15: end-to-end ablation separating the two halves
 * of the COMET system — weight-activation quantization only
 * (COMET-W4Ax, FP16 KV cache) and KV-cache quantization only
 * (COMET-KV4, FP16 GEMMs) — against the TRT-LLM-W4A16 baseline and
 * the combined system (paper: 1.32x, 1.17x, and 1.82x on average).
 */
#include <cstdio>

#include "bench_flags.h"
#include <vector>

#include "comet/common/table.h"
#include "comet/serve/engine.h"

using namespace comet;

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Figure 15: end-to-end ablation of W4Ax-only / KV4-only vs the combined system");
    std::printf("=== Figure 15: end-to-end ablation, 1024/512 "
                "(normalized to TRT-LLM-W4A16) ===\n\n");

    const ServingMode modes[] = {
        ServingMode::kTrtW4A16, ServingMode::kCometW4AxOnly,
        ServingMode::kCometKv4Only, ServingMode::kCometW4AxKv4};

    Table table({"model", "TRT-LLM-W4A16", "COMET-W4Ax (GEMM only)",
                 "COMET-KV4 (cache only)", "COMET (full)"});

    const std::vector<std::string> model_names{
        "Mistral-7B",  "LLaMA-3-8B",  "LLaMA-2-13B",
        "LLaMA-1-30B", "LLaMA-3-70B", "Qwen2-72B"};

    double sums[4] = {0, 0, 0, 0};
    int counted = 0;
    for (const std::string &name : model_names) {
        EngineConfig config;
        config.model = LlmConfig::byName(name);
        config.input_tokens = 1024;
        config.output_tokens = 512;

        double tps[4];
        for (size_t mi = 0; mi < 4; ++mi) {
            config.mode = modes[mi];
            tps[mi] = ServingEngine(config)
                          .measureThroughput()
                          .tokens_per_second;
        }
        std::vector<std::string> row{name};
        for (size_t mi = 0; mi < 4; ++mi) {
            row.push_back(tps[0] > 0.0 && tps[mi] > 0.0
                              ? formatDouble(tps[mi] / tps[0], 2)
                              : std::string("OOM"));
        }
        table.addRow(std::move(row));
        if (tps[0] > 0.0) {
            for (size_t mi = 0; mi < 4; ++mi)
                sums[mi] += tps[mi] / tps[0];
            ++counted;
        }
    }
    table.print();

    std::printf("\nAverages over models that fit the baseline:\n");
    std::printf("  COMET-W4Ax only: %s (paper: 1.32x)\n",
                formatSpeedup(sums[1] / counted).c_str());
    std::printf("  COMET-KV4 only:  %s (paper: 1.17x)\n",
                formatSpeedup(sums[2] / counted).c_str());
    std::printf("  COMET combined:  %s (paper: 1.82x)\n",
                formatSpeedup(sums[3] / counted).c_str());
    std::printf("\nPaper-shape checks: each half helps on its own; "
                "KV4-only is the weaker half (it cuts no compute and "
                "no weight storage); the combination dominates.\n");
    return 0;
}
