/**
 * @file
 * Extension ablation (beyond the paper's own figures, per DESIGN.md
 * Section 5): sensitivity of FMPQ to the channel block size k and to
 * the channel permutation, measured on LLaMA-scale synthetic
 * activations. The paper fixes k = 128 and permutation on; this bench
 * regenerates the trade-off that justifies those choices — larger
 * blocks raise tensor-core utilization per scale but trap more
 * channels with outliers (lower W4A4 fraction) unless the permutation
 * is enabled, and smaller blocks cost quantization metadata.
 */
#include <cstdio>

#include "bench_flags.h"

#include "comet/common/rng.h"
#include "comet/common/table.h"
#include "comet/model/synthetic.h"
#include "comet/quant/fmpq.h"
#include "comet/quant/quantizer.h"

using namespace comet;

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Extension: FMPQ sensitivity to channel block size and permutation");
    std::printf("=== FMPQ design ablation: block size x permutation "
                "===\n\n");

    const SyntheticActivationModel model(llama7bActivationProfile());
    Rng rng(11);
    const Tensor calib = model.sample(128, rng);
    const Tensor eval = model.sample(64, rng);

    Table table({"block k", "permutation", "W4A4 fraction",
                 "activation SQNR (dB)", "scales per token"});
    for (int64_t block : {32, 64, 128, 256, 512}) {
        for (bool permute : {false, true}) {
            FmpqConfig config;
            config.block_size = block;
            config.enable_permutation = permute;
            const auto quantizer =
                FmpqActivationQuantizer::calibrate(calib, config);
            const Tensor q = quantizer.fakeQuantize(eval);
            table.addRow(
                {std::to_string(block), permute ? "on" : "off",
                 formatPercent(quantizer.w4a4ComputeFraction()),
                 formatDouble(sqnrDb(eval, q), 1),
                 std::to_string(4096 / block)});
        }
        table.addSeparator();
    }
    table.print();

    std::printf("\nReading: with permutation on, k = 128 keeps the "
                "W4A4 fraction high (>84%%) at 1/4 the metadata of "
                "k = 32 — the paper's chosen operating point. Without "
                "permutation the W4A4 fraction collapses as k "
                "grows.\n");
    return 0;
}
