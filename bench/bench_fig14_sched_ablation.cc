/**
 * @file
 * Reproduces Figure 14: the fine-grained SM scheduling ladder. For
 * LLaMA-3-8B and LLaMA-3-70B GEMMs, speedup over the uniform W4A8
 * kernel is reported for the naive W4Ax kernel, +tile remapping,
 * +tile decomposition (task stealing, the full COMET-W4Ax), and the
 * Oracle pure-W4A4 kernel — plus COMET's fraction of Oracle
 * performance (paper: 92.7%-97.8%).
 */
#include <cstdio>

#include "bench_flags.h"
#include <vector>

#include "comet/common/table.h"
#include "comet/gpusim/kernel_sim.h"
#include "comet/model/layer_shapes.h"

using namespace comet;

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Figure 14: fine-grained SM scheduling ladder vs the Oracle W4A4 kernel");
    const KernelSimulator sim;
    std::printf("=== Figure 14: SM scheduling ablation (speedup over "
                "the W4A8 kernel; higher is better) ===\n\n");

    const auto variants = figure14Variants();
    std::vector<std::string> headers{"model"};
    for (const W4AxVariant &variant : variants)
        headers.push_back(variant.name);
    headers.push_back("Oracle W4A4");
    headers.push_back("COMET/Oracle");
    Table table(headers);

    const LlmConfig models[] = {LlmConfig::llama3_8b(),
                                LlmConfig::llama3_70b()};
    for (const LlmConfig &model : models) {
        // Aggregate the decoder GEMMs at the paper's large-batch
        // operating point.
        constexpr int64_t kBatch = 128;
        // The W4A8 reference is COMET's own kernel with every tile
        // forced to the INT8 path — the paper's "W4A8 GEMM kernel",
        // sharing the exact tile/pipeline machinery.
        CometKernelFeatures all_int8;
        all_int8.w4a4_fraction = 0.0;
        double w4a8 = 0.0, oracle = 0.0;
        std::vector<double> latency(variants.size(), 0.0);
        for (const LayerGemm &gemm :
             decoderLayerGemms(model, kBatch)) {
            w4a8 += sim.latencyUs(gemm.shape,
                                  GemmKernelKind::kCometW4Ax,
                                  all_int8);
            oracle += sim.latencyUs(gemm.shape,
                                    GemmKernelKind::kOracleW4A4);
            for (size_t vi = 0; vi < variants.size(); ++vi) {
                latency[vi] +=
                    sim.variantLatencyUs(gemm.shape, variants[vi]);
            }
        }
        std::vector<std::string> row{model.name};
        for (size_t vi = 0; vi < variants.size(); ++vi)
            row.push_back(formatSpeedup(w4a8 / latency[vi]));
        row.push_back(formatSpeedup(w4a8 / oracle));
        row.push_back(formatPercent(oracle / latency.back()));
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\nPaper-shape checks: naive W4Ax ~1.2-1.3x over "
                "W4A8; remapping lifts it to ~1.56-1.60x; tile "
                "decomposition reaches ~1.67-1.71x; Oracle W4A4 "
                "stays below 2x; COMET lands at >90%% of Oracle.\n");
    return 0;
}
