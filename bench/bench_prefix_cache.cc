/**
 * @file
 * Prefix-cache effectiveness bench: hit rate, blocks saved and the
 * virtual-time latency win of comet::prefix on a seeded shared-prompt
 * workload, gated in CI (bench/baselines/BENCH_prefix_cache.json).
 *
 * The workload is the open-loop loadgen with per-tenant shared prompt
 * pools — the system-prompt/replayed-history redundancy the cache
 * exists to exploit. Everything reported is deterministic: counts
 * come from the cache's own accounting and latencies are virtual-time
 * (bit-stable for a fixed seed at any COMET_THREADS), so every metric
 * can be gated without flaking across machines.
 *
 * Three correctness checks ride along (any failure exits 1):
 *  1. cache-on and cache-off runs produce identical per-request
 *     terminals and token counts (the cache is a pure optimization);
 *  2. back-to-back cache-on runs render bit-identical reports;
 *  3. the cache genuinely grafts (hits > 0) on this workload.
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_flags.h"
#include "bench_report.h"

#include "comet/obs/metrics.h"
#include "comet/serve/engine.h"
#include "comet/server/loadgen.h"
#include "comet/server/server.h"

using namespace comet;
using namespace comet::server;

namespace {

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "CHECK FAILED: %s\n", what);
        ++failures;
    }
}

/** LLaMA-3-8B at COMET W4A4KV4 over a mid-sized KV pool: enough for
 * steady service, small enough that cached prefixes see eviction
 * pressure in the full run. */
EngineConfig
servedEngine()
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 256;
    config.output_tokens = 64;
    return engineConfigWithKvBlocks(config, 2048);
}

/** Two tenants, both opted in, each with its own shared prompt
 * pools: heavy prefix redundancy inside a tenant, none across (the
 * namespaces would mask it anyway). */
LoadgenConfig
sharedPromptWorkload(uint64_t seed, bool smoke)
{
    LoadgenConfig config;
    config.seed = seed;
    config.clients = 4;

    LoadgenTenant chat;
    chat.admission.name = "chat";
    chat.admission.weight = 2.0;
    chat.admission.prefix_caching = true;
    chat.arrival_rate_per_s = 40.0;
    chat.requests = smoke ? 32 : 128;
    chat.prompt_min = 96; // the shared pool head
    chat.prompt_max = 192;
    chat.output_min = 4;
    chat.output_max = 24;
    chat.shared_prompt_pools = 3;

    LoadgenTenant agents;
    agents.admission.name = "agents";
    agents.admission.weight = 1.0;
    agents.admission.prefix_caching = true;
    agents.arrival_rate_per_s = 20.0;
    agents.requests = smoke ? 16 : 64;
    agents.prompt_min = 128;
    agents.prompt_max = 256;
    agents.output_min = 8;
    agents.output_max = 32;
    agents.shared_prompt_pools = 2;

    config.tenants = {chat, agents};
    return config;
}

/** One full session against a fresh server; returns the report and
 * fills @p stats. */
LoadgenReport
runSession(const ServingEngine &engine, const LoadgenConfig &workload,
           bool prefix_on, ServerStats *stats)
{
    obs::MetricsRegistry::global().reset();
    ServerConfig config;
    config.tenants = loadgenTenants(workload);
    config.max_batch = 16;
    config.enable_prefix_cache = prefix_on;
    Server server(&engine, config);
    const LoadgenReport report = runLoadgen(&server, workload);
    *stats = server.stats();
    server.stop();
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::handleArgs(
        argc, argv,
        "prefix-cache effectiveness on a shared-prompt serving "
        "workload: hit rate, blocks saved, virtual-time latency win",
        {{"--smoke", "reduced request counts for CI"},
         {"--seed=", "workload seed (default 42)"},
         {bench::BenchReport::kJsonFlag,
          bench::BenchReport::kJsonFlagHelp}});
    const bool smoke = bench::smokeRequested(argc, argv);
    const auto seed = static_cast<uint64_t>(
        bench::flagValue(argc, argv, "--seed=", 42));

    const ServingEngine engine(servedEngine());
    const LoadgenConfig workload = sharedPromptWorkload(seed, smoke);

    std::printf("=== Prefix cache on a shared-prompt workload "
                "(LLaMA-3-8B, COMET W4A4KV4, seed %llu%s) ===\n\n",
                static_cast<unsigned long long>(seed),
                smoke ? ", smoke" : "");

    ServerStats on_stats, off_stats, again_stats;
    const LoadgenReport on =
        runSession(engine, workload, true, &on_stats);
    const LoadgenReport off =
        runSession(engine, workload, false, &off_stats);
    const LoadgenReport again =
        runSession(engine, workload, true, &again_stats);

    // 1. Pure optimization: identical observable output.
    check(on.outcomes.size() == off.outcomes.size(),
          "cache-on and cache-off saw the same workload");
    for (size_t i = 0; i < on.outcomes.size(); ++i) {
        if (on.outcomes[i].terminal != off.outcomes[i].terminal ||
            on.outcomes[i].tokens != off.outcomes[i].tokens) {
            check(false, "cache-on and cache-off disagree on a "
                         "request's terminal or token count");
            break;
        }
    }
    // 2. Determinism of the cached run itself.
    check(renderLoadgenReport(on) == renderLoadgenReport(again),
          "back-to-back cache-on runs render identical reports");
    check(on_stats.prefix_matched_tokens ==
              again_stats.prefix_matched_tokens,
          "back-to-back cache-on runs graft identically");
    // 3. The cache genuinely works on this workload.
    check(on_stats.prefix_hits > 0, "the cache grafted at least once");
    check(on_stats.prefix_matched_tokens > 0,
          "grafted a nonzero number of context tokens");
    check(off_stats.prefix_hits == 0 &&
              off_stats.prefix_matched_tokens == 0,
          "the cache-off run never touched the cache");

    const int64_t lookups = on_stats.prefix_hits +
                            on_stats.prefix_misses;
    const double hit_rate =
        lookups > 0 ? static_cast<double>(on_stats.prefix_hits) /
                          static_cast<double>(lookups)
                    : 0.0;
    const double ttft_on = on.tenants[0].ttft_p50_us;
    const double ttft_off = off.tenants[0].ttft_p50_us;
    const double ttft_speedup =
        ttft_on > 0.0 ? ttft_off / ttft_on : 0.0;

    std::printf("cache on:\n%s\n",
                renderLoadgenReport(on).c_str());
    std::printf("cache off:\n%s\n",
                renderLoadgenReport(off).c_str());
    std::printf(
        "prefix: hits %lld / lookups %lld (%.1f%%), blocks "
        "matched %lld, tokens grafted %lld, bytes saved %.2f MB, "
        "blocks evicted %lld\n",
        static_cast<long long>(on_stats.prefix_hits),
        static_cast<long long>(lookups), hit_rate * 100.0,
        static_cast<long long>(on_stats.prefix_blocks_matched),
        static_cast<long long>(on_stats.prefix_matched_tokens),
        static_cast<double>(on_stats.prefix_bytes_saved) / 1e6,
        static_cast<long long>(on_stats.prefix_blocks_evicted));
    std::printf("chat-tenant TTFT p50: %.1f us on vs %.1f us off "
                "(%.2fx)\n",
                ttft_on, ttft_off, ttft_speedup);

    bench::BenchReport report("bench_prefix_cache");
    report.setConfig("seed", static_cast<int64_t>(seed));
    report.setConfig("smoke", smoke ? "true" : "false");
    report.setConfig("requests", on.submitted);
    // All deterministic (virtual-time latencies included): gate the
    // cache's effectiveness so a regression that quietly stops
    // grafting — or grafts less — fails the perf leg.
    report.addMetric("prefix_hit_rate", hit_rate, "fraction",
                     /*gate=*/true, /*higher_is_better=*/true);
    report.addMetric("prefix_blocks_matched",
                     static_cast<double>(
                         on_stats.prefix_blocks_matched),
                     "blocks", true, true);
    report.addMetric("prefix_matched_tokens",
                     static_cast<double>(
                         on_stats.prefix_matched_tokens),
                     "tokens", true, true);
    report.addMetric("prefix_bytes_saved",
                     static_cast<double>(on_stats.prefix_bytes_saved),
                     "bytes", true, true);
    report.addMetric("chat_ttft_p50_speedup", ttft_speedup, "x", true,
                     true);
    report.addMetric("prefix_blocks_evicted",
                     static_cast<double>(
                         on_stats.prefix_blocks_evicted),
                     "blocks", false, false);
    report.addMetric("makespan_us", on.makespan_us, "us", false,
                     false);
    report.writeIfRequested(argc, argv);

    if (failures > 0) {
        std::fprintf(stderr, "\n%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("\nAll equivalence and determinism checks passed.\n");
    return 0;
}
