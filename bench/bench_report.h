/**
 * @file
 * Machine-readable bench reports: the `--json=FILE` emitter behind the
 * perf-trajectory gate (scripts/check_bench.py).
 *
 * Schema (stable; bump `schema_version` on breaking change):
 *
 *     {
 *       "schema_version": 1,
 *       "bench": "bench_kernel_micro",
 *       "git_sha": "<short sha or 'unknown'>",
 *       "config": { "<key>": "<value>", ... },
 *       "metrics": [
 *         { "name": "...", "value": <number>, "unit": "...",
 *           "gate": true|false,
 *           "direction": "lower_is_better"|"higher_is_better" },
 *         ...
 *       ]
 *     }
 *
 * Conventions:
 *  - *Gated* metrics are deterministic (instruction counts, simulated
 *    cost-model throughput): check_bench.py fails CI when they regress
 *    more than its threshold against the committed BENCH_*.json
 *    baseline. Raw CPU timings stay ungated — they inform trends but
 *    would flake CI across machines.
 *  - `config` records everything that must match for a comparison to
 *    be meaningful (shapes, smoke mode, ...). check_bench.py refuses
 *    to diff reports whose configs differ. Machine-dependent values
 *    (e.g. the active SIMD mode) belong in ungated metric names or
 *    stay out of config.
 *  - `git_sha` is informational provenance, never compared.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "comet/common/status.h"

namespace comet {
namespace bench {

/** One reported metric. */
struct BenchMetric {
    std::string name;
    double value = 0.0;
    std::string unit;
    bool gate = false;             ///< enforced by check_bench.py
    bool higher_is_better = false; ///< regression direction
};

/** Collects config and metrics for one bench run and writes the JSON
 * report. */
class BenchReport
{
  public:
    explicit BenchReport(std::string bench_name)
        : bench_(std::move(bench_name))
    {
    }

    /** Records one config key (stringified); comparisons require
     * identical config maps. @{ */
    void
    setConfig(const std::string &key, const std::string &value)
    {
        config_.emplace_back(key, value);
    }

    void
    setConfig(const std::string &key, int64_t value)
    {
        setConfig(key, std::to_string(value));
    }
    /** @} */

    /** Adds one metric row. */
    void
    addMetric(const std::string &name, double value,
              const std::string &unit, bool gate,
              bool higher_is_better)
    {
        metrics_.push_back(
            BenchMetric{name, value, unit, gate, higher_is_better});
    }

    /** Writes the report to @p path (aborts on I/O failure — a CI
     * gate that silently loses its input is worse than a crash). */
    void
    write(const std::string &path) const
    {
        std::FILE *out = std::fopen(path.c_str(), "w");
        COMET_CHECK_MSG(out != nullptr,
                        "cannot open --json output file");
        std::fprintf(out, "{\n  \"schema_version\": 1,\n");
        std::fprintf(out, "  \"bench\": %s,\n",
                     quoted(bench_).c_str());
        std::fprintf(out, "  \"git_sha\": %s,\n",
                     quoted(gitSha()).c_str());
        std::fprintf(out, "  \"config\": {");
        for (size_t i = 0; i < config_.size(); ++i) {
            std::fprintf(out, "%s\n    %s: %s",
                         i == 0 ? "" : ",",
                         quoted(config_[i].first).c_str(),
                         quoted(config_[i].second).c_str());
        }
        std::fprintf(out, "%s},\n", config_.empty() ? "" : "\n  ");
        std::fprintf(out, "  \"metrics\": [");
        for (size_t i = 0; i < metrics_.size(); ++i) {
            const BenchMetric &m = metrics_[i];
            std::fprintf(
                out,
                "%s\n    { \"name\": %s, \"value\": %.17g, "
                "\"unit\": %s, \"gate\": %s, \"direction\": %s }",
                i == 0 ? "" : ",", quoted(m.name).c_str(), m.value,
                quoted(m.unit).c_str(), m.gate ? "true" : "false",
                quoted(m.higher_is_better ? "higher_is_better"
                                          : "lower_is_better")
                    .c_str());
        }
        std::fprintf(out, "%s]\n}\n", metrics_.empty() ? "" : "\n  ");
        COMET_CHECK_MSG(std::fclose(out) == 0,
                        "error writing --json output file");
    }

    /** Writes the report when `--json=FILE` was passed; returns
     * whether it was. Call after all metrics are recorded. */
    bool
    writeIfRequested(int argc, char **argv) const
    {
        std::string path;
        bool requested = false;
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strncmp(arg, "--json=", 7) == 0) {
                requested = true;
                path = arg + 7; // last occurrence wins
            }
        }
        if (!requested)
            return false;
        COMET_CHECK_MSG(!path.empty(), "--json needs a file path");
        write(path);
        return true;
    }

    /** The help-table entry benches list for this flag. */
    static constexpr const char *kJsonFlag = "--json=";
    static constexpr const char *kJsonFlagHelp =
        "write a machine-readable report to FILE "
        "(see scripts/check_bench.py)";

  private:
    /** JSON string literal with minimal escaping (quotes, backslash,
     * control characters — enough for names, units and sha strings). */
    static std::string
    quoted(const std::string &text)
    {
        std::string out = "\"";
        for (const char c : text) {
            if (c == '"' || c == '\\') {
                out += '\\';
                out += c;
            } else if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
        out += '"';
        return out;
    }

    /** Provenance: `COMET_GIT_SHA` when set (CI exports it), else a
     * best-effort `git rev-parse`, else "unknown". */
    static std::string
    gitSha()
    {
        if (const char *env = std::getenv("COMET_GIT_SHA");
            env != nullptr && env[0] != '\0')
            return env;
#if !defined(_WIN32)
        if (std::FILE *pipe =
                ::popen("git rev-parse --short HEAD 2>/dev/null",
                        "r")) {
            char buf[64] = {};
            const size_t n = std::fread(buf, 1, sizeof(buf) - 1, pipe);
            ::pclose(pipe);
            std::string sha(buf, n);
            while (!sha.empty() &&
                   (sha.back() == '\n' || sha.back() == '\r'))
                sha.pop_back();
            if (!sha.empty())
                return sha;
        }
#endif
        return "unknown";
    }

    std::string bench_;
    std::vector<std::pair<std::string, std::string>> config_;
    std::vector<BenchMetric> metrics_;
};

} // namespace bench
} // namespace comet
