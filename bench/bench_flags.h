/**
 * @file
 * Shared command-line handling for the bench_* binaries.
 *
 * Every bench main calls handleArgs() first. It gives each binary a
 * uniform `--help` (one-line purpose plus a flags table), rejects
 * unknown flags instead of silently ignoring them (exit code 2), and
 * activates observability from the environment so
 * `COMET_TRACE=out.json ./bench_foo` works for every benchmark.
 *
 * stdout stays reserved for the paper-style result tables; only an
 * explicit `--help` prints there (no table is expected then), and
 * unknown-flag diagnostics go to stderr.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "comet/obs/obs.h"

namespace comet {
namespace bench {

/** One accepted command-line flag and its help-table description. */
struct BenchFlag {
    const char *name;        ///< e.g. "--smoke"
    const char *description; ///< one line for the --help table
};

namespace detail {

inline void
printHelp(const char *binary, const char *purpose,
          const std::vector<BenchFlag> &flags,
          const char *passthrough_prefix, std::FILE *out)
{
    std::fprintf(out, "%s: %s\n\nUsage: %s [flags]\n\nFlags:\n",
                 binary, purpose, binary);
    std::fprintf(out, "  %-18s %s\n", "--help, -h",
                 "print this help and exit");
    for (const BenchFlag &flag : flags)
        std::fprintf(out, "  %-18s %s\n", flag.name,
                     flag.description);
    if (passthrough_prefix != nullptr) {
        std::fprintf(out, "  %s*     passed through (see %s--help)\n",
                     passthrough_prefix, passthrough_prefix);
    }
    std::fprintf(out,
                 "\nEnvironment:\n"
                 "  COMET_TRACE=<out.json>  export a Chrome trace of "
                 "the run (open in Perfetto)\n"
                 "  COMET_THREADS=<n>       worker threads for the "
                 "runtime pool (default: hw cores)\n");
}

} // namespace detail

/**
 * Uniform bench argument handling: prints the purpose line and flags
 * table on `--help`/`-h` (exit 0), fails fast on any argument not in
 * @p flags (exit 2, help on stderr), and applies `COMET_TRACE` from
 * the environment. Flags whose names start with
 * @p passthrough_prefix (e.g. "--benchmark_" for google-benchmark
 * binaries) are accepted without being listed.
 */
inline void
handleArgs(int argc, char **argv, const char *purpose,
           const std::vector<BenchFlag> &flags = {},
           const char *passthrough_prefix = nullptr)
{
    obs::configureFromEnv();
    const char *binary = argc > 0 ? argv[0] : "bench";
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            detail::printHelp(binary, purpose, flags,
                              passthrough_prefix, stdout);
            std::exit(0);
        }
        bool known = false;
        for (const BenchFlag &flag : flags) {
            const size_t name_len = std::strlen(flag.name);
            // A name ending in '=' is a value flag (e.g. "--seed=")
            // and matches any "--seed=<value>" argument.
            const bool value_flag =
                name_len > 0 && flag.name[name_len - 1] == '=';
            if (value_flag
                    ? std::strncmp(arg, flag.name, name_len) == 0
                    : std::strcmp(arg, flag.name) == 0) {
                known = true;
                break;
            }
        }
        if (!known && passthrough_prefix != nullptr &&
            std::strncmp(arg, passthrough_prefix,
                         std::strlen(passthrough_prefix)) == 0) {
            known = true;
        }
        if (!known) {
            std::fprintf(stderr, "%s: unknown flag '%s'\n\n", binary,
                         arg);
            detail::printHelp(binary, purpose, flags,
                              passthrough_prefix, stderr);
            std::exit(2);
        }
    }
}

/** True when `--smoke` appears in the arguments (reduced shapes for
 * CI); call handleArgs() first so unknown flags still fail fast. */
inline bool
smokeRequested(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            return true;
    }
    return false;
}

/**
 * Value of an integer value flag (name ends in '=', e.g. "--seed=":
 * `--seed=7` returns 7). The last occurrence wins; @p fallback when
 * absent. Call handleArgs() first — it validates flag names, so a
 * malformed value (not a number) is the only error left here (exit
 * 2).
 */
inline int64_t
flagValue(int argc, char **argv, const char *name, int64_t fallback)
{
    const size_t name_len = std::strlen(name);
    int64_t value = fallback;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], name, name_len) != 0)
            continue;
        char *end = nullptr;
        const char *text = argv[i] + name_len;
        value = std::strtoll(text, &end, 10);
        if (end == text || *end != '\0') {
            std::fprintf(stderr, "%s: bad value in '%s'\n",
                         argc > 0 ? argv[0] : "bench", argv[i]);
            std::exit(2);
        }
    }
    return value;
}

/**
 * Value of a string value flag (name ends in '=', e.g. "--json=":
 * `--json=out.json` returns "out.json"). The last occurrence wins;
 * @p fallback when absent. Call handleArgs() first so unknown flags
 * fail fast.
 */
inline std::string
flagString(int argc, char **argv, const char *name,
           const std::string &fallback = {})
{
    const size_t name_len = std::strlen(name);
    std::string value = fallback;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], name, name_len) == 0)
            value = argv[i] + name_len;
    }
    return value;
}

} // namespace bench
} // namespace comet
