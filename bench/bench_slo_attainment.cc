/**
 * @file
 * SLO-attainment bench for chunked prefill (DESIGN.md §14): runs the
 * canonical mixed workload — one long-context ingestion tenant whose
 * multi-thousand-token prompts monopolize monolithic prefill steps,
 * plus two interactive chat tenants with tight TTFT/TPOT budgets —
 * monolithic and chunked, and reports per-tenant latency percentiles
 * and SLO attainment. Gated in CI
 * (bench/baselines/BENCH_slo_attainment.json).
 *
 * Everything reported is virtual-time and therefore deterministic
 * for a fixed seed at any COMET_THREADS, so the chat tenants' TPOT
 * tail win — the reason chunked prefill exists — can be gated
 * without flaking across machines.
 *
 * Three correctness checks ride along (any failure exits 1):
 *  1. chunked and monolithic runs produce identical per-request
 *     terminals and token counts (chunking only reshapes time);
 *  2. back-to-back chunked runs render bit-identical reports;
 *  3. chunking genuinely improves the chat tenants' TPOT p99 on
 *     this workload.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_flags.h"
#include "bench_report.h"

#include "comet/obs/metrics.h"
#include "comet/serve/engine.h"
#include "comet/server/loadgen.h"
#include "comet/server/server.h"

using namespace comet;
using namespace comet::server;

namespace {

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "CHECK FAILED: %s\n", what);
        ++failures;
    }
}

/** LLaMA-3-8B at COMET W4A4KV4 with a pool large enough that the
 * long-context prompts admit without thrashing — the bench isolates
 * scheduling shape, not KV pressure. */
EngineConfig
servedEngine()
{
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 256;
    config.output_tokens = 64;
    return engineConfigWithKvBlocks(config, 4096);
}

/** One full session against a fresh server at the given chunk size
 * (0 = monolithic); fills @p stats. */
LoadgenReport
runSession(const ServingEngine &engine, const LoadgenConfig &workload,
           int64_t chunk_tokens, ServerStats *stats)
{
    obs::MetricsRegistry::global().reset();
    ServerConfig config;
    config.tenants = loadgenTenants(workload);
    config.max_batch = 16;
    config.chunked_prefill_tokens = chunk_tokens;
    Server server(&engine, config);
    const LoadgenReport report = runLoadgen(&server, workload);
    *stats = server.stats();
    server.stop();
    return report;
}

/** Worst TPOT p99 across the chat tenants (rows 1 and 2). */
double
chatTpotP99(const LoadgenReport &report)
{
    return std::max(report.tenants[1].tpot_p99_us,
                    report.tenants[2].tpot_p99_us);
}

/** TTFT attainment of tenant @p row from the server's SLO counters,
 * in [0, 1] (1.0 when nothing finished). */
double
ttftAttainment(const ServerStats &stats, size_t row)
{
    const TenantSloStats &slo = stats.tenant_slo[row];
    const int64_t counted = slo.ttft_ok + slo.ttft_miss;
    return counted > 0 ? static_cast<double>(slo.ttft_ok) /
                             static_cast<double>(counted)
                       : 1.0;
}

/** TPOT attainment of tenant @p row; 1.0 when nothing measurable. */
double
tpotAttainment(const ServerStats &stats, size_t row)
{
    const TenantSloStats &slo = stats.tenant_slo[row];
    const int64_t counted = slo.tpot_ok + slo.tpot_miss;
    return counted > 0 ? static_cast<double>(slo.tpot_ok) /
                             static_cast<double>(counted)
                       : 1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::handleArgs(
        argc, argv,
        "SLO attainment on a mixed long-context + chat workload: "
        "chunked prefill vs monolithic, per-tenant TTFT/TPOT "
        "percentiles and attainment",
        {{"--smoke", "reduced request counts for CI"},
         {"--seed=", "workload seed (default 42)"},
         {"--chunk=", "prefill chunk tokens (default 256)"},
         {bench::BenchReport::kJsonFlag,
          bench::BenchReport::kJsonFlagHelp}});
    const bool smoke = bench::smokeRequested(argc, argv);
    const auto seed = static_cast<uint64_t>(
        bench::flagValue(argc, argv, "--seed=", 42));
    const auto chunk = static_cast<int64_t>(
        bench::flagValue(argc, argv, "--chunk=", 256));

    const ServingEngine engine(servedEngine());
    const LoadgenConfig workload = mixedSloWorkload(seed, smoke);

    std::printf("=== SLO attainment, chunked prefill vs monolithic "
                "(LLaMA-3-8B, COMET W4A4KV4, seed %llu, chunk %lld"
                "%s) ===\n\n",
                static_cast<unsigned long long>(seed),
                static_cast<long long>(chunk),
                smoke ? ", smoke" : "");

    ServerStats mono_stats, chunked_stats, again_stats;
    const LoadgenReport mono =
        runSession(engine, workload, 0, &mono_stats);
    const LoadgenReport chunked =
        runSession(engine, workload, chunk, &chunked_stats);
    const LoadgenReport again =
        runSession(engine, workload, chunk, &again_stats);

    // 1. Chunking only reshapes virtual time: identical streams.
    check(mono.outcomes.size() == chunked.outcomes.size(),
          "chunked and monolithic saw the same workload");
    for (size_t i = 0; i < mono.outcomes.size(); ++i) {
        if (mono.outcomes[i].terminal !=
                chunked.outcomes[i].terminal ||
            mono.outcomes[i].tokens != chunked.outcomes[i].tokens) {
            check(false, "chunked and monolithic disagree on a "
                         "request's terminal or token count");
            break;
        }
    }
    check(mono.rejected == 0 && mono.cancelled == 0,
          "the workload is equality-safe (no clock-dependent "
          "verdicts)");
    // 2. Determinism of the chunked run itself.
    check(renderLoadgenReport(chunked) == renderLoadgenReport(again),
          "back-to-back chunked runs render identical reports");
    // 3. The win the subsystem exists for.
    const double mono_tail = chatTpotP99(mono);
    const double chunked_tail = chatTpotP99(chunked);
    check(chunked_tail < mono_tail,
          "chunking improves the chat tenants' TPOT p99");

    const double tail_win =
        chunked_tail > 0.0 ? mono_tail / chunked_tail : 0.0;

    std::printf("monolithic:\n%s\n",
                renderLoadgenReport(mono).c_str());
    std::printf("chunked (%lld tokens):\n%s\n",
                static_cast<long long>(chunk),
                renderLoadgenReport(chunked).c_str());
    std::printf("chat TPOT p99: %.1f us chunked vs %.1f us "
                "monolithic (%.2fx)\n",
                chunked_tail, mono_tail, tail_win);
    for (size_t t = 0; t < chunked_stats.tenant_slo.size(); ++t) {
        std::printf("%-8s ttft attainment %.1f%% (mono %.1f%%), "
                    "tpot attainment %.1f%% (mono %.1f%%)\n",
                    chunked_stats.tenant_slo[t].tenant.c_str(),
                    ttftAttainment(chunked_stats, t) * 100.0,
                    ttftAttainment(mono_stats, t) * 100.0,
                    tpotAttainment(chunked_stats, t) * 100.0,
                    tpotAttainment(mono_stats, t) * 100.0);
    }

    bench::BenchReport report("bench_slo_attainment");
    report.setConfig("seed", static_cast<int64_t>(seed));
    report.setConfig("smoke", smoke ? "true" : "false");
    report.setConfig("chunk_tokens", chunk);
    report.setConfig("requests", chunked.submitted);
    // All virtual-time deterministic: gate the tail win and the chat
    // tenants' attainment so a scheduling regression that quietly
    // starves decode behind prefill fails the perf leg.
    report.addMetric("chat_tpot_p99_win", tail_win, "x",
                     /*gate=*/true, /*higher_is_better=*/true);
    report.addMetric("chat_a_ttft_attainment",
                     ttftAttainment(chunked_stats, 1), "fraction",
                     true, true);
    report.addMetric("chat_b_ttft_attainment",
                     ttftAttainment(chunked_stats, 2), "fraction",
                     true, true);
    report.addMetric("chat_a_tpot_attainment",
                     tpotAttainment(chunked_stats, 1), "fraction",
                     true, true);
    report.addMetric("chat_b_tpot_attainment",
                     tpotAttainment(chunked_stats, 2), "fraction",
                     true, true);
    report.addMetric("chat_tpot_p99_us", chunked_tail, "us", false,
                     false);
    report.addMetric("longctx_ttft_attainment",
                     ttftAttainment(chunked_stats, 0), "fraction",
                     false, false);
    report.addMetric("makespan_us", chunked.makespan_us, "us", false,
                     false);
    report.writeIfRequested(argc, argv);

    if (failures > 0) {
        std::fprintf(stderr, "\n%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("\nAll equivalence, determinism and tail-win checks "
                "passed.\n");
    return 0;
}
