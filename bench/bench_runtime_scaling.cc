/**
 * @file
 * Scaling study of the comet::runtime thread pool on the W4Ax GEMM
 * emulation: wall-clock speedup of the pooled path at 1/2/4/8
 * executor slots over the sequential (threads = 1) baseline, plus a
 * bit-identity check that every run produced the same output.
 *
 * The acceptance target is > 2x at 4 threads on a machine with >= 4
 * physical cores. On narrower machines (CI shared runners, 1-2 core
 * containers) the table still prints, and the "cores" line makes the
 * hardware limit explicit: speedup is capped by the cores actually
 * available, not by the pool.
 */
#include <chrono>

#include "bench_flags.h"
#include <cstdio>
#include <string_view>
#include <thread>
#include <vector>

#include "comet/common/table.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/model/synthetic.h"
#include "comet/runtime/thread_pool.h"

using namespace comet;

namespace {

struct Workload {
    FmpqActivationQuantizer quantizer;
    MixedQuantizedActivation activation;
    BlockQuantizedWeight weight;
};

Workload
makeWorkload(int64_t tokens, int64_t out_features, int64_t channels)
{
    Rng rng(41);
    SyntheticActivationConfig act_config;
    act_config.channels = channels;
    act_config.outlier_fraction = 0.02;
    const SyntheticActivationModel model(act_config);
    FmpqConfig fmpq_config;
    fmpq_config.block_size = 64;
    auto quantizer = FmpqActivationQuantizer::calibrate(
        model.sample(64, rng), fmpq_config);
    auto activation = quantizer.quantize(model.sample(tokens, rng));
    auto weight =
        quantizer.quantizeWeight(sampleWeights(out_features, channels,
                                               rng));
    return {std::move(quantizer), std::move(activation),
            std::move(weight)};
}

struct TimedRun {
    double best_us;
    Tensor out;
};

TimedRun
timeGemmUs(const W4AxGemm &gemm,
           const MixedQuantizedActivation &activation, int repeats)
{
    // One warm-up run, then the timed repeats; report the best to
    // filter scheduler noise.
    TimedRun run{0.0, gemm.run(activation)};
    for (int i = 0; i < repeats; ++i) {
        const auto start = std::chrono::steady_clock::now();
        Tensor result = gemm.run(activation);
        const auto stop = std::chrono::steady_clock::now();
        const double us =
            std::chrono::duration<double, std::micro>(stop - start)
                .count();
        if (i == 0 || us < run.best_us) {
            run.best_us = us;
            run.out = std::move(result);
        }
    }
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(
        argc, argv,
        "Thread-pool scaling of the W4Ax GEMM emulation with a "
        "bit-identity check",
        {{"--smoke", "smaller GEMM shape for CI"}});
    const bool smoke = comet::bench::smokeRequested(argc, argv);
    const int64_t tokens = smoke ? 32 : 128;
    const int64_t out_features = smoke ? 256 : 1024;
    const int64_t channels = smoke ? 256 : 512;
    const int repeats = smoke ? 3 : 5;

    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("=== comet::runtime scaling: W4Ax GEMM emulation "
                "(m=%lld, n=%lld, k=%lld) ===\n",
                static_cast<long long>(tokens),
                static_cast<long long>(out_features),
                static_cast<long long>(channels));
    std::printf("hardware cores: %u (speedup is capped by physical "
                "cores, not pool slots)\n\n",
                cores);

    Workload w = makeWorkload(tokens, out_features, channels);
    W4AxGemmConfig config;
    config.tile_m = 16;
    config.tile_n = 16;
    config.tile_k = 64;

    // Sequential baseline: the exact pre-pool code path.
    config.threads = 1;
    const TimedRun baseline =
        timeGemmUs(W4AxGemm(w.weight, w.quantizer.blockPrecisions(),
                            config),
                   w.activation, repeats);
    const double baseline_us = baseline.best_us;

    Table table({"pool slots", "time (us)", "speedup",
                 "bit-identical"});
    table.addRow({"1 (sequential)", formatDouble(baseline_us, 1),
                  "1.00x", "yes"});

    bool all_identical = true;
    double speedup_at_4 = 0.0;
    for (const int slots : {1, 2, 4, 8}) {
        ThreadPool::setGlobalThreads(slots);
        config.threads = 0; // every pool slot
        const TimedRun run =
            timeGemmUs(W4AxGemm(w.weight,
                                w.quantizer.blockPrecisions(),
                                config),
                       w.activation, repeats);
        const double us = run.best_us;
        const bool identical =
            maxAbsError(baseline.out, run.out) == 0.0;
        all_identical = all_identical && identical;
        const double speedup = baseline_us / us;
        if (slots == 4)
            speedup_at_4 = speedup;
        char label[32];
        std::snprintf(label, sizeof(label), "%d (pooled)", slots);
        table.addRow({label, formatDouble(us, 1),
                      formatDouble(speedup, 2) + "x",
                      identical ? "yes" : "NO"});
    }
    table.print();

    std::printf("\n  bit-identity across all pool sizes: %s\n",
                all_identical ? "PASS" : "FAIL");
    std::printf("  speedup at 4 slots: %.2fx (target > 2x on >= 4 "
                "cores; %u core(s) available here)\n",
                speedup_at_4, cores);
    return all_identical ? 0 : 1;
}
