/**
 * @file
 * Extension benches beyond the paper's figures (DESIGN.md Section 5):
 *
 *  1. Decode-attention KV-precision sweep — quantifies the Figure 2
 *     claim on the real operator: the act-act kernel is bandwidth-
 *     bound, so its modeled time scales with stored KV bits while the
 *     *numerical* error of the quantized-cache path stays small
 *     (measured on the bit-faithful emulation).
 *  2. A100 vs H100 outlook — Hopper drops the INT4 tensor cores
 *     (Section 4.3's FP4 discussion targets it), so COMET's W4Ax
 *     kernel advantage over W4A8 shrinks to its memory savings there,
 *     while the KV4 serving gains persist.
 */
#include <cmath>

#include "bench_flags.h"
#include <cstdio>

#include "comet/attention/decode_attention.h"
#include "comet/common/rng.h"
#include "comet/common/table.h"
#include "comet/gpusim/kernel_sim.h"
#include "comet/model/layer_shapes.h"

using namespace comet;

namespace {

void
attentionSweep()
{
    std::printf("--- decode attention: KV precision sweep "
                "(LLaMA-3-8B geometry, batch 1) ---\n");
    AttentionConfig config;
    config.num_heads = 32;
    config.num_kv_heads = 8;
    config.head_dim = 128;

    const GpuSpec spec = GpuSpec::a100Sxm480G();
    Rng rng(3);

    Table table({"context", "KV bits", "KV bytes (MB)",
                 "modeled time (us)", "max |err| vs FP cache"});
    for (int64_t context : {512, 2048, 8192}) {
        // Bit-faithful numerical error on a downscaled cache (the
        // error is per-value and context-independent).
        const int64_t probe_tokens = 128;
        Tensor k(probe_tokens, config.kvDim());
        Tensor v(probe_tokens, config.kvDim());
        for (int64_t i = 0; i < k.numel(); ++i) {
            k[i] = static_cast<float>(rng.gaussian(0, 1));
            v[i] = static_cast<float>(rng.gaussian(0, 1));
        }
        std::vector<float> q(static_cast<size_t>(config.qDim()));
        for (auto &x : q)
            x = static_cast<float>(rng.gaussian(0, 1));
        const auto exact =
            decodeAttentionReference(config, q, k, v);

        for (int bits : {16, 8, 4}) {
            const double bytes = decodeAttentionKvBytes(
                config, context, static_cast<double>(bits));
            const double time_us =
                bytes / (spec.hbm_bandwidth * 0.85) * 1e6;
            double max_err = 0.0;
            if (bits < 16) {
                const KvCacheQuantizer quantizer(
                    KvQuantConfig{bits, 64, true});
                const auto approx = decodeAttentionQuantized(
                    config, q, quantizer.quantize(k),
                    quantizer.quantize(v), quantizer);
                for (size_t i = 0; i < exact.size(); ++i) {
                    max_err = std::max(
                        max_err,
                        std::fabs(static_cast<double>(exact[i]) -
                                  approx[i]));
                }
            }
            table.addRow({std::to_string(context),
                          std::to_string(bits),
                          formatDouble(bytes / 1e6, 2),
                          formatDouble(time_us, 2),
                          bits == 16 ? std::string("-")
                                     : formatDouble(max_err, 4)});
        }
        table.addSeparator();
    }
    table.print();
    std::printf("\nReading: time scales with stored bits (memory "
                "bound); KV4 numerical error stays ~1e-2 on unit-"
                "scale values — the Section 3.2 rationale.\n\n");
}

void
gpuOutlook()
{
    std::printf("--- A100 vs H100 outlook: COMET kernel speedup "
                "over its own W4A8 configuration ---\n");
    CometKernelFeatures all_int8;
    all_int8.w4a4_fraction = 0.0;

    Table table({"GPU", "GEMM", "W4A8 (us)", "COMET-W4Ax (us)",
                 "speedup"});
    for (const GpuSpec &spec :
         {GpuSpec::a100Sxm480G(), GpuSpec::h100Sxm80G()}) {
        const KernelSimulator sim(spec);
        for (const LayerGemm &gemm : figure9Shapes(128)) {
            if (gemm.name != "8Kx8K" && gemm.name != "13.5Kx5K")
                continue;
            const double w4a8 = sim.latencyUs(
                gemm.shape, GemmKernelKind::kCometW4Ax, all_int8);
            const double comet = sim.latencyUs(
                gemm.shape, GemmKernelKind::kCometW4Ax);
            table.addRow({spec.name, gemm.name,
                          formatDouble(w4a8, 1),
                          formatDouble(comet, 1),
                          formatSpeedup(w4a8 / comet)});
        }
        table.addSeparator();
    }
    table.print();
    std::printf("\nReading: on A100 the INT4 tensor cores buy "
                "~1.4-1.5x over W4A8; on H100 (no INT4 tensor "
                "cores, 4-bit runs at the INT8 rate after the FP4/"
                "INT4 conversion of Section 4.3) the advantage "
                "reduces to the activation-traffic savings.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Extension: decode-attention KV-precision sweep (latency vs numerical error)");
    std::printf("=== Extension ablations: attention KV precision & "
                "next-gen GPU outlook ===\n\n");
    attentionSweep();
    gpuOutlook();
    return 0;
}
