/**
 * @file
 * Chaos soak driver: the fault-injected, property-checked stress run
 * for the serving stack (DESIGN.md §11).
 *
 * Per seed it (1) generates a multi-tenant workload script, (2) arms
 * the standard fault schedule (allocator OOM, pool delays, ingress
 * cancels, forced preemptions, admission expiries), (3) replays the
 * script at COMET_THREADS=1 and 8 and requires every invariant to
 * hold with byte-identical event logs, and (4) runs the KV-cache and
 * scheduler model fuzzers under the same seed. A failing seed is
 * shrunk to a minimal step script and printed with a one-line repro
 * command.
 *
 * `--cluster` routes every script through a 4-replica ClusterRouter
 * instead (policy rotating per seed), with the routing-thread
 * failpoints armed — forced reroutes (`cluster.route`) and injected
 * mid-workload drains (`cluster.drain`) — and requires the same
 * bit-identical replay plus the cluster audits (token conservation
 * across drains, routing accounting, per-replica KV quiescence).
 *
 * It also measures the disabled-failpoint fast path the way
 * bench_obs_overhead measures disabled spans, and enforces the
 * <= 1 ns/hit budget in optimized non-sanitizer builds.
 */
#include <cinttypes>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "comet/chaos/failpoint.h"
#include "comet/chaos/harness.h"
#include "comet/chaos/script.h"
#include "comet/cluster/placement.h"
#include "comet/common/table.h"
#include "comet/runtime/thread_pool.h"

namespace {

using namespace comet;
using namespace comet::chaos;

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define COMET_BENCH_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define COMET_BENCH_SANITIZED 1
#endif

/** ns/hit of a disabled failpoint: one relaxed atomic load. */
double
measureDisabledFailpointNs()
{
    FailPointRegistry::global().disarmAll();
    constexpr int64_t kIters = 20'000'000;
    const auto start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < kIters; ++i) {
        if (COMET_FAILPOINT("soak.probe"))
            std::abort(); // never armed; keeps the branch live
        asm volatile("" ::: "memory");
    }
    const auto stop = std::chrono::steady_clock::now();
    const double total_ns =
        std::chrono::duration<double, std::nano>(stop - start)
            .count();
    return total_ns / static_cast<double>(kIters);
}

/** Replicas the cluster soak routes across. */
constexpr int kClusterReplicas = 4;

/** Cluster-soak policy for a seed: rotating through the three
 * routing policies spreads coverage without a separate flag. */
cluster::RoutingPolicy
clusterPolicyForSeed(uint64_t seed)
{
    switch (seed % 3) {
    case 0:
        return cluster::RoutingPolicy::kLeastLoaded;
    case 1:
        return cluster::RoutingPolicy::kConsistentHash;
    default:
        return cluster::RoutingPolicy::kWeightedRoundRobin;
    }
}

/** The cluster soak's fault schedule: the routing-thread failpoints
 * (forced reroutes, injected drains) plus pool delays — the
 * cluster-safe subset runClusterChaosScript keeps armed. */
ChaosFaultConfig
clusterFaults(uint64_t seed)
{
    ChaosFaultConfig faults;
    faults.seed = seed;
    faults.route_every = 7;
    faults.drain_every = 41;
    return faults;
}

/** One seed's faulted cluster double run (threads 1 vs 8): the
 * script routed through a 4-replica cluster with cluster.route and
 * cluster.drain armed. Empty string when every invariant held and
 * the event logs matched byte for byte. */
/** Mixed tensor-parallel degrees the `--tp --cluster` soak spreads
 * across the 4 replicas (replica r gets entry r % size). */
const std::vector<int> kHeterogeneousTp = {1, 2, 4, 2};

std::string
runClusterSoakSeed(uint64_t seed, int steps, bool prefix, bool tp)
{
    ChaosScriptConfig config;
    config.seed = seed;
    config.steps = steps;
    config.prefix = prefix;
    const std::vector<ChaosStep> script =
        generateChaosScript(config);
    const ChaosFaultConfig faults = clusterFaults(seed);
    const cluster::RoutingPolicy policy = clusterPolicyForSeed(seed);
    const std::vector<int> tp_degrees =
        tp ? kHeterogeneousTp : std::vector<int>{};

    ThreadPool::setGlobalThreads(1);
    const ClusterChaosRunResult serial =
        runClusterChaosScript(script, config, &faults,
                              kClusterReplicas, policy, tp_degrees);
    ThreadPool::setGlobalThreads(8);
    const ClusterChaosRunResult pooled =
        runClusterChaosScript(script, config, &faults,
                              kClusterReplicas, policy, tp_degrees);
    ThreadPool::setGlobalThreads(0);

    if (!serial.ok)
        return "threads=1: " + serial.failure;
    if (!pooled.ok)
        return "threads=8: " + pooled.failure;
    if (serial.event_log != pooled.event_log)
        return "event logs diverge between threads=1 and threads=8";
    return "";
}

/** One seed's faulted double run (threads 1 vs 8). Empty string when
 * every invariant held and the logs matched. With `tp` the script
 * replays on a TP=2 engine with the tp.allreduce failpoint armed:
 * sharding and degraded links shift the virtual clock (scripts carry
 * time-triggered cancels, so streams legitimately differ from TP=1),
 * but the replay must stay byte-identical across thread counts. */
std::string
runSoakSeed(uint64_t seed, int steps, bool prefix, bool tp)
{
    ChaosScriptConfig config;
    config.seed = seed;
    config.steps = steps;
    config.prefix = prefix;
    config.tp_degree = tp ? 2 : 1;
    const std::vector<ChaosStep> script =
        generateChaosScript(config);
    ChaosFaultConfig faults;
    faults.seed = seed;
    if (prefix)
        faults.graft_every = 23; // forced misses ride the soak too
    if (tp)
        faults.allreduce_every = 13;

    ThreadPool::setGlobalThreads(1);
    const ChaosRunResult serial =
        runChaosScript(script, config, &faults);
    ThreadPool::setGlobalThreads(8);
    const ChaosRunResult pooled =
        runChaosScript(script, config, &faults);
    ThreadPool::setGlobalThreads(0);

    if (!serial.ok)
        return "threads=1: " + serial.failure;
    if (!pooled.ok)
        return "threads=8: " + pooled.failure;
    if (serial.event_log != pooled.event_log)
        return "event logs diverge between threads=1 and threads=8";
    return "";
}

/** Shrinks a failing seed's script and prints the minimal repro. */
void
reportFailure(uint64_t seed, int steps, bool prefix, bool clustered,
              bool tp, const std::string &failure)
{
    std::fprintf(stderr,
                 "FAILING SEED %" PRIu64 " (steps=%d%s%s%s): %s\n",
                 seed, steps, prefix ? ", prefix" : "",
                 clustered ? ", cluster" : "", tp ? ", tp" : "",
                 failure.c_str());
    ChaosScriptConfig config;
    config.seed = seed;
    config.steps = steps;
    config.prefix = prefix;
    if (tp && !clustered)
        config.tp_degree = 2;
    const std::vector<ChaosStep> script =
        generateChaosScript(config);
    ChaosFaultConfig faults;
    faults.seed = seed;
    if (clustered)
        faults = clusterFaults(seed);
    else if (prefix)
        faults.graft_every = 23;
    if (tp && !clustered)
        faults.allreduce_every = 13;
    const std::vector<int> tp_degrees =
        (tp && clustered) ? kHeterogeneousTp : std::vector<int>{};
    const auto fails = [&](const std::vector<ChaosStep> &candidate) {
        if (clustered)
            return !runClusterChaosScript(candidate, config, &faults,
                                          kClusterReplicas,
                                          clusterPolicyForSeed(seed),
                                          tp_degrees)
                        .ok;
        return !runChaosScript(candidate, config, &faults).ok;
    };
    // Shrink against the single-threaded replay: cheap, and any
    // surviving violation reproduces by construction.
    ThreadPool::setGlobalThreads(1);
    const std::vector<ChaosStep> shrunk =
        shrinkChaosScript(script, fails, /*max_runs=*/48);
    ThreadPool::setGlobalThreads(0);
    ChaosRunResult minimal;
    if (clustered) {
        const ClusterChaosRunResult cluster_minimal =
            runClusterChaosScript(shrunk, config, &faults,
                                  kClusterReplicas,
                                  clusterPolicyForSeed(seed),
                                  tp_degrees);
        minimal.ok = cluster_minimal.ok;
        minimal.failure = cluster_minimal.failure;
    } else {
        minimal = runChaosScript(shrunk, config, &faults);
    }
    if (!minimal.ok) {
        std::fprintf(stderr,
                     "minimal script (%zu of %zu steps), fails "
                     "with: %s\n%s",
                     shrunk.size(), script.size(),
                     minimal.failure.c_str(),
                     renderChaosScript(shrunk).c_str());
    } else {
        // The shrink budget ran out before isolating a subsequence
        // that still fails single-threaded (e.g. a threads=8-only
        // divergence); the full script is the repro.
        std::fprintf(stderr,
                     "script did not shrink single-threaded; full "
                     "%zu-step script is the repro\n",
                     script.size());
    }
    std::fprintf(stderr,
                 "repro: ./bench_chaos_soak --seed=%" PRIu64
                 " --seeds=1 --steps=%d%s%s%s\n",
                 seed, steps, prefix ? " --prefix" : "",
                 clustered ? " --cluster" : "", tp ? " --tp" : "");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::handleArgs(
        argc, argv,
        "seeded fault-injection soak of the serving stack: invariant "
        "audits plus bit-identical replay across thread counts",
        {{"--smoke", "reduced shapes for CI (2 seeds x 500 steps)"},
         {"--prefix", "prefix-cache mode: shared-prompt scripts, the "
                      "cache on, and the graft failpoint armed"},
         {"--cluster", "cluster mode: route every script through a "
                       "4-replica ClusterRouter with cluster.route "
                       "and cluster.drain armed"},
         {"--tp", "tensor-parallel mode: TP=2 engine with "
                  "tp.allreduce armed (log must match tp=1); with "
                  "--cluster, heterogeneous replica degrees 1/2/4/2"},
         {"--seed=", "first seed (default 1)"},
         {"--seeds=", "number of consecutive seeds (default 1)"},
         {"--steps=", "script steps per seed (default 10000)"}});
    const bool smoke = bench::smokeRequested(argc, argv);
    bool prefix = false;
    bool clustered = false;
    bool tp = false;
    for (int i = 1; i < argc; ++i) {
        prefix = prefix || std::strcmp(argv[i], "--prefix") == 0;
        clustered =
            clustered || std::strcmp(argv[i], "--cluster") == 0;
        tp = tp || std::strcmp(argv[i], "--tp") == 0;
    }
    const uint64_t first_seed = static_cast<uint64_t>(
        bench::flagValue(argc, argv, "--seed=", 1));
    const int64_t seeds =
        bench::flagValue(argc, argv, "--seeds=", smoke ? 2 : 1);
    const int steps = static_cast<int>(bench::flagValue(
        argc, argv, "--steps=", smoke ? 500 : 10000));

    const double disabled_ns = measureDisabledFailpointNs();
    std::printf("disabled failpoint: %.3f ns/hit (budget 1.0)\n",
                disabled_ns);
#if defined(NDEBUG) && !defined(COMET_BENCH_SANITIZED)
    if (disabled_ns > 1.0) {
        std::fprintf(stderr,
                     "FAIL: disabled failpoint costs %.3f ns/hit "
                     "(> 1 ns budget)\n",
                     disabled_ns);
        return 1;
    }
#endif

    Table table(
        clustered
            ? std::vector<std::string>{"seed", "steps", "policy",
                                       "completed", "routed",
                                       "rerouted", "drains",
                                       "tokens", "replay"}
            : std::vector<std::string>{"seed", "steps", "completed",
                                       "rejected", "cancelled",
                                       "tokens", "grafted",
                                       "replay"});
    bool all_ok = true;
    for (int64_t i = 0; i < seeds; ++i) {
        const uint64_t seed = first_seed + static_cast<uint64_t>(i);
        if (clustered) {
            const std::string failure =
                runClusterSoakSeed(seed, steps, prefix, tp);
            if (!failure.empty()) {
                all_ok = false;
                reportFailure(seed, steps, prefix, true, tp,
                              failure);
                continue;
            }
            // Re-run once at the ambient thread count for the row.
            ChaosScriptConfig config;
            config.seed = seed;
            config.steps = steps;
            config.prefix = prefix;
            const ChaosFaultConfig faults = clusterFaults(seed);
            const cluster::RoutingPolicy policy =
                clusterPolicyForSeed(seed);
            const ClusterChaosRunResult result =
                runClusterChaosScript(
                    generateChaosScript(config), config, &faults,
                    kClusterReplicas, policy,
                    tp ? kHeterogeneousTp : std::vector<int>{});
            if (!result.ok) {
                all_ok = false;
                reportFailure(seed, steps, prefix, true, tp,
                              "ambient threads: " + result.failure);
                continue;
            }
            table.addRow(
                {std::to_string(seed), std::to_string(steps),
                 cluster::routingPolicyName(policy),
                 std::to_string(result.replica_completed),
                 std::to_string(result.cluster_stats.routed),
                 std::to_string(result.cluster_stats.rerouted),
                 std::to_string(result.cluster_stats.drains),
                 std::to_string(result.replica_streamed_tokens),
                 "bit-identical"});
            continue;
        }
        const std::string failure =
            runSoakSeed(seed, steps, prefix, tp);
        if (!failure.empty()) {
            all_ok = false;
            reportFailure(seed, steps, prefix, false, tp, failure);
            continue;
        }
        // The fuzzers ride the same seed for cheap extra coverage.
        const Status kv_fuzz =
            runKvModelFuzz(seed, smoke ? 300 : 2000, true);
        const Status sched_fuzz =
            runSchedulerFuzz(seed, smoke ? 300 : 2000, true);
        const Status prefix_fuzz =
            runPrefixFuzz(seed, smoke ? 300 : 2000, true);
        if (!kv_fuzz.isOk() || !sched_fuzz.isOk() ||
            !prefix_fuzz.isOk()) {
            all_ok = false;
            const Status &bad = !kv_fuzz.isOk()      ? kv_fuzz
                                : !sched_fuzz.isOk() ? sched_fuzz
                                                     : prefix_fuzz;
            std::fprintf(stderr,
                         "FAILING SEED %" PRIu64 " (model fuzz): "
                         "%s\nrepro: ./bench_chaos_soak "
                         "--seed=%" PRIu64 " --seeds=1 --steps=%d\n",
                         seed, bad.toString().c_str(), seed, steps);
            continue;
        }
        // Re-run once at the ambient thread count for the stats row.
        ChaosScriptConfig config;
        config.seed = seed;
        config.steps = steps;
        config.prefix = prefix;
        config.tp_degree = tp ? 2 : 1;
        ChaosFaultConfig faults;
        faults.seed = seed;
        if (prefix)
            faults.graft_every = 23;
        if (tp)
            faults.allreduce_every = 13;
        const ChaosRunResult result = runChaosScript(
            generateChaosScript(config), config, &faults);
        if (!result.ok) {
            all_ok = false;
            reportFailure(seed, steps, prefix, false, tp,
                          "ambient threads: " + result.failure);
            continue;
        }
        table.addRow({std::to_string(seed), std::to_string(steps),
                      std::to_string(result.stats.completed),
                      std::to_string(result.stats.rejected),
                      std::to_string(result.stats.cancelled),
                      std::to_string(result.stats.streamed_tokens),
                      std::to_string(
                          result.stats.prefix_matched_tokens),
                      "bit-identical"});
    }
    table.print();
    if (!all_ok) {
        std::fprintf(stderr, "chaos soak FAILED\n");
        return 1;
    }
    std::printf("chaos soak OK: %lld seed(s) x %d steps\n",
                static_cast<long long>(seeds), steps);
    return 0;
}
