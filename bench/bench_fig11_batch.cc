/**
 * @file
 * Reproduces Figure 11: throughput vs batch size for LLaMA-3-8B at
 * input/output 1024/512, comparing COMET against the TRT-LLM
 * configurations at the *same pinned batch*, plus each system's
 * maximum achievable batch.
 */
#include <algorithm>

#include "bench_flags.h"
#include <cstdio>
#include <vector>

#include "comet/common/table.h"
#include "comet/serve/engine.h"

using namespace comet;

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Figure 11: throughput vs batch size for LLaMA-3-8B (1024/512)");
    std::printf("=== Figure 11: throughput vs batch size, "
                "LLaMA-3-8B, 1024/512 ===\n\n");

    const ServingMode modes[] = {
        ServingMode::kTrtFp16, ServingMode::kTrtW4A16,
        ServingMode::kTrtW8A8, ServingMode::kCometW4AxKv4};

    std::vector<ServingEngine> engines;
    for (ServingMode mode : modes) {
        EngineConfig config;
        config.model = LlmConfig::llama3_8b();
        config.mode = mode;
        config.input_tokens = 1024;
        config.output_tokens = 512;
        engines.emplace_back(config);
    }

    Table table({"batch", "TRT-LLM-FP16", "TRT-LLM-W4A16",
                 "TRT-LLM-W8A8", "COMET", "COMET vs best TRT"});
    double fp16_at_4 = 0.0, fp16_at_64 = 0.0;
    double comet_over_best_sum = 0.0;
    int rows = 0;
    for (int64_t batch : {4, 8, 16, 32, 64, 128, 256}) {
        std::vector<double> tps;
        for (const ServingEngine &engine : engines) {
            const int64_t feasible =
                std::min<int64_t>(batch, engine.maxBatchSize());
            tps.push_back(feasible == batch
                              ? engine.measureThroughputAtBatch(batch)
                                    .tokens_per_second
                              : 0.0);
        }
        if (batch == 4)
            fp16_at_4 = tps[0];
        if (batch == 64)
            fp16_at_64 = tps[0];
        const double best_trt = std::max({tps[0], tps[1], tps[2]});
        std::vector<std::string> row{std::to_string(batch)};
        for (double t : tps) {
            row.push_back(t > 0.0 ? formatDouble(t, 0)
                                  : std::string("OOM"));
        }
        row.push_back(best_trt > 0.0
                          ? formatSpeedup(tps[3] / best_trt)
                          : std::string("-"));
        if (best_trt > 0.0) {
            comet_over_best_sum += tps[3] / best_trt;
            ++rows;
        }
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\nMax achievable batch per system: ");
    const char *names[] = {"FP16", "W4A16", "W8A8", "COMET"};
    for (size_t i = 0; i < engines.size(); ++i) {
        std::printf("%s=%lld  ", names[i],
                    static_cast<long long>(
                        engines[i].maxBatchSize()));
    }
    std::printf("\n\nPaper-shape checks: TRT-FP16 batch 64 is ~7.5x "
                "its batch 4 (measured %.2fx); COMET beats the best "
                "TRT config at every same batch (avg %s; paper "
                "1.37x).\n",
                fp16_at_4 > 0 ? fp16_at_64 / fp16_at_4 : 0.0,
                formatSpeedup(comet_over_best_sum / rows).c_str());
    return 0;
}
