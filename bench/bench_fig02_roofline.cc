/**
 * @file
 * Reproduces Figure 2: roofline analysis of the activation-activation
 * and weight-activation operators on the A100 at FP16/INT8/INT4.
 *
 * Output: one row per (operator, precision, batch) point with its
 * arithmetic intensity, attainable throughput, and boundedness — the
 * data behind the paper's motivation that act-act operators are always
 * memory-bound (so KV4 pays off directly) while weight-act GEMMs turn
 * compute-bound with batch (so INT4 tensor cores pay off directly).
 */
#include <cstdio>

#include "bench_flags.h"

#include "comet/common/table.h"
#include "comet/gpusim/roofline.h"

using namespace comet;

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Figure 2: roofline analysis of act-act vs weight-act operators at FP16/INT8/INT4");
    const GpuSpec spec = GpuSpec::a100Sxm480G();
    std::printf("=== Figure 2: roofline analysis (%s) ===\n",
                spec.name.c_str());
    std::printf("HBM %.1f TB/s | FP16 %.0f / INT8 %.0f / INT4 %.0f "
                "TOPS | ridge FP16=%.0f INT8=%.0f INT4=%.0f ops/B\n\n",
                spec.hbm_bandwidth / 1e12, spec.fp16_tensor_ops / 1e12,
                spec.int8_tensor_ops / 1e12,
                spec.int4_tensor_ops / 1e12, ridgeIntensity(spec, 16),
                ridgeIntensity(spec, 8), ridgeIntensity(spec, 4));

    Table act_table({"operator", "KV precision", "intensity (ops/B)",
                     "attainable (TOPS)", "bound"});
    for (int bits : {16, 8, 4}) {
        const OperatorPoint point = analyzeActActOperator(spec, bits);
        act_table.addRow({point.name,
                          "INT" + std::to_string(bits),
                          formatDouble(point.intensity, 1),
                          formatDouble(point.attainable_ops / 1e12, 1),
                          point.memory_bound ? "memory" : "compute"});
    }
    act_table.print();
    std::printf("\n");

    Table gemm_table({"operator", "precision", "batch",
                      "intensity (ops/B)", "attainable (TOPS)",
                      "bound"});
    struct Config {
        const char *label;
        int act_bits;
        int weight_bits;
    };
    const Config configs[] = {
        {"W16A16", 16, 16}, {"W8A8", 8, 8}, {"W4A4", 4, 4}};
    for (const Config &config : configs) {
        for (int64_t batch : {1, 4, 16, 64, 256, 1024}) {
            const OperatorPoint point = analyzeWeightActOperator(
                spec, config.act_bits, config.weight_bits, batch);
            gemm_table.addRow(
                {"weight-act GEMM", config.label,
                 std::to_string(batch),
                 formatDouble(point.intensity, 1),
                 formatDouble(point.attainable_ops / 1e12, 1),
                 point.memory_bound ? "memory" : "compute"});
        }
        gemm_table.addSeparator();
    }
    gemm_table.print();

    std::printf("\nPaper-shape checks:\n");
    std::printf("  act-act FP16 intensity = %.1f (paper: fixed at "
                "1.0)\n",
                analyzeActActOperator(spec, 16).intensity);
    std::printf("  act-act is memory-bound at every precision; KV4 "
                "attains %.1fx FP16 KV throughput\n",
                analyzeActActOperator(spec, 4).attainable_ops /
                    analyzeActActOperator(spec, 16).attainable_ops);
    return 0;
}
