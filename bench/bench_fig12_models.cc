/**
 * @file
 * Reproduces Figure 12: normalized end-to-end throughput across the
 * model zoo at the small fixed batch size 4 (1024/512), where
 * inference is memory-bound and the gains come from weight/KV
 * compression rather than batch parallelism.
 */
#include <cstdio>

#include "bench_flags.h"
#include <vector>

#include "comet/common/table.h"
#include "comet/serve/engine.h"

using namespace comet;

int
main(int argc, char **argv)
{
    comet::bench::handleArgs(argc, argv,
                             "Figure 12: normalized throughput across the model zoo at fixed batch 4");
    std::printf("=== Figure 12: throughput at batch 4 across models "
                "(normalized to TRT-LLM-FP16) ===\n\n");

    const ServingMode modes[] = {
        ServingMode::kTrtFp16, ServingMode::kTrtW8A8,
        ServingMode::kTrtW4A16, ServingMode::kCometW4AxKv4};

    Table table({"model", "TRT-LLM-FP16", "TRT-LLM-W8A8",
                 "TRT-LLM-W4A16", "COMET"});

    const std::vector<std::string> model_names{
        "Mistral-7B", "LLaMA-2-7B", "LLaMA-3-8B", "LLaMA-2-13B",
        "OPT-13B", "LLaMA-1-30B"};

    double sums[4] = {0, 0, 0, 0};
    int counted = 0;
    for (const std::string &name : model_names) {
        EngineConfig config;
        config.model = LlmConfig::byName(name);
        config.input_tokens = 1024;
        config.output_tokens = 512;

        double tps[4];
        for (size_t mi = 0; mi < 4; ++mi) {
            config.mode = modes[mi];
            tps[mi] = ServingEngine(config)
                          .measureThroughputAtBatch(4)
                          .tokens_per_second;
        }
        std::vector<std::string> row{name};
        for (size_t mi = 0; mi < 4; ++mi) {
            row.push_back(tps[0] > 0.0
                              ? formatDouble(tps[mi] / tps[0], 2)
                              : std::string("OOM"));
            sums[mi] += tps[mi];
        }
        ++counted;
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\nAverages over models:\n");
    std::printf("  COMET vs TRT-LLM-FP16:  %s (paper: 2.20x)\n",
                formatSpeedup(sums[3] / sums[0]).c_str());
    std::printf("  COMET vs TRT-LLM-W8A8:  %s (paper: 1.43x)\n",
                formatSpeedup(sums[3] / sums[1]).c_str());
    std::printf("  COMET vs TRT-LLM-W4A16: %s (paper: 1.18x)\n",
                formatSpeedup(sums[3] / sums[2]).c_str());
    std::printf("  W4A16 vs W8A8:          %s (paper: 1.16x)\n",
                formatSpeedup(sums[2] / sums[1]).c_str());
    return 0;
}
