/**
 * @file
 * Proves the observability fast path is free enough to leave compiled
 * into hot code permanently. Three measurements:
 *
 *  1. Per-span disabled cost: a tight loop over COMET_SPAN with no
 *     session armed (one relaxed atomic load each), in ns/span.
 *  2. A fig10-smoke-like serving workload (trace replay through the
 *     full engine stack) timed with spans disabled vs enabled.
 *  3. The disabled-path overhead bound for that workload: spans
 *     crossed x per-span disabled cost, as a fraction of run time —
 *     the acceptance target is <= 1%.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_flags.h"
#include "comet/obs/trace_session.h"
#include "comet/serve/trace.h"

using namespace comet;

namespace {

double
nowMs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     epoch)
        .count();
}

/** The fig10-smoke-like workload: a bursty trace replayed through the
 * full engine stack (scheduler, KV cache, latency model). */
TraceMetrics
runWorkload(const ServingEngine &engine,
            const std::vector<TracedRequest> &trace)
{
    return replayTrace(engine, trace);
}

double
median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    bench::handleArgs(
        argc, argv,
        "Observability overhead micro: disabled-span cost and its "
        "bound on a fig10-smoke-like replay");

    // --- 1. per-span disabled cost -------------------------------
    obs::TraceSession::global().stop();
    obs::TraceSession::global().drain();
    constexpr int64_t kProbeIters = 20'000'000;
    const double probe_begin_ms = nowMs();
    for (int64_t i = 0; i < kProbeIters; ++i) {
        COMET_SPAN("overhead_probe");
        // Keep the compiler from folding iterations together.
        asm volatile("" ::: "memory");
    }
    const double probe_ms = nowMs() - probe_begin_ms;
    const double ns_per_span = probe_ms * 1e6 /
                               static_cast<double>(kProbeIters);
    std::printf("=== Observability overhead ===\n\n");
    std::printf("disabled COMET_SPAN fast path: %.2f ns/span "
                "(%lld iterations)\n\n",
                ns_per_span, static_cast<long long>(kProbeIters));

    // --- 2. fig10-smoke-like workload, disabled vs enabled -------
    EngineConfig config;
    config.model = LlmConfig::llama3_8b();
    config.mode = ServingMode::kCometW4AxKv4;
    config.input_tokens = 128;
    config.output_tokens = 64;
    const ServingEngine engine(config);
    TraceConfig trace_config;
    trace_config.num_requests = 64;
    trace_config.request_rate_per_s = 200.0;
    trace_config.mean_prompt_tokens = 128;
    trace_config.mean_output_tokens = 64;
    const auto trace = generateTrace(trace_config);

    constexpr int kRepeats = 5;
    std::vector<double> disabled_ms, enabled_ms;
    int64_t spans_per_run = 0;
    runWorkload(engine, trace); // warm-up (page-in, allocator)
    for (int r = 0; r < kRepeats; ++r) {
        double begin = nowMs();
        runWorkload(engine, trace);
        disabled_ms.push_back(nowMs() - begin);

        obs::TraceSession::global().start();
        begin = nowMs();
        runWorkload(engine, trace);
        enabled_ms.push_back(nowMs() - begin);
        obs::TraceSession::global().stop();
        spans_per_run = static_cast<int64_t>(
            obs::TraceSession::global().drain().size());
    }
    const double disabled_median = median(disabled_ms);
    const double enabled_median = median(enabled_ms);
    std::printf("trace replay (64 requests, 128/64 tokens), median "
                "of %d:\n",
                kRepeats);
    std::printf("  spans disabled: %8.2f ms\n", disabled_median);
    std::printf("  spans enabled : %8.2f ms  (%+.1f%%, %lld spans "
                "recorded per run)\n\n",
                enabled_median,
                (enabled_median / disabled_median - 1.0) * 100.0,
                static_cast<long long>(spans_per_run));

    // --- 3. the disabled-path bound ------------------------------
    // Every span site crossed by the workload costs ns_per_span when
    // no session is armed; relative to the run itself that bound must
    // stay under 1% for instrumentation to live in hot paths.
    const double disabled_overhead_pct =
        static_cast<double>(spans_per_run) * ns_per_span /
        (disabled_median * 1e6) * 100.0;
    std::printf("disabled-path overhead bound: %lld span sites x "
                "%.2f ns = %.4f%% of the run (target <= 1%%) -> %s\n",
                static_cast<long long>(spans_per_run), ns_per_span,
                disabled_overhead_pct,
                disabled_overhead_pct <= 1.0 ? "PASS" : "FAIL");
    return disabled_overhead_pct <= 1.0 ? 0 : 1;
}
