/**
 * @file
 * Example: the offline-PTQ -> deploy workflow.
 *
 * The paper ships COMET as a standalone library whose quantized
 * artifacts are produced once and loaded by the serving process. This
 * example walks that path: calibrate FMPQ, quantize a layer, save the
 * quantizer state and packed weights to disk, reload them in a
 * "fresh process", and verify the reloaded operator is bit-identical.
 *
 * Build & run:  ./build/examples/offline_deploy
 */
#include <cstdio>

#include "comet/common/rng.h"
#include "comet/io/serialize.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/model/synthetic.h"

using namespace comet;

int
main()
{
    const std::string weight_path = "/tmp/comet_layer0.w4ax";
    const std::string quantizer_path = "/tmp/comet_layer0.fmpq";

    // ---- Offline: calibrate and quantize ----
    SyntheticActivationConfig act_config;
    act_config.channels = 256;
    act_config.outlier_fraction = 0.02;
    const SyntheticActivationModel activations(act_config);
    Rng rng(5);
    FmpqConfig fmpq_config;
    fmpq_config.block_size = 64;
    const auto quantizer = FmpqActivationQuantizer::calibrate(
        activations.sample(128, rng), fmpq_config);
    const Tensor w = sampleWeights(64, 256, rng);
    const BlockQuantizedWeight qw = quantizer.quantizeWeight(w);

    COMET_CHECK(writeFile(weight_path, serialize(qw)).isOk());
    COMET_CHECK(
        writeFile(quantizer_path, serialize(quantizer)).isOk());
    std::printf("saved %zu-byte weight + %zu-byte quantizer state\n",
                serialize(qw).size(), serialize(quantizer).size());

    // ---- Online: load and serve ----
    const auto weight_bytes = readFile(weight_path);
    const auto quantizer_bytes = readFile(quantizer_path);
    COMET_CHECK(weight_bytes.isOk() && quantizer_bytes.isOk());
    auto loaded_weight =
        deserializeBlockQuantizedWeight(weight_bytes.value());
    auto loaded_quantizer =
        deserializeFmpqQuantizer(quantizer_bytes.value());
    COMET_CHECK(loaded_weight.isOk());
    COMET_CHECK_MSG(loaded_quantizer.isOk(),
                    loaded_quantizer.status().message().c_str());

    W4AxGemmConfig kernel_config;
    kernel_config.tile_m = 8;
    kernel_config.tile_n = 32;
    kernel_config.tile_k = 64; // matches the 64-channel FMPQ blocks
    const W4AxGemm original(qw, quantizer.blockPrecisions(),
                            kernel_config);
    const W4AxGemm reloaded(
        loaded_weight.value(),
        loaded_quantizer.value().blockPrecisions(), kernel_config);

    const Tensor x = activations.sample(8, rng);
    const Tensor out_a = original.run(quantizer.quantize(x));
    const Tensor out_b =
        reloaded.run(loaded_quantizer.value().quantize(x));
    std::printf("reloaded operator max deviation: %.3g (expect 0)\n",
                maxAbsError(out_a, out_b));
    std::printf("W4A4 compute fraction after reload: %.1f%%\n",
                100.0 *
                    loaded_quantizer.value().w4a4ComputeFraction());

    std::remove(weight_path.c_str());
    std::remove(quantizer_path.c_str());
    return 0;
}
