/**
 * @file
 * Example: latency-oriented serving under bursty arrivals.
 *
 * Replays the same Poisson request trace through COMET and the
 * TRT-LLM-style baselines and reports TTFT/TPOT percentiles — the
 * serving-quality dimension the paper's Section 7 connects to
 * scheduler work like Sarathi-Serve.
 *
 * Build & run:  ./build/examples/latency_trace
 */
#include <cstdio>

#include "comet/common/table.h"
#include "comet/serve/trace.h"

using namespace comet;

int
main()
{
    TraceConfig trace_config;
    trace_config.request_rate_per_s = 8.0;
    trace_config.num_requests = 48;
    trace_config.mean_prompt_tokens = 512;
    trace_config.mean_output_tokens = 128;
    const auto trace = generateTrace(trace_config);
    std::printf("trace: %d requests, Poisson %.1f req/s, mean "
                "prompt/output %lld/%lld tokens, LLaMA-3-8B\n\n",
                trace_config.num_requests,
                trace_config.request_rate_per_s,
                static_cast<long long>(
                    trace_config.mean_prompt_tokens),
                static_cast<long long>(
                    trace_config.mean_output_tokens));

    Table table({"system", "TTFT p50 (ms)", "TTFT p95 (ms)",
                 "TPOT p50 (ms)", "TPOT p95 (ms)", "tokens/s"});
    for (ServingMode mode :
         {ServingMode::kTrtFp16, ServingMode::kTrtW4A16,
          ServingMode::kQserveW4A8Kv4, ServingMode::kCometW4AxKv4}) {
        EngineConfig config;
        config.model = LlmConfig::llama3_8b();
        config.mode = mode;
        config.input_tokens = trace_config.mean_prompt_tokens;
        config.output_tokens = trace_config.mean_output_tokens;
        const ServingEngine engine(config);
        const TraceMetrics metrics = replayTrace(engine, trace);
        const std::vector<double> ttft =
            metrics.ttftPercentilesUs({50, 95});
        const std::vector<double> tpot =
            metrics.tpotPercentilesUs({50, 95});
        table.addRow({servingModeName(mode),
                      formatDouble(ttft[0] / 1e3, 1),
                      formatDouble(ttft[1] / 1e3, 1),
                      formatDouble(tpot[0] / 1e3, 2),
                      formatDouble(tpot[1] / 1e3, 2),
                      formatDouble(metrics.throughput_tokens_per_s, 0)});
    }
    table.print();
    std::printf("\nReading: quantization helps tail latency twice — "
                "faster decode steps lower TPOT directly, and the "
                "smaller KV footprint admits queued requests sooner, "
                "lowering TTFT under load.\n");
    return 0;
}
