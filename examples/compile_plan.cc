/**
 * @file
 * Example: the compile-time kernel planning pass.
 *
 * Before serving, COMET fixes a tile-to-SM mapping per linear layer
 * (paper Section 4.4, applied "during LLM compilation stages"). This
 * example compiles a model for a given decode batch and prints the
 * plan: every GEMM's tile grid, the scheduling strategy the planner
 * picked, predicted latency and utilization, and the bottleneck layer.
 *
 * Usage:  ./build/examples/compile_plan [model-name] [batch]
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "comet/gpusim/planner.h"

using namespace comet;

int
main(int argc, char **argv)
{
    const std::string model_name =
        argc > 1 ? argv[1] : "LLaMA-3-8B";
    const int64_t batch = argc > 2 ? std::atoll(argv[2]) : 64;

    const CompilePlanner planner;
    const ModelPlan plan =
        planner.plan(LlmConfig::byName(model_name), batch);
    std::fputs(CompilePlanner::report(plan).c_str(), stdout);

    std::printf("\nfull decode step (x%lld layers): %.2f ms of GEMM "
                "time\n",
                static_cast<long long>(
                    LlmConfig::byName(model_name).num_layers),
                plan.step_gemm_us *
                    static_cast<double>(
                        LlmConfig::byName(model_name).num_layers) /
                    1e3);
    return 0;
}
