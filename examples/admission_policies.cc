/**
 * @file
 * Example: KV admission policies and preemption-based recovery.
 *
 * Walks the batch scheduler through a deliberately tiny KV pool to
 * show what happens when decode outgrows memory: under optimistic
 * admission the scheduler evicts the latest-arrived requests
 * (recompute-style preemption, vLLM-fashion) instead of failing, and
 * the victims re-prefill and finish once capacity frees up. Also
 * demonstrates client cancellation and the observability counters.
 *
 * Usage:  ./build/examples/admission_policies
 */
#include <cstdio>

#include "comet/kvcache/kv_cache.h"
#include "comet/serve/batch_scheduler.h"

using namespace comet;

namespace {

PagedKvCache
makePool(const LlmConfig &model, int64_t blocks)
{
    KvCacheConfig config;
    config.bits_per_value = 4.0; // the COMET KV4 cache
    config.block_tokens = 16;
    config.memory_budget_bytes = 1e9;
    const PagedKvCache probe(model, config);
    config.memory_budget_bytes =
        probe.blockBytes() * static_cast<double>(blocks);
    return PagedKvCache(model, config);
}

Request
makeRequest(int64_t id, int64_t prompt, int64_t output)
{
    Request request;
    request.id = id;
    request.prompt_tokens = prompt;
    request.max_output_tokens = output;
    return request;
}

void
report(const BatchScheduler &scheduler, const char *moment)
{
    const SchedulerCounters &counters = scheduler.counters();
    std::printf("[%s]\n", moment);
    std::printf("  running %lld, queued %lld, finished %lld, "
                "KV utilization %.0f%%\n",
                static_cast<long long>(scheduler.runningCount()),
                static_cast<long long>(scheduler.queuedCount()),
                static_cast<long long>(scheduler.finishedCount()),
                100.0 * scheduler.kvUtilization());
    std::printf("  admitted %lld, preemptions %lld, re-prefill "
                "tokens %lld, cancelled %lld, rejected %lld\n\n",
                static_cast<long long>(counters.admitted),
                static_cast<long long>(counters.preemptions),
                static_cast<long long>(counters.reprefill_tokens),
                static_cast<long long>(counters.cancelled),
                static_cast<long long>(counters.rejected));
}

} // namespace

int
main()
{
    const LlmConfig model = LlmConfig::llama3_8b();
    // 12 pages of 16 tokens: room for the three prompts (2 pages
    // each) but not for all of their decodes.
    PagedKvCache cache = makePool(model, 12);
    std::printf("KV pool: %lld blocks of 16 tokens (%.1f KB per "
                "block at KV4)\n\n",
                static_cast<long long>(cache.totalBlocks()),
                cache.blockBytes() / 1e3);

    BatchSchedulerConfig config;
    config.admission = AdmissionPolicy::kOptimisticPreempt;
    BatchScheduler scheduler(&cache, config);

    // Three requests arrive: 32-token prompts, up to 48 new tokens.
    // Full-output reservation would admit only two (3 x 5 pages >
    // 12); optimistic admission starts all three on their prompt
    // footprint alone.
    for (int64_t id = 1; id <= 3; ++id)
        scheduler.submit(makeRequest(id, 32, 48));
    scheduler.admit();
    report(scheduler, "after optimistic admission of 3 prompts");

    // Decode until the pool runs dry. The scheduler recovers by
    // preempting the latest-arrived request (id 3): its blocks are
    // freed, it goes back to the queue head, and it will re-prefill
    // prompt + generated tokens when re-admitted.
    while (scheduler.counters().preemptions == 0 &&
           scheduler.runningCount() > 0)
        scheduler.step();
    report(scheduler, "first KV exhaustion: latest arrival evicted");

    // A client gives up on request 2: cancel frees its blocks
    // immediately, which lets the preempted request re-enter sooner.
    scheduler.cancel(2);
    report(scheduler, "request 2 cancelled mid-flight");

    // Run to completion: FCFS re-admits the preempted request ahead
    // of any newcomer; everything left finishes.
    while (!scheduler.idle()) {
        scheduler.admit();
        if (scheduler.runningCount() == 0)
            break;
        scheduler.step();
    }
    report(scheduler, "drained");

    std::printf(
        "The same trade-off at engine scale (policy, batch, "
        "throughput) is tabulated by bench_admission_preempt.\n");
    return 0;
}
