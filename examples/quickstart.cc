/**
 * @file
 * Quickstart: the COMET pipeline end to end in ~60 lines.
 *
 *  1. Generate LLM-like activations (outlier channels included).
 *  2. Calibrate FMPQ: channel permutation + mixed INT4/INT8 blocks.
 *  3. Quantize activations and weights into the packed kernel layout.
 *  4. Run the bit-exact W4Ax GEMM and compare against float.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "comet/common/rng.h"
#include "comet/kernel/gemm_ref.h"
#include "comet/kernel/gemm_w4ax.h"
#include "comet/model/synthetic.h"

using namespace comet;

int
main()
{
    // 1. Synthetic activations: 512 channels, ~1% outlier channels
    //    carrying 40x the typical magnitude — the distribution that
    //    makes naive INT4 activation quantization collapse.
    SyntheticActivationConfig act_config;
    act_config.channels = 512;
    act_config.outlier_fraction = 0.01;
    act_config.outlier_scale = 40.0;
    const SyntheticActivationModel activations(act_config);
    Rng rng(42);

    // 2. Calibrate FMPQ from sampled activations. The permutation
    //    clusters the outlier channels into the leading blocks so
    //    almost every block can stay INT4.
    const Tensor calibration = activations.sample(128, rng);
    FmpqConfig fmpq_config;
    fmpq_config.block_size = 128;
    const auto quantizer = FmpqActivationQuantizer::calibrate(
        calibration, fmpq_config);
    std::printf("FMPQ: %lld blocks, %.1f%% of GEMM compute in W4A4\n",
                static_cast<long long>(quantizer.numBlocks()),
                100.0 * quantizer.w4a4ComputeFraction());

    // 3. Quantize a batch of runtime activations and a weight matrix
    //    into the packed mixed-precision layout.
    const Tensor x = activations.sample(16, rng);
    const Tensor w = sampleWeights(256, 512, rng);
    const MixedQuantizedActivation qx = quantizer.quantize(x);
    const BlockQuantizedWeight qw = quantizer.quantizeWeight(w);

    // 4. Run the emulated COMET-W4Ax kernel: INT4 blocks hit the
    //    W4A4 path, INT8 blocks the interleaved fast-conversion W4A8
    //    path.
    const W4AxGemm gemm(qw, quantizer.blockPrecisions());
    W4AxGemmStats stats;
    const Tensor out = gemm.run(qx, &stats);

    const Tensor reference = gemmFloat(x, w);
    std::printf("W4Ax GEMM: %lld W4A4 tiles, %lld W4A8 tiles, %lld "
                "conversion instructions\n",
                static_cast<long long>(stats.int4_tiles),
                static_cast<long long>(stats.int8_tiles),
                static_cast<long long>(
                    stats.conversion_instructions));
    std::printf("relative error vs FP32 reference: %.4f (pure "
                "quantization error)\n",
                relativeError(reference, out));
    std::printf("bit-exactness vs dequantized model: %.2e\n",
                relativeError(gemmW4AxReference(qx, qw), out));
    return 0;
}
