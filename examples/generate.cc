/**
 * @file
 * Example: token generation through the incremental decoder session —
 * the W4A4KV4 inference path end to end on the tiny model.
 *
 * Compares an FP16-cache session against an INT4-cache session on the
 * same prompt: generated continuations, KV cache footprints, and the
 * logit perturbation the 4-bit cache introduces.
 *
 * Build & run:  ./build/examples/generate
 */
#include <cmath>
#include <cstdio>

#include "comet/model/decoder_session.h"

using namespace comet;

int
main()
{
    TinyTransformerConfig config;
    config.vocab_size = 96;
    config.hidden_size = 64;
    config.num_heads = 4;
    config.num_kv_heads = 2;
    config.num_layers = 2;
    config.intermediate_size = 128;
    config.outlier_fraction = 0.05;
    config.outlier_scale = 15.0;
    config.seed = 99;
    const auto model = TinyTransformer::random(config);
    const std::vector<int32_t> prompt{5, 23, 41, 7, 66, 12};

    DecoderSession fp16(model);
    DecoderSession kv4(model, KvQuantConfig{4, 32, true});

    const std::vector<float> fp16_logits = fp16.prefill(prompt);
    const std::vector<float> kv4_logits = kv4.prefill(prompt);
    double max_diff = 0.0;
    for (size_t v = 0; v < fp16_logits.size(); ++v) {
        max_diff = std::max(
            max_diff, std::fabs(static_cast<double>(fp16_logits[v]) -
                                kv4_logits[v]));
    }
    std::printf("prompt of %zu tokens prefilled through both "
                "sessions\n",
                prompt.size());
    std::printf("next-token logit perturbation from the INT4 cache: "
                "max |delta| = %.4f\n\n",
                max_diff);

    Rng rng_a(7), rng_b(7);
    DecoderSession gen_fp(model);
    DecoderSession gen_kv4(model, KvQuantConfig{4, 32, true});
    const auto seq_fp = gen_fp.generate(prompt, 12, rng_a);
    const auto seq_kv4 = gen_kv4.generate(prompt, 12, rng_b);

    auto print_seq = [](const char *label,
                        const std::vector<int32_t> &seq) {
        std::printf("%-12s", label);
        for (int32_t token : seq)
            std::printf(" %2d", token);
        std::printf("\n");
    };
    print_seq("FP16 cache:", seq_fp);
    print_seq("INT4 cache:", seq_kv4);

    std::printf("\nKV cache footprints after generation: FP16 %.0f B, "
                "INT4 %.0f B (4x smaller)\n",
                gen_fp.kvCacheBytes(), gen_kv4.kvCacheBytes());
    std::printf("(identical sampling seeds; divergence, if any, is "
                "pure KV-quantization effect)\n");
    return 0;
}
