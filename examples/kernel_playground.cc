/**
 * @file
 * Example: poking at the W4Ax kernel's bit-level machinery — packed
 * registers, the location switch, fast INT4->INT8 conversion, weight
 * interleaving, bank conflicts, and the software-pipeline algebra.
 * A guided tour of Section 4 of the paper.
 *
 * Build & run:  ./build/examples/kernel_playground
 */
#include <cstdio>

#include "comet/kernel/convert.h"
#include "comet/kernel/int4_pack.h"
#include "comet/kernel/interleave.h"
#include "comet/kernel/pipeline.h"

using namespace comet;

namespace {

void
printValues(const char *label, const std::array<int8_t, 8> &values)
{
    std::printf("%-26s[", label);
    for (int i = 0; i < 8; ++i) {
        std::printf("%4d%s", values[static_cast<size_t>(i)],
                    i == 7 ? "" : ",");
    }
    std::printf(" ]\n");
}

} // namespace

int
main()
{
    std::printf("--- 1. Packed INT4 registers ---\n");
    const std::array<int8_t, 8> values{-8, -3, -1, 0, 1, 3, 5, 7};
    const uint32_t word = packInt4x8(values);
    printValues("values", values);
    std::printf("packed register            0x%08x\n\n", word);

    std::printf("--- 2. Naive conversion (Figure 7a) ---\n");
    InstructionCounter naive_counter;
    const ConvertedPair naive = naiveInt4ToInt8(word, &naive_counter);
    const auto naive_lo = unpackInt8x4(naive.lo);
    const auto naive_hi = unpackInt8x4(naive.hi);
    std::printf("converted lo (true values) [%4d,%4d,%4d,%4d ]\n",
                naive_lo[0], naive_lo[1], naive_lo[2], naive_lo[3]);
    std::printf("converted hi (true values) [%4d,%4d,%4d,%4d ]\n",
                naive_hi[0], naive_hi[1], naive_hi[2], naive_hi[3]);
    std::printf("instructions issued        %lld (~%.0f per value)\n\n",
                static_cast<long long>(naive_counter.count()),
                static_cast<double>(naive_counter.count()) / 8.0);

    std::printf("--- 3. Fast conversion (Figure 7b) ---\n");
    const uint32_t switched = locationSwitch(word);
    InstructionCounter fast_counter;
    const ConvertedPair fast = fastInt4ToInt8(switched, &fast_counter);
    const auto lo = unpackInt8x4(fast.lo);
    const auto hi = unpackInt8x4(fast.hi);
    std::printf("location-switched register 0x%08x\n", switched);
    std::printf("converted lo (16x values)  [%4d,%4d,%4d,%4d ]\n",
                lo[0], lo[1], lo[2], lo[3]);
    std::printf("converted hi (16x values)  [%4d,%4d,%4d,%4d ]\n",
                hi[0], hi[1], hi[2], hi[3]);
    std::printf("instructions issued        %lld (zero extension: "
                "each byte is 16x its INT4 value; the kernel folds "
                "1/16 into the scale)\n\n",
                static_cast<long long>(fast_counter.count()));

    std::printf("--- 4. Weight interleaving & bank conflicts "
                "(Figure 6) ---\n");
    const SmemSimResult naive_smem =
        simulateWarpLoad(naiveW4A8AccessPattern(8));
    const SmemSimResult tuned_smem =
        simulateWarpLoad(interleavedW4A8AccessPattern(8));
    std::printf("naive layout:       %lld word touches, %lld extra "
                "wavefronts, %d ldmatrix per thread\n",
                static_cast<long long>(naive_smem.word_touches),
                static_cast<long long>(naive_smem.conflicts),
                naiveW4A8LdmatrixCount());
    std::printf("interleaved layout: %lld word touches, %lld extra "
                "wavefronts, %d ldmatrix per thread\n\n",
                static_cast<long long>(tuned_smem.word_touches),
                static_cast<long long>(tuned_smem.conflicts),
                interleavedW4A8LdmatrixCount());

    std::printf("--- 5. SIMT-enhanced software pipeline "
                "(Figure 5c) ---\n");
    const StageTimes stages{/*global_load=*/0.51, /*smem_load=*/0.36,
                            /*convert=*/0.30, /*mma=*/0.61};
    std::printf("stage times (us): load %.2f, ldmatrix %.2f, convert "
                "%.2f, mma %.2f\n",
                stages.global_load, stages.smem_load, stages.convert,
                stages.mma);
    std::printf("serial iteration:     %.2f us\n",
                pipelineIterationTime(stages, PipelineMode::kSerial));
    std::printf("pipelined iteration:  %.2f us (bounded by the "
                "slowest resource)\n",
                pipelineIterationTime(stages,
                                      PipelineMode::kSimtEnhanced));
    std::printf("32 iterations:        %.1f vs %.1f us\n",
                pipelineTime(stages, PipelineMode::kSerial, 32),
                pipelineTime(stages, PipelineMode::kSimtEnhanced, 32));
    return 0;
}
