/**
 * @file
 * Example: quantizing a (tiny) LLM with every algorithm in the
 * library and comparing quality — the Table 1 workflow as a user
 * would run it on their own model.
 *
 * Build & run:  ./build/examples/quantize_llm
 */
#include <cstdio>

#include "comet/common/table.h"
#include "comet/model/perplexity.h"

using namespace comet;

int
main()
{
    // A small teacher model with planted activation outliers stands
    // in for a real checkpoint (see DESIGN.md).
    TinyTransformerConfig config;
    config.vocab_size = 96;
    config.hidden_size = 64;
    config.num_heads = 4;
    config.num_kv_heads = 4;
    config.num_layers = 2;
    config.intermediate_size = 128;
    config.outlier_fraction = 0.06;
    config.outlier_scale = 20.0;
    config.seed = 7;
    const auto teacher = TinyTransformer::random(config);
    std::printf("teacher: %lld layers, hidden %lld, %zu planted "
                "outlier channels\n\n",
                static_cast<long long>(config.num_layers),
                static_cast<long long>(config.hidden_size),
                teacher.outlierChannels().size());

    // Calibration + evaluation data sampled from the teacher.
    Rng rng(11);
    const Dataset eval = sampleDataset(teacher, 4, 28, rng);
    const Dataset calib = sampleDataset(teacher, 3, 28, rng);
    const CalibrationData calibration =
        CalibrationData::collect(teacher, calib);

    Table table({"method", "precision", "perplexity", "vs FP16"});
    double fp16_ppl = 0.0;
    for (QuantScheme scheme : table1Schemes()) {
        FmpqModelStats stats;
        const QuantizedModel quantized =
            buildQuantizedModel(teacher, scheme, calibration, &stats);
        const double ppl = evaluatePerplexity(quantized.model,
                                              quantized.sim(), eval);
        if (scheme == QuantScheme::kFp16)
            fp16_ppl = ppl;
        table.addRow({quantSchemeName(scheme),
                      quantSchemePrecision(scheme),
                      formatDouble(ppl, 2),
                      formatSpeedup(ppl / fp16_ppl)});
        if (scheme == QuantScheme::kFmpqW4AxKv4) {
            std::printf("  (FMPQ runs %.0f%% of GEMM compute as "
                        "W4A4)\n",
                        100.0 * stats.w4a4_compute_fraction);
        }
    }
    table.print();
    std::printf("\nTakeaway: FMPQ's mixed precision keeps W4-level "
                "activations usable where uniform W4A4 collapses.\n");
    return 0;
}
