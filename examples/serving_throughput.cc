/**
 * @file
 * Example: serving an LLM with the COMET engine — memory budgeting,
 * paged KV cache, continuous batching, and the resulting throughput,
 * compared against the baseline serving configurations.
 *
 * Usage:  ./build/examples/serving_throughput [model-name]
 *         (default LLaMA-3-8B; names as in the paper, e.g.
 *          "LLaMA-2-70B", "Qwen2-72B")
 */
#include <cstdio>
#include <string>

#include "comet/common/table.h"
#include "comet/serve/engine.h"

using namespace comet;

int
main(int argc, char **argv)
{
    const std::string model_name =
        argc > 1 ? argv[1] : "LLaMA-3-8B";
    const LlmConfig model = LlmConfig::byName(model_name);
    std::printf("serving %s on a simulated %s (input 1024 / output "
                "512)\n\n",
                model.name.c_str(),
                GpuSpec::a100Sxm480G().name.c_str());

    Table table({"system", "weights (GB)", "KV budget (GB)",
                 "KV/seq (MB)", "max batch", "decode step (ms)",
                 "tokens/s"});
    for (ServingMode mode :
         {ServingMode::kTrtFp16, ServingMode::kTrtW4A16,
          ServingMode::kTrtW8A8, ServingMode::kQserveW4A8Kv4,
          ServingMode::kCometW4AxKv4}) {
        EngineConfig config;
        config.model = model;
        config.mode = mode;
        config.input_tokens = 1024;
        config.output_tokens = 512;
        const ServingEngine engine(config);
        const ThroughputResult result = engine.measureThroughput();
        table.addRow(
            {servingModeName(mode),
             formatDouble(engine.weightBytes() / 1e9, 1),
             formatDouble(engine.kvBudgetBytes() / 1e9, 1),
             formatDouble(result.kv_bytes_per_seq / 1e6, 1),
             result.batch > 0 ? std::to_string(result.batch)
                              : std::string("OOM"),
             result.batch > 0
                 ? formatDouble(result.decode_step_us / 1e3, 2)
                 : std::string("-"),
             result.batch > 0
                 ? formatDouble(result.tokens_per_second, 0)
                 : std::string("-")});
    }
    table.print();

    std::printf("\nReading the table: INT4 weights free tens of GB "
                "for the KV cache, and the INT4 KV cache multiplies "
                "how many sequences fit — larger batches amortize "
                "the weight traffic, which is where COMET's "
                "end-to-end gain comes from.\n");
    return 0;
}
