# Empty dependencies file for test_qoq.
# This may be replaced when dependencies are built.
