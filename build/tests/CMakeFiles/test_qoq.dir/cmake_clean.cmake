file(REMOVE_RECURSE
  "CMakeFiles/test_qoq.dir/test_qoq.cc.o"
  "CMakeFiles/test_qoq.dir/test_qoq.cc.o.d"
  "test_qoq"
  "test_qoq.pdb"
  "test_qoq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qoq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
