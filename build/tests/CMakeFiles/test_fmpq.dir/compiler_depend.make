# Empty compiler generated dependencies file for test_fmpq.
# This may be replaced when dependencies are built.
