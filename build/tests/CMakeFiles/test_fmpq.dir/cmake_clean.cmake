file(REMOVE_RECURSE
  "CMakeFiles/test_fmpq.dir/test_fmpq.cc.o"
  "CMakeFiles/test_fmpq.dir/test_fmpq.cc.o.d"
  "test_fmpq"
  "test_fmpq.pdb"
  "test_fmpq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fmpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
