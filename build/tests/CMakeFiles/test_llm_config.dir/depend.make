# Empty dependencies file for test_llm_config.
# This may be replaced when dependencies are built.
