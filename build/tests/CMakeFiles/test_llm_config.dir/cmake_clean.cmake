file(REMOVE_RECURSE
  "CMakeFiles/test_llm_config.dir/test_llm_config.cc.o"
  "CMakeFiles/test_llm_config.dir/test_llm_config.cc.o.d"
  "test_llm_config"
  "test_llm_config.pdb"
  "test_llm_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_llm_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
