# Empty dependencies file for test_gemm_ref.
# This may be replaced when dependencies are built.
