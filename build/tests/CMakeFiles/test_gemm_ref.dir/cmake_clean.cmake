file(REMOVE_RECURSE
  "CMakeFiles/test_gemm_ref.dir/test_gemm_ref.cc.o"
  "CMakeFiles/test_gemm_ref.dir/test_gemm_ref.cc.o.d"
  "test_gemm_ref"
  "test_gemm_ref.pdb"
  "test_gemm_ref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemm_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
