file(REMOVE_RECURSE
  "CMakeFiles/test_mma.dir/test_mma.cc.o"
  "CMakeFiles/test_mma.dir/test_mma.cc.o.d"
  "test_mma"
  "test_mma.pdb"
  "test_mma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
