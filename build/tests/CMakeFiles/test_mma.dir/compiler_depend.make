# Empty compiler generated dependencies file for test_mma.
# This may be replaced when dependencies are built.
