file(REMOVE_RECURSE
  "CMakeFiles/test_decoder_session.dir/test_decoder_session.cc.o"
  "CMakeFiles/test_decoder_session.dir/test_decoder_session.cc.o.d"
  "test_decoder_session"
  "test_decoder_session.pdb"
  "test_decoder_session[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decoder_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
