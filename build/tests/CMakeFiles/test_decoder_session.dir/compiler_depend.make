# Empty compiler generated dependencies file for test_decoder_session.
# This may be replaced when dependencies are built.
