# Empty compiler generated dependencies file for test_kernel_sim.
# This may be replaced when dependencies are built.
