file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_sim.dir/test_kernel_sim.cc.o"
  "CMakeFiles/test_kernel_sim.dir/test_kernel_sim.cc.o.d"
  "test_kernel_sim"
  "test_kernel_sim.pdb"
  "test_kernel_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
