# Empty compiler generated dependencies file for test_zeroshot.
# This may be replaced when dependencies are built.
