file(REMOVE_RECURSE
  "CMakeFiles/test_zeroshot.dir/test_zeroshot.cc.o"
  "CMakeFiles/test_zeroshot.dir/test_zeroshot.cc.o.d"
  "test_zeroshot"
  "test_zeroshot.pdb"
  "test_zeroshot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zeroshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
