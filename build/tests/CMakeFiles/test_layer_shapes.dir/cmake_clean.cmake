file(REMOVE_RECURSE
  "CMakeFiles/test_layer_shapes.dir/test_layer_shapes.cc.o"
  "CMakeFiles/test_layer_shapes.dir/test_layer_shapes.cc.o.d"
  "test_layer_shapes"
  "test_layer_shapes.pdb"
  "test_layer_shapes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layer_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
