file(REMOVE_RECURSE
  "CMakeFiles/test_perplexity.dir/test_perplexity.cc.o"
  "CMakeFiles/test_perplexity.dir/test_perplexity.cc.o.d"
  "test_perplexity"
  "test_perplexity.pdb"
  "test_perplexity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perplexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
