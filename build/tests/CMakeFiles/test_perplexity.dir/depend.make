# Empty dependencies file for test_perplexity.
# This may be replaced when dependencies are built.
