file(REMOVE_RECURSE
  "CMakeFiles/test_packed.dir/test_packed.cc.o"
  "CMakeFiles/test_packed.dir/test_packed.cc.o.d"
  "test_packed"
  "test_packed.pdb"
  "test_packed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
