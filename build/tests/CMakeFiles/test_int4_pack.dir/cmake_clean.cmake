file(REMOVE_RECURSE
  "CMakeFiles/test_int4_pack.dir/test_int4_pack.cc.o"
  "CMakeFiles/test_int4_pack.dir/test_int4_pack.cc.o.d"
  "test_int4_pack"
  "test_int4_pack.pdb"
  "test_int4_pack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_int4_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
