# Empty dependencies file for test_int4_pack.
# This may be replaced when dependencies are built.
