file(REMOVE_RECURSE
  "CMakeFiles/test_block_allocator.dir/test_block_allocator.cc.o"
  "CMakeFiles/test_block_allocator.dir/test_block_allocator.cc.o.d"
  "test_block_allocator"
  "test_block_allocator.pdb"
  "test_block_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
