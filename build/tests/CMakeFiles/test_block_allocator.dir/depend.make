# Empty dependencies file for test_block_allocator.
# This may be replaced when dependencies are built.
