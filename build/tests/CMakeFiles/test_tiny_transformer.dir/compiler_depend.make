# Empty compiler generated dependencies file for test_tiny_transformer.
# This may be replaced when dependencies are built.
