file(REMOVE_RECURSE
  "CMakeFiles/test_tiny_transformer.dir/test_tiny_transformer.cc.o"
  "CMakeFiles/test_tiny_transformer.dir/test_tiny_transformer.cc.o.d"
  "test_tiny_transformer"
  "test_tiny_transformer.pdb"
  "test_tiny_transformer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiny_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
