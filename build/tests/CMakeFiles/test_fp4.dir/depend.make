# Empty dependencies file for test_fp4.
# This may be replaced when dependencies are built.
