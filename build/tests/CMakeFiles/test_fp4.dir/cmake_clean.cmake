file(REMOVE_RECURSE
  "CMakeFiles/test_fp4.dir/test_fp4.cc.o"
  "CMakeFiles/test_fp4.dir/test_fp4.cc.o.d"
  "test_fp4"
  "test_fp4.pdb"
  "test_fp4[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fp4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
