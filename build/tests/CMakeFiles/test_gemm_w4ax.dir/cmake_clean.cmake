file(REMOVE_RECURSE
  "CMakeFiles/test_gemm_w4ax.dir/test_gemm_w4ax.cc.o"
  "CMakeFiles/test_gemm_w4ax.dir/test_gemm_w4ax.cc.o.d"
  "test_gemm_w4ax"
  "test_gemm_w4ax.pdb"
  "test_gemm_w4ax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemm_w4ax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
