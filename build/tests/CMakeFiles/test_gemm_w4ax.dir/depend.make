# Empty dependencies file for test_gemm_w4ax.
# This may be replaced when dependencies are built.
