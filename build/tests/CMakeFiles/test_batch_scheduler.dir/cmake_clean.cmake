file(REMOVE_RECURSE
  "CMakeFiles/test_batch_scheduler.dir/test_batch_scheduler.cc.o"
  "CMakeFiles/test_batch_scheduler.dir/test_batch_scheduler.cc.o.d"
  "test_batch_scheduler"
  "test_batch_scheduler.pdb"
  "test_batch_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
