# Empty compiler generated dependencies file for test_batch_scheduler.
# This may be replaced when dependencies are built.
