file(REMOVE_RECURSE
  "CMakeFiles/test_sm_scheduler.dir/test_sm_scheduler.cc.o"
  "CMakeFiles/test_sm_scheduler.dir/test_sm_scheduler.cc.o.d"
  "test_sm_scheduler"
  "test_sm_scheduler.pdb"
  "test_sm_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sm_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
