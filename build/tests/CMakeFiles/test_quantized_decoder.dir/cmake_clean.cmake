file(REMOVE_RECURSE
  "CMakeFiles/test_quantized_decoder.dir/test_quantized_decoder.cc.o"
  "CMakeFiles/test_quantized_decoder.dir/test_quantized_decoder.cc.o.d"
  "test_quantized_decoder"
  "test_quantized_decoder.pdb"
  "test_quantized_decoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantized_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
