# Empty compiler generated dependencies file for test_quantized_decoder.
# This may be replaced when dependencies are built.
