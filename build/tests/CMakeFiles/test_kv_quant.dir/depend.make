# Empty dependencies file for test_kv_quant.
# This may be replaced when dependencies are built.
