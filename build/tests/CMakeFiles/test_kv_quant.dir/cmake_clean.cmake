file(REMOVE_RECURSE
  "CMakeFiles/test_kv_quant.dir/test_kv_quant.cc.o"
  "CMakeFiles/test_kv_quant.dir/test_kv_quant.cc.o.d"
  "test_kv_quant"
  "test_kv_quant.pdb"
  "test_kv_quant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kv_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
