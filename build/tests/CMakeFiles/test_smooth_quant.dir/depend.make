# Empty dependencies file for test_smooth_quant.
# This may be replaced when dependencies are built.
