file(REMOVE_RECURSE
  "CMakeFiles/test_smooth_quant.dir/test_smooth_quant.cc.o"
  "CMakeFiles/test_smooth_quant.dir/test_smooth_quant.cc.o.d"
  "test_smooth_quant"
  "test_smooth_quant.pdb"
  "test_smooth_quant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smooth_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
