# Empty compiler generated dependencies file for comet.
# This may be replaced when dependencies are built.
