
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comet/attention/decode_attention.cc" "src/comet/CMakeFiles/comet.dir/attention/decode_attention.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/attention/decode_attention.cc.o.d"
  "/root/repo/src/comet/common/logging.cc" "src/comet/CMakeFiles/comet.dir/common/logging.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/common/logging.cc.o.d"
  "/root/repo/src/comet/common/rng.cc" "src/comet/CMakeFiles/comet.dir/common/rng.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/common/rng.cc.o.d"
  "/root/repo/src/comet/common/stats.cc" "src/comet/CMakeFiles/comet.dir/common/stats.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/common/stats.cc.o.d"
  "/root/repo/src/comet/common/status.cc" "src/comet/CMakeFiles/comet.dir/common/status.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/common/status.cc.o.d"
  "/root/repo/src/comet/common/table.cc" "src/comet/CMakeFiles/comet.dir/common/table.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/common/table.cc.o.d"
  "/root/repo/src/comet/gpusim/cost_model.cc" "src/comet/CMakeFiles/comet.dir/gpusim/cost_model.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/gpusim/cost_model.cc.o.d"
  "/root/repo/src/comet/gpusim/gpu_spec.cc" "src/comet/CMakeFiles/comet.dir/gpusim/gpu_spec.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/gpusim/gpu_spec.cc.o.d"
  "/root/repo/src/comet/gpusim/kernel_sim.cc" "src/comet/CMakeFiles/comet.dir/gpusim/kernel_sim.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/gpusim/kernel_sim.cc.o.d"
  "/root/repo/src/comet/gpusim/planner.cc" "src/comet/CMakeFiles/comet.dir/gpusim/planner.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/gpusim/planner.cc.o.d"
  "/root/repo/src/comet/gpusim/roofline.cc" "src/comet/CMakeFiles/comet.dir/gpusim/roofline.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/gpusim/roofline.cc.o.d"
  "/root/repo/src/comet/gpusim/sm_scheduler.cc" "src/comet/CMakeFiles/comet.dir/gpusim/sm_scheduler.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/gpusim/sm_scheduler.cc.o.d"
  "/root/repo/src/comet/io/serialize.cc" "src/comet/CMakeFiles/comet.dir/io/serialize.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/io/serialize.cc.o.d"
  "/root/repo/src/comet/kernel/convert.cc" "src/comet/CMakeFiles/comet.dir/kernel/convert.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/kernel/convert.cc.o.d"
  "/root/repo/src/comet/kernel/fp4.cc" "src/comet/CMakeFiles/comet.dir/kernel/fp4.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/kernel/fp4.cc.o.d"
  "/root/repo/src/comet/kernel/gemm_ref.cc" "src/comet/CMakeFiles/comet.dir/kernel/gemm_ref.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/kernel/gemm_ref.cc.o.d"
  "/root/repo/src/comet/kernel/gemm_w4ax.cc" "src/comet/CMakeFiles/comet.dir/kernel/gemm_w4ax.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/kernel/gemm_w4ax.cc.o.d"
  "/root/repo/src/comet/kernel/int4_pack.cc" "src/comet/CMakeFiles/comet.dir/kernel/int4_pack.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/kernel/int4_pack.cc.o.d"
  "/root/repo/src/comet/kernel/interleave.cc" "src/comet/CMakeFiles/comet.dir/kernel/interleave.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/kernel/interleave.cc.o.d"
  "/root/repo/src/comet/kernel/mma.cc" "src/comet/CMakeFiles/comet.dir/kernel/mma.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/kernel/mma.cc.o.d"
  "/root/repo/src/comet/kernel/pipeline.cc" "src/comet/CMakeFiles/comet.dir/kernel/pipeline.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/kernel/pipeline.cc.o.d"
  "/root/repo/src/comet/kvcache/block_allocator.cc" "src/comet/CMakeFiles/comet.dir/kvcache/block_allocator.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/kvcache/block_allocator.cc.o.d"
  "/root/repo/src/comet/kvcache/kv_cache.cc" "src/comet/CMakeFiles/comet.dir/kvcache/kv_cache.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/kvcache/kv_cache.cc.o.d"
  "/root/repo/src/comet/model/decoder_session.cc" "src/comet/CMakeFiles/comet.dir/model/decoder_session.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/model/decoder_session.cc.o.d"
  "/root/repo/src/comet/model/layer_shapes.cc" "src/comet/CMakeFiles/comet.dir/model/layer_shapes.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/model/layer_shapes.cc.o.d"
  "/root/repo/src/comet/model/llm_config.cc" "src/comet/CMakeFiles/comet.dir/model/llm_config.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/model/llm_config.cc.o.d"
  "/root/repo/src/comet/model/perplexity.cc" "src/comet/CMakeFiles/comet.dir/model/perplexity.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/model/perplexity.cc.o.d"
  "/root/repo/src/comet/model/quantized_decoder.cc" "src/comet/CMakeFiles/comet.dir/model/quantized_decoder.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/model/quantized_decoder.cc.o.d"
  "/root/repo/src/comet/model/synthetic.cc" "src/comet/CMakeFiles/comet.dir/model/synthetic.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/model/synthetic.cc.o.d"
  "/root/repo/src/comet/model/tiny_transformer.cc" "src/comet/CMakeFiles/comet.dir/model/tiny_transformer.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/model/tiny_transformer.cc.o.d"
  "/root/repo/src/comet/model/zeroshot.cc" "src/comet/CMakeFiles/comet.dir/model/zeroshot.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/model/zeroshot.cc.o.d"
  "/root/repo/src/comet/quant/fmpq.cc" "src/comet/CMakeFiles/comet.dir/quant/fmpq.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/quant/fmpq.cc.o.d"
  "/root/repo/src/comet/quant/kv_quant.cc" "src/comet/CMakeFiles/comet.dir/quant/kv_quant.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/quant/kv_quant.cc.o.d"
  "/root/repo/src/comet/quant/outlier.cc" "src/comet/CMakeFiles/comet.dir/quant/outlier.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/quant/outlier.cc.o.d"
  "/root/repo/src/comet/quant/permutation.cc" "src/comet/CMakeFiles/comet.dir/quant/permutation.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/quant/permutation.cc.o.d"
  "/root/repo/src/comet/quant/qoq.cc" "src/comet/CMakeFiles/comet.dir/quant/qoq.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/quant/qoq.cc.o.d"
  "/root/repo/src/comet/quant/quantizer.cc" "src/comet/CMakeFiles/comet.dir/quant/quantizer.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/quant/quantizer.cc.o.d"
  "/root/repo/src/comet/quant/rotation.cc" "src/comet/CMakeFiles/comet.dir/quant/rotation.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/quant/rotation.cc.o.d"
  "/root/repo/src/comet/quant/smooth_quant.cc" "src/comet/CMakeFiles/comet.dir/quant/smooth_quant.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/quant/smooth_quant.cc.o.d"
  "/root/repo/src/comet/quant/weight_quant.cc" "src/comet/CMakeFiles/comet.dir/quant/weight_quant.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/quant/weight_quant.cc.o.d"
  "/root/repo/src/comet/serve/batch_scheduler.cc" "src/comet/CMakeFiles/comet.dir/serve/batch_scheduler.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/serve/batch_scheduler.cc.o.d"
  "/root/repo/src/comet/serve/engine.cc" "src/comet/CMakeFiles/comet.dir/serve/engine.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/serve/engine.cc.o.d"
  "/root/repo/src/comet/serve/request.cc" "src/comet/CMakeFiles/comet.dir/serve/request.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/serve/request.cc.o.d"
  "/root/repo/src/comet/serve/trace.cc" "src/comet/CMakeFiles/comet.dir/serve/trace.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/serve/trace.cc.o.d"
  "/root/repo/src/comet/tensor/packed.cc" "src/comet/CMakeFiles/comet.dir/tensor/packed.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/tensor/packed.cc.o.d"
  "/root/repo/src/comet/tensor/tensor.cc" "src/comet/CMakeFiles/comet.dir/tensor/tensor.cc.o" "gcc" "src/comet/CMakeFiles/comet.dir/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
