file(REMOVE_RECURSE
  "libcomet.a"
)
