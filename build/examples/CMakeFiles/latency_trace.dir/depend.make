# Empty dependencies file for latency_trace.
# This may be replaced when dependencies are built.
