file(REMOVE_RECURSE
  "CMakeFiles/latency_trace.dir/latency_trace.cc.o"
  "CMakeFiles/latency_trace.dir/latency_trace.cc.o.d"
  "latency_trace"
  "latency_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
