# Empty compiler generated dependencies file for quantize_llm.
# This may be replaced when dependencies are built.
