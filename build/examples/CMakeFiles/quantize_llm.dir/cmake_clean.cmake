file(REMOVE_RECURSE
  "CMakeFiles/quantize_llm.dir/quantize_llm.cc.o"
  "CMakeFiles/quantize_llm.dir/quantize_llm.cc.o.d"
  "quantize_llm"
  "quantize_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantize_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
