file(REMOVE_RECURSE
  "CMakeFiles/offline_deploy.dir/offline_deploy.cc.o"
  "CMakeFiles/offline_deploy.dir/offline_deploy.cc.o.d"
  "offline_deploy"
  "offline_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
