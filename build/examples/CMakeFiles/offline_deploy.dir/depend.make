# Empty dependencies file for offline_deploy.
# This may be replaced when dependencies are built.
