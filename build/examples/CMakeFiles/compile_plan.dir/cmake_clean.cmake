file(REMOVE_RECURSE
  "CMakeFiles/compile_plan.dir/compile_plan.cc.o"
  "CMakeFiles/compile_plan.dir/compile_plan.cc.o.d"
  "compile_plan"
  "compile_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
