# Empty dependencies file for compile_plan.
# This may be replaced when dependencies are built.
