file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_kernel.dir/bench_fig09_kernel.cc.o"
  "CMakeFiles/bench_fig09_kernel.dir/bench_fig09_kernel.cc.o.d"
  "bench_fig09_kernel"
  "bench_fig09_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
