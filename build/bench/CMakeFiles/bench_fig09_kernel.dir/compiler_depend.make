# Empty compiler generated dependencies file for bench_fig09_kernel.
# This may be replaced when dependencies are built.
