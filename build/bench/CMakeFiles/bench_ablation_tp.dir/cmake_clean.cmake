file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tp.dir/bench_ablation_tp.cc.o"
  "CMakeFiles/bench_ablation_tp.dir/bench_ablation_tp.cc.o.d"
  "bench_ablation_tp"
  "bench_ablation_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
