# Empty dependencies file for bench_ablation_tp.
# This may be replaced when dependencies are built.
