file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_zeroshot.dir/bench_tab2_zeroshot.cc.o"
  "CMakeFiles/bench_tab2_zeroshot.dir/bench_tab2_zeroshot.cc.o.d"
  "bench_tab2_zeroshot"
  "bench_tab2_zeroshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_zeroshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
