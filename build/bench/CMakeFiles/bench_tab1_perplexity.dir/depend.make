# Empty dependencies file for bench_tab1_perplexity.
# This may be replaced when dependencies are built.
