file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_perplexity.dir/bench_tab1_perplexity.cc.o"
  "CMakeFiles/bench_tab1_perplexity.dir/bench_tab1_perplexity.cc.o.d"
  "bench_tab1_perplexity"
  "bench_tab1_perplexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_perplexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
