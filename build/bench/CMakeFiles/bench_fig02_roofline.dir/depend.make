# Empty dependencies file for bench_fig02_roofline.
# This may be replaced when dependencies are built.
