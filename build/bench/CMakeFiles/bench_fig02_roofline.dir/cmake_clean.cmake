file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_roofline.dir/bench_fig02_roofline.cc.o"
  "CMakeFiles/bench_fig02_roofline.dir/bench_fig02_roofline.cc.o.d"
  "bench_fig02_roofline"
  "bench_fig02_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
